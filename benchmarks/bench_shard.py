"""Run-sharded scatter-gather — latency under load vs. the single file.

Beyond the paper's figures: the pluggable storage layer partitions runs
across SQLite shard files and answers multi-run lineage by fanning the
batched read grid out over a reader pool (docs/STORAGE.md).  The kernel
rows time the canonical 12-run batched query on the single-file store
and on a 4-shard store in the latency-bound regime (every read stretched
by the injected delay — cold cache / networked disk).  The report
benchmark runs the full ``repro.bench.sharding`` sweep at 1/4/8 shards
with concurrent closed-loop clients, asserts the acceptance floors —
identical answers on every backend, >= 1.5x p50 speedup at 4+ shards,
1-shard fast-path overhead within 10% of the single file — then writes
the machine-readable ``BENCH_shard.json`` record at the repository root.
"""

from pathlib import Path

import pytest

from repro.bench.sharding import (
    N1_OVERHEAD_LIMIT,
    SPEEDUP_THRESHOLD,
    _arm,
    best_speedup,
    fast_n1_ratio,
    n1_overhead,
    scale_config,
    shard_sweep,
    speedup_at,
)
from repro.provenance.capture import capture_runs
from repro.provenance.store import TraceStore
from repro.query.indexproj import IndexProjEngine
from repro.storage import ShardedStore
from repro.testbed.workloads import genes2kegg_workload

REPO_ROOT = Path(__file__).resolve().parent.parent

KERNEL_RUNS = 12
KERNEL_DELAY = 0.003


@pytest.fixture(scope="module")
def gk_stores(tmp_path_factory):
    """The same 12 captured runs in a single-file and a 4-shard store,
    both armed with the latency-bound read delay."""
    workload = genes2kegg_workload()
    tmp = tmp_path_factory.mktemp("bench-shard")
    captured = capture_runs(
        workload.flow, [workload.inputs] * KERNEL_RUNS,
        registry=workload.registry,
    )
    single = TraceStore(str(tmp / "single.db"))
    sharded = ShardedStore(str(tmp / "shards"), num_shards=4)
    for store in (single, sharded):
        for cap in captured:
            store.insert_trace(cap.trace)
        store.create_indexes()
        _arm(store, KERNEL_DELAY)
    scope = [cap.run_id for cap in captured]
    yield workload, single, sharded, scope
    single.close()
    sharded.close()


def bench_shard_kernel_single_file(benchmark, gk_stores):
    """Timed kernel: 12-run batched query, all chunks serial."""
    workload, single, _sharded, scope = gk_stores
    engine = IndexProjEngine(single, workload.flow)
    query = workload.focused_query()
    result = benchmark(
        lambda: engine.lineage_multirun_batched(scope, query, chunk_size=1)
    )
    assert set(result.per_run) == set(scope)


def bench_shard_kernel_four_shards(benchmark, gk_stores):
    """Timed kernel: the same query scatter-gathered over 4 shards."""
    workload, _single, sharded, scope = gk_stores
    engine = IndexProjEngine(sharded, workload.flow)
    query = workload.focused_query()
    result = benchmark(
        lambda: engine.lineage_multirun_batched(scope, query, chunk_size=1)
    )
    assert set(result.per_run) == set(scope)


def bench_shard_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: shard_sweep(scale), rounds=1, iterations=1
    )
    emit_report(
        "shard_sweep",
        rows,
        f"Run-sharded scatter-gather under load (scale={scale})",
        columns=[
            "backend", "shards", "runs", "clients", "latency_p50_ms",
            "latency_max_ms", "fast_ms", "identical",
        ],
    )
    assert all(row["identical"] for row in rows)
    assert best_speedup(rows) >= SPEEDUP_THRESHOLD
    assert n1_overhead(rows) <= N1_OVERHEAD_LIMIT
    from repro.bench.reporting import write_bench_json

    config = scale_config(scale)
    write_bench_json(
        str(REPO_ROOT / "BENCH_shard.json"),
        {
            "bench": "shard_sweep",
            "scale": scale,
            "rows": rows,
            "acceptance": {
                "speedup_threshold": SPEEDUP_THRESHOLD,
                "speedup_at_4": speedup_at(rows, 4),
                "speedup_at_8": speedup_at(rows, 8),
                "best_speedup": best_speedup(rows),
                "n1_overhead_limit": N1_OVERHEAD_LIMIT,
                "n1_overhead": n1_overhead(rows),
                "fast_n1_ratio": fast_n1_ratio(rows),
                "identical_everywhere": True,
                "read_delay_s": config["read_delay"],
            },
        },
    )
