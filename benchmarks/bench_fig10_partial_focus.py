"""Fig. 10 — INDEXPROJ response on partially unfocused queries.

Paper shape: as the focus set 𝒫 grows toward ~50% of the processors,
INDEXPROJ's response time rises toward the NI regime — the trace lookups
(one per focus input port) dominate, and at full unfocus the two
strategies coincide in work.
"""

from repro.bench.figures import fig10_partial_focus, scale_config
from repro.bench.harness import prepare_store
from repro.query.indexproj import IndexProjEngine
from repro.testbed.generator import partially_focused_query


def bench_fig10_kernel_half_focused(benchmark, scale):
    """Timed kernel: the 50%-focus query."""
    config = scale_config(scale)
    prepared = prepare_store(config["fig10_l"], config["fig10_d"], runs=1)
    engine = IndexProjEngine(prepared.store, prepared.flow)
    query = partially_focused_query(prepared.flow, 0.5)
    run_id = prepared.run_ids[0]
    result = benchmark(lambda: engine.lineage(run_id, query))
    assert result.bindings


def bench_fig10_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: fig10_partial_focus(scale), rounds=1, iterations=1
    )
    emit_report(
        "fig10_partial_focus",
        rows,
        f"Fig. 10 — INDEXPROJ on partially unfocused queries (scale={scale})",
    )
    queries = [row["sql_queries"] for row in rows]
    assert queries == sorted(queries)
    assert queries[-1] > queries[0]
