"""Compiled query plans — prepared SQL programs vs interpreted INDEXPROJ.

The tentpole claim, measured: baking the (s1) traversal into a
:class:`~repro.query.compiled.CompiledPlan` and executing it through
per-connection prepared statements must beat the interpreted
re-planning path by at least
:data:`~repro.bench.compiledplans.WARM_PLAN_SPEEDUP_FLOOR` (p50, every
Fig. 9 grid point).  The kernel rows time the three regimes at the
largest chain length; the report benchmark runs the full
``repro.bench.compiledplans`` sweep plus the HTTP server-load regime,
asserts the floor and answer identity, and writes the machine-readable
``BENCH_compiled.json`` record (``repro.bench/1`` schema) at the
repository root.
"""

from pathlib import Path

import pytest

from repro.bench.compiledplans import (
    WARM_PLAN_SPEEDUP_FLOOR,
    compiled_grid_sweep,
    compiled_server_row,
    min_warm_speedup,
)
from repro.bench.figures import scale_config
from repro.bench.harness import prepare_store
from repro.bench.reporting import write_bench_json
from repro.query.indexproj import IndexProjEngine
from repro.testbed.generator import focused_query

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def midsize_store(scale):
    config = scale_config(scale)
    length = config["fig9_l_values"][-1]
    d = config["fig9_d_values"][0]
    return prepare_store(length, d, runs=1)


def bench_compiled_kernel_interpreted(benchmark, midsize_store):
    """Timed kernel: interpreted INDEXPROJ, re-planned per call."""
    engine = IndexProjEngine(
        midsize_store.store, midsize_store.flow, cache_plans=False
    )
    query = focused_query()
    scope = [midsize_store.run_ids[0]]
    result = benchmark(lambda: engine.lineage_multirun(scope, query))
    assert result.per_run[scope[0]].bindings


def bench_compiled_kernel_cold(benchmark, midsize_store):
    """Timed kernel: compile + execute, registry cleared every call."""
    engine = IndexProjEngine(midsize_store.store, midsize_store.flow)
    query = focused_query()
    scope = [midsize_store.run_ids[0]]
    engine.lineage_multirun_compiled(scope, query)  # create the registry

    def cold():
        engine.plan_registry.clear()
        return engine.lineage_multirun_compiled(scope, query)

    result = benchmark(cold)
    assert result.per_run[scope[0]].bindings


def bench_compiled_kernel_warm(benchmark, midsize_store):
    """Timed kernel: the steady state — hot registry, prepared SQL."""
    engine = IndexProjEngine(midsize_store.store, midsize_store.flow)
    query = focused_query()
    scope = [midsize_store.run_ids[0]]
    engine.lineage_multirun_compiled(scope, query)  # warm plan + stmts
    result = benchmark(
        lambda: engine.lineage_multirun_compiled(scope, query)
    )
    assert result.per_run[scope[0]].bindings


def bench_compiled_report(benchmark, scale, emit_report):
    """Full sweep: grid + server regime, floor asserted, record written."""
    rows = benchmark.pedantic(
        lambda: compiled_grid_sweep(scale), rounds=1, iterations=1
    )
    rows = list(rows)
    rows.append(compiled_server_row())
    emit_report(
        "compiled_plans",
        rows,
        f"Compiled plans — cold/warm/interpreted p50 (scale={scale})",
        columns=[
            "regime", "d", "l", "interpreted_p50_ms",
            "cold_compile_p50_ms", "warm_plan_p50_ms", "warm_speedup",
            "interpreted_sql", "warm_plan_sql", "compiled_p50_ms",
            "requests",
        ],
    )
    floor = min_warm_speedup(rows)
    assert floor >= WARM_PLAN_SPEEDUP_FLOOR, (
        f"warm compiled plans only {floor:.2f}x faster than interpreted "
        f"(floor {WARM_PLAN_SPEEDUP_FLOOR}x)"
    )
    write_bench_json(
        str(REPO_ROOT / "BENCH_compiled.json"),
        {
            "bench": "compiled_plans",
            "scale": scale,
            "rows": rows,
            "acceptance": {
                "warm_plan_speedup_floor": WARM_PLAN_SPEEDUP_FLOOR,
                "min_warm_speedup": floor,
                "answers_identical": True,
            },
        },
    )
