"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's figures: each one switches off a design
decision the paper's results rest on and measures what it was buying.

* **Indexes** — the paper's Fig. 6 argument assumes every trace lookup is
  indexed.  Dropping the composite indexes pushes NI into the table-scan
  regime; INDEXPROJ, with its single lookup, degrades far less.
* **Plan cache** — Section 3 argues the workflow-graph traversal can be
  cached across queries; cold vs warm planning quantifies it.
* **Xfer granularity** — per-element transfer events (the paper's Fig. 2
  granularity) vs one whole-value event per arc: trace size vs identical
  answers.
"""

from repro.bench.harness import best_of, prepare_store
from repro.engine.executor import WorkflowRunner
from repro.provenance.store import TraceStore
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.testbed.generator import chain_product_workflow, focused_query
from repro.testbed.runs import populate_store

ABLATION_L = 50
ABLATION_D = 25


def bench_ablation_indexes_ni_indexed(benchmark):
    """Baseline: NI with the composite indexes in place."""
    prepared = prepare_store(ABLATION_L, ABLATION_D, runs=1, cache=False)
    engine = NaiveEngine(prepared.store)
    run_id = prepared.run_ids[0]
    result = benchmark(lambda: engine.lineage(run_id, focused_query()))
    assert result.bindings
    prepared.close()


def bench_ablation_indexes_ni_dropped(benchmark):
    """NI after dropping every secondary index (full scans per hop)."""
    prepared = prepare_store(ABLATION_L, ABLATION_D, runs=1, cache=False)
    prepared.store.drop_indexes()
    assert not prepared.store.has_indexes()
    engine = NaiveEngine(prepared.store)
    run_id = prepared.run_ids[0]
    result = benchmark(lambda: engine.lineage(run_id, focused_query()))
    assert result.bindings
    prepared.close()


def bench_ablation_indexes_indexproj_dropped(benchmark):
    """INDEXPROJ after dropping the indexes: one scan instead of many."""
    prepared = prepare_store(ABLATION_L, ABLATION_D, runs=1, cache=False)
    prepared.store.drop_indexes()
    flow = prepared.flow
    engine = IndexProjEngine(prepared.store, flow)
    run_id = prepared.run_ids[0]
    engine.lineage(run_id, focused_query())  # warm plan
    result = benchmark(lambda: engine.lineage(run_id, focused_query()))
    assert result.bindings
    prepared.close()


def bench_ablation_indexes_report(benchmark, emit_report):
    """Quantify the index ablation and check the expected ordering."""

    def run() -> list:
        rows = []
        for indexed in (True, False):
            prepared = prepare_store(ABLATION_L, ABLATION_D, runs=1, cache=False)
            if not indexed:
                prepared.store.drop_indexes()
            ni = NaiveEngine(prepared.store)
            ip = IndexProjEngine(prepared.store, prepared.flow)
            run_id = prepared.run_ids[0]
            query = focused_query()
            ip.lineage(run_id, query)  # warm plan cache
            ni_timing, _ = best_of(lambda: ni.lineage(run_id, query), 5)
            ip_timing, _ = best_of(lambda: ip.lineage(run_id, query), 5)
            rows.append(
                {
                    "indexes": "yes" if indexed else "no",
                    "naive_ms": ni_timing.best_ms,
                    "indexproj_ms": ip_timing.best_ms,
                    "records": prepared.record_count,
                }
            )
            prepared.close()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_indexes",
        rows,
        f"Ablation — secondary indexes (l={ABLATION_L}, d={ABLATION_D})",
    )
    indexed, dropped = rows
    # Dropping indexes must hurt NI much more than INDEXPROJ (absolute).
    ni_penalty = dropped["naive_ms"] - indexed["naive_ms"]
    ip_penalty = dropped["indexproj_ms"] - indexed["indexproj_ms"]
    assert ni_penalty > 5 * max(ip_penalty, 0.001)


def bench_ablation_plan_cache_cold(benchmark):
    """Cold planning: graph traversal on every query."""
    prepared = prepare_store(ABLATION_L, ABLATION_D, runs=1)
    engine = IndexProjEngine(prepared.store, prepared.flow, cache_plans=False)
    run_id = prepared.run_ids[0]
    result = benchmark(lambda: engine.lineage(run_id, focused_query()))
    assert result.bindings


def bench_ablation_plan_cache_warm(benchmark):
    """Warm planning: the cached-plan fast path."""
    prepared = prepare_store(ABLATION_L, ABLATION_D, runs=1)
    engine = IndexProjEngine(prepared.store, prepared.flow, cache_plans=True)
    run_id = prepared.run_ids[0]
    engine.lineage(run_id, focused_query())
    result = benchmark(lambda: engine.lineage(run_id, focused_query()))
    assert result.bindings


def bench_ablation_breadth_report(benchmark, emit_report):
    """Workflow breadth: the paper factors it out of the experiment space
    because "the 'breadth' of a workflow does indeed affect the graph
    search phase of query processing, [but] it does so equally for all
    approaches".  The n-ary testbed variant makes that checkable: the
    traversal grows with the branch count while INDEXPROJ's trace access
    stays at one lookup.
    """

    def run() -> list:
        from repro.engine.executor import WorkflowRunner
        from repro.provenance.capture import capture_run
        from repro.query.base import LineageQuery
        from repro.testbed.generator import multi_chain_workflow
        from repro.values.index import Index

        rows = []
        runner = WorkflowRunner()
        for branches in (2, 3, 4, 6):
            flow = multi_chain_workflow(20, branches=branches)
            captured = capture_run(flow, {"ListSize": 4}, runner=runner)
            with TraceStore() as store:
                store.insert_trace(captured.trace)
                query = LineageQuery.create(
                    "2TO1_FINAL", "y", Index.of([0] * branches), ["LISTGEN_1"]
                )
                engine = IndexProjEngine(store, flow, cache_plans=False)
                timing, result = best_of(
                    lambda: engine.lineage(captured.run_id, query), 5
                )
                plan, _ = engine.plan(query)
                rows.append(
                    {
                        "branches": branches,
                        "graph_nodes": len(flow.processors),
                        "visited_ports": plan.visited_ports,
                        "sql_queries": result.stats.queries,
                        "indexproj_ms": timing.best_ms,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_breadth",
        rows,
        "Ablation — workflow breadth (n-ary testbed, l=20, d=4)",
    )
    visited = [row["visited_ports"] for row in rows]
    assert visited == sorted(visited) and visited[-1] > visited[0]
    assert all(row["sql_queries"] == 1 for row in rows)


def bench_ablation_value_interning_report(benchmark, emit_report, tmp_path_factory):
    """Inline payloads vs a normalized value pool.

    Interning wins exactly where real traces are heavy: large values
    recorded whole by many instances (the paper's P:X2 pattern) and
    repeated across runs.  Query answers are identical either way; query
    time pays one LEFT JOIN.
    """

    def run() -> list:
        from repro.engine.processors import default_registry
        from repro.workflow.builder import DataflowBuilder

        flow = (
            DataflowBuilder("wf")
            .input("keys", "list(string)")
            .input("biglist", "list(string)")
            .output("out", "list(integer)")
            .processor(
                "P",
                inputs=[("k", "string"), ("whole", "list(string)")],
                outputs=[("y", "integer")],
                operation="measure",
            )
            .arcs(("wf:keys", "P:k"), ("wf:biglist", "P:whole"),
                  ("P:y", "wf:out"))
            .build()
        )
        registry = default_registry().extended()
        registry.register(
            "measure", lambda inputs, config: {"y": len(inputs["whole"])}
        )
        inputs = {
            "keys": [f"k{i}" for i in range(50)],
            "biglist": [f"payload-item-{i:06d}" for i in range(400)],
        }
        base = tmp_path_factory.mktemp("interning")
        rows = []
        from repro.engine.executor import WorkflowRunner
        from repro.provenance.capture import capture_run
        from repro.query.base import LineageQuery

        runner = WorkflowRunner(registry)
        captures = [
            capture_run(flow, inputs, runner=runner) for _ in range(5)
        ]
        for interning in (False, True):
            path = str(base / f"traces_{interning}.db")
            with TraceStore(path, intern_values=interning) as store:
                for captured in captures:
                    store.insert_trace(captured.trace)
                store._conn.execute("VACUUM")
                engine = NaiveEngine(store)
                query = LineageQuery.create("wf", "out", [0], ["P"])
                timing, result = best_of(
                    lambda: engine.lineage(captures[0].run_id, query), 5
                )
                bindings = len(result.bindings)
            import os

            rows.append(
                {
                    "payloads": "interned" if interning else "inline",
                    "db_bytes": os.path.getsize(path),
                    "query_ms": timing.best_ms,
                    "bindings": bindings,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_value_interning",
        rows,
        "Ablation — payload storage (P:X2-style workload, 5 runs)",
    )
    inline, interned = rows
    assert interned["db_bytes"] < 0.3 * inline["db_bytes"]
    assert interned["bindings"] == inline["bindings"]


def bench_ablation_impact_forward_report(benchmark, emit_report):
    """Forward (impact) queries: extensional walk vs pattern-based plan.

    Beyond the paper: the intensional trick reversed.  Note the asymmetry
    the report exposes — a pattern with a leading wildcard (the second
    cross-product slot) cannot use the index prefix and falls back to a
    prefix fetch + client filter, so its row count is the full d^2 output
    set even though the SQL round-trip count stays at the plan size.
    """

    def run() -> list:
        from repro.query.impact import (
            ImpactQuery,
            IndexProjImpactEngine,
            NaiveImpactEngine,
        )

        prepared = prepare_store(ABLATION_L, ABLATION_D, runs=1, cache=False)
        run_id = prepared.run_ids[0]
        query = ImpactQuery.create(
            "LISTGEN_1", "list", [0], ["2TO1_FINAL"]
        )
        naive = NaiveImpactEngine(prepared.store)
        pattern = IndexProjImpactEngine(prepared.store, prepared.flow)
        pattern.impact(run_id, query)  # warm plan cache
        rows = []
        for mode, engine in (("extensional", naive), ("pattern", pattern)):
            timing, result = best_of(
                lambda e=engine: e.impact(run_id, query), 5
            )
            rows.append(
                {
                    "mode": mode,
                    "ms": timing.best_ms,
                    "sql_queries": result.stats.queries,
                    "rows_fetched": result.stats.rows,
                    "bindings": len(result.bindings),
                }
            )
        assert rows[0]["bindings"] == rows[1]["bindings"]
        prepared.close()
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_impact_forward",
        rows,
        f"Ablation — forward impact strategies (l={ABLATION_L}, "
        f"d={ABLATION_D})",
    )
    extensional, pattern = rows
    assert pattern["sql_queries"] < extensional["sql_queries"]


def bench_ablation_capture_overhead_report(benchmark, emit_report):
    """Cost of provenance capture itself: no listener vs in-memory trace
    vs streaming straight into SQLite.

    Not a paper figure, but the first question any adopter asks: what does
    recording all those xform/xfer events cost relative to just running
    the workflow?
    """

    def run() -> list:
        from repro.provenance.streaming import StreamingTraceWriter
        from repro.provenance.trace import TraceBuilder

        flow = chain_product_workflow(ABLATION_L)
        runner = WorkflowRunner()
        inputs = {"ListSize": ABLATION_D}
        runner.run(flow, inputs)  # warm the analysis cache
        rows = []

        timing, _ = best_of(lambda: runner.run(flow, inputs), 5)
        rows.append({"mode": "no capture", "ms": timing.best_ms, "records": 0})

        def with_builder():
            builder = TraceBuilder("t", flow.name)
            runner.run(flow, inputs, listener=builder)
            return builder.trace

        timing, trace = best_of(with_builder, 5)
        rows.append(
            {
                "mode": "in-memory trace",
                "ms": timing.best_ms,
                "records": trace.record_count,
            }
        )

        def with_streaming():
            with TraceStore() as store:
                with StreamingTraceWriter(store, workflow=flow.name) as writer:
                    runner.run(flow, inputs, listener=writer)
                return store.record_count(writer.run_id)

        timing, records = best_of(with_streaming, 5)
        rows.append(
            {"mode": "streaming to SQLite", "ms": timing.best_ms,
             "records": records}
        )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_capture_overhead",
        rows,
        f"Ablation — provenance capture overhead (l={ABLATION_L}, "
        f"d={ABLATION_D})",
    )
    bare, memory, streaming = rows
    assert bare["ms"] <= memory["ms"] <= streaming["ms"] * 1.5


def bench_ablation_multirun_batched_report(benchmark, emit_report):
    """Per-run loop vs batched IN-query execution of multi-run queries."""

    def run() -> list:
        flow = chain_product_workflow(ABLATION_L)
        rows = []
        with TraceStore() as store:
            run_ids = populate_store(
                store, flow, {"ListSize": ABLATION_D}, runs=20
            )
            engine = IndexProjEngine(store, flow)
            query = focused_query()
            engine.lineage_multirun(run_ids, query)  # warm plan + cache
            loop_timing, looped = best_of(
                lambda: engine.lineage_multirun(run_ids, query), 5
            )
            batch_timing, batched = best_of(
                lambda: engine.lineage_multirun_batched(run_ids, query), 5
            )
            assert all(
                batched.per_run[r].binding_keys()
                == looped.per_run[r].binding_keys()
                for r in run_ids
            )
            rows.append(
                {
                    "mode": "per-run loop",
                    "ms": loop_timing.best_ms,
                    "sql_queries": sum(
                        r.stats.queries for r in looped.per_run.values()
                    ),
                }
            )
            rows.append(
                {
                    "mode": "batched IN-query",
                    "ms": batch_timing.best_ms,
                    "sql_queries": batched.per_run[run_ids[0]].stats.queries,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_multirun_batched",
        rows,
        f"Ablation — multi-run execution mode (l={ABLATION_L}, "
        f"d={ABLATION_D}, 20 runs)",
    )
    loop_row, batch_row = rows
    assert batch_row["sql_queries"] < loop_row["sql_queries"]


def bench_ablation_xfer_granularity_report(benchmark, emit_report):
    """Fine vs coarse transfer events: trace size and answer identity."""

    def run() -> list:
        flow = chain_product_workflow(ABLATION_L)
        rows = []
        answers = {}
        for granularity in ("fine", "coarse"):
            runner = WorkflowRunner(xfer_granularity=granularity)
            with TraceStore() as store:
                run_ids = populate_store(
                    store, flow, {"ListSize": ABLATION_D}, runs=1, runner=runner
                )
                engine = NaiveEngine(store)
                query = focused_query()
                timing, result = best_of(
                    lambda: engine.lineage(run_ids[0], query), 5
                )
                answers[granularity] = result.binding_keys()
                rows.append(
                    {
                        "xfer_granularity": granularity,
                        "records": store.record_count(),
                        "naive_ms": timing.best_ms,
                        "sql_queries": result.stats.queries,
                        "bindings": len(result.bindings),
                    }
                )
        assert answers["fine"] == answers["coarse"]  # identical answers
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    emit_report(
        "ablation_xfer_granularity",
        rows,
        f"Ablation — xfer event granularity (l={ABLATION_L}, d={ABLATION_D})",
    )
    fine, coarse = rows
    assert coarse["records"] < fine["records"]
    assert coarse["bindings"] == fine["bindings"]
