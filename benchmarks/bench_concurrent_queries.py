"""Concurrent multi-run lineage — parallel s2 fan-out vs. sequential sweep.

Beyond the paper's figures: Section 3.4's shared static traversal makes
the per-run lookup step (s2) embarrassingly parallel.  The kernel rows
time the in-cache regime (bounded by core count and the GIL-held share of
row decoding); the report additionally runs the slow-read regime, where a
deterministic per-read latency (the fault-injection seam) stands in for
cold storage and worker threads overlap their waits.  The report asserts
the acceptance threshold: >= 2x wall-clock speedup for the parallel path
on a >= 500-run store in the latency-bound regime.
"""

from pathlib import Path

from repro.bench.concurrency import best_slow_read_speedup, concurrent_queries
from repro.bench.reporting import write_bench_json
from repro.provenance.store import TraceStore
from repro.query.indexproj import IndexProjEngine
from repro.testbed.runs import populate_store
from repro.testbed.workloads import genes2kegg_workload

REPO_ROOT = Path(__file__).resolve().parent.parent


def _gk_store(tmp_path, runs=500):
    workload = genes2kegg_workload()
    store = TraceStore(str(tmp_path / "traces.db"))
    run_ids = populate_store(
        store, workload.flow, workload.inputs, runs=runs,
        runner=workload.runner(), run_prefix=workload.name,
    )
    store.create_indexes()
    return workload, store, run_ids


def bench_concurrent_kernel_sequential(benchmark, tmp_path):
    """Timed kernel: sequential 500-run sweep, shared plan (baseline)."""
    workload, store, run_ids = _gk_store(tmp_path)
    engine = IndexProjEngine(store, workload.flow.flattened())
    query = workload.unfocused_query()
    engine.lineage_multirun(run_ids[:5], query)
    result = benchmark(lambda: engine.lineage_multirun(run_ids, query))
    assert len(result.per_run) == len(run_ids)
    store.close()


def bench_concurrent_kernel_parallel(benchmark, tmp_path):
    """Timed kernel: the same sweep fanned out over 8 worker threads."""
    workload, store, run_ids = _gk_store(tmp_path)
    engine = IndexProjEngine(store, workload.flow.flattened())
    query = workload.unfocused_query()
    engine.lineage_multirun(run_ids[:5], query)
    result = benchmark(
        lambda: engine.lineage_multirun_parallel(run_ids, query, max_workers=8)
    )
    assert len(result.per_run) == len(run_ids)
    store.close()


def bench_concurrent_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: concurrent_queries(scale), rounds=1, iterations=1
    )
    emit_report(
        "concurrent_queries",
        rows,
        f"Concurrent multi-run lineage — parallel s2 fan-out (scale={scale})",
        columns=["regime", "workers", "runs", "ms", "speedup", "identical"],
    )
    assert all(row["identical"] for row in rows)
    assert best_slow_read_speedup(rows) >= 2.0
    write_bench_json(
        str(REPO_ROOT / "BENCH_concurrent.json"),
        {
            "bench": "concurrent_queries",
            "scale": scale,
            "rows": rows,
            "acceptance": {
                "slow_read_speedup_threshold": 2.0,
                "best_slow_read_speedup": best_slow_read_speedup(rows),
            },
        },
    )
