"""Fig. 6 — NI lineage query response time vs accumulated database size.

Paper shape: accumulating 10x more records (traces of 10 runs) costs NI
only ~20% more response time, because every lookup is indexed and no full
scans occur.  We assert the weak form: time growth far below record
growth, and a SQL round-trip count that does not change at all.
"""

from repro.bench.figures import fig6_db_size, scale_config
from repro.bench.harness import prepare_store
from repro.query.naive import NaiveEngine
from repro.testbed.generator import focused_query


def bench_fig6_kernel_query_on_accumulated_store(benchmark, scale):
    """Timed kernel: NI single-run query against a multi-run store."""
    config = scale_config(scale)
    prepared = prepare_store(
        config["fig6_l"], config["fig6_d"], runs=config["fig6_runs"]
    )
    engine = NaiveEngine(prepared.store)
    query = focused_query()
    run_id = prepared.run_ids[0]
    result = benchmark(lambda: engine.lineage(run_id, query))
    assert result.bindings


def bench_fig6_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: fig6_db_size(scale), rounds=1, iterations=1
    )
    emit_report(
        "fig6_db_size",
        rows,
        f"Fig. 6 — NI response vs accumulated DB size (scale={scale})",
    )
    record_growth = rows[-1]["records"] / rows[0]["records"]
    time_growth = rows[-1]["naive_ms"] / rows[0]["naive_ms"]
    assert time_growth < record_growth
    assert rows[0]["sql_queries"] == rows[-1]["sql_queries"]
