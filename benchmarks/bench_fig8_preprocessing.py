"""Fig. 8 — pre-processing time t1 vs workflow size l (up to 200).

Paper shape: t1 grows with the specification graph size and stays below
one second for graphs of up to ~100 nodes.  t1 here is Alg. 1 depth
propagation plus one unfocused plan traversal — the work INDEXPROJ does
once per workflow definition and then shares across all queries and runs.
"""

from repro.bench.figures import fig8_preprocessing, scale_config
from repro.query.base import LineageQuery
from repro.query.indexproj import build_plan
from repro.testbed.generator import chain_product_workflow, unfocused_query
from repro.workflow.depths import propagate_depths


def bench_fig8_kernel_depth_propagation(benchmark, scale):
    """Timed kernel: Alg. 1 on the largest generated graph."""
    config = scale_config(scale)
    flow = chain_product_workflow(config["fig8_l_values"][-1])
    analysis = benchmark(lambda: propagate_depths(flow))
    assert analysis.iteration_level("2TO1_FINAL") == 2


def bench_fig8_kernel_plan_traversal(benchmark, scale):
    """Timed kernel: one unfocused plan traversal on the largest graph."""
    config = scale_config(scale)
    flow = chain_product_workflow(config["fig8_l_values"][-1])
    analysis = propagate_depths(flow)
    query = unfocused_query(flow)
    plan = benchmark(lambda: build_plan(analysis, query))
    assert len(plan.trace_queries) > 0


def bench_fig8_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: fig8_preprocessing(scale), rounds=1, iterations=1
    )
    emit_report(
        "fig8_preprocessing",
        rows,
        f"Fig. 8 — pre-processing time t1 vs l (scale={scale})",
    )
    times = [row["t1_ms"] for row in rows]
    assert times[-1] > times[0]
    for row in rows:
        if row["graph_nodes"] <= 102:
            assert row["t1_ms"] < 1000.0
