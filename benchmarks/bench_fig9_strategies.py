"""Fig. 9 — lineage query response time across strategies, vs l, for two d.

Paper shape: NI grows roughly linearly in the chain length l (one indexed
lookup pair per provenance hop); INDEXPROJ is essentially constant in l
(one trace lookup regardless of path length) and constant in d; the
plan-cached variant strips even the graph traversal.
"""

from pathlib import Path

import pytest

from repro.bench.figures import fig9_strategies, scale_config
from repro.bench.harness import prepare_store
from repro.bench.reporting import write_bench_json
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.testbed.generator import focused_query

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def midsize_store(scale):
    config = scale_config(scale)
    length = config["fig9_l_values"][-1]
    d = config["fig9_d_values"][0]
    return prepare_store(length, d, runs=1)


def bench_fig9_kernel_naive(benchmark, midsize_store):
    """Timed kernel: the focused query under NI at the largest l."""
    engine = NaiveEngine(midsize_store.store)
    query = focused_query()
    run_id = midsize_store.run_ids[0]
    result = benchmark(lambda: engine.lineage(run_id, query))
    assert result.bindings


def bench_fig9_kernel_indexproj(benchmark, midsize_store):
    """Timed kernel: the same query under INDEXPROJ (cold plans)."""
    engine = IndexProjEngine(
        midsize_store.store, midsize_store.flow, cache_plans=False
    )
    query = focused_query()
    run_id = midsize_store.run_ids[0]
    result = benchmark(lambda: engine.lineage(run_id, query))
    assert result.bindings


def bench_fig9_kernel_indexproj_cached(benchmark, midsize_store):
    """Timed kernel: INDEXPROJ with a warm plan cache."""
    engine = IndexProjEngine(
        midsize_store.store, midsize_store.flow, cache_plans=True
    )
    query = focused_query()
    run_id = midsize_store.run_ids[0]
    engine.lineage(run_id, query)  # warm the cache
    result = benchmark(lambda: engine.lineage(run_id, query))
    assert result.bindings


def bench_fig9_report(benchmark, scale, emit_report):
    """Regenerate the full Fig. 9 series and verify its shape."""
    rows = benchmark.pedantic(
        lambda: fig9_strategies(scale), rounds=1, iterations=1
    )
    emit_report(
        "fig9_strategies",
        rows,
        f"Fig. 9 — query time across strategies (scale={scale})",
        columns=["d", "l", "strategy", "ms", "sql_queries"],
    )
    ni = {(r["d"], r["l"]): r["ms"] for r in rows if r["strategy"] == "NI"}
    ip = {
        (r["d"], r["l"]): r["ms"]
        for r in rows
        if r["strategy"] == "INDEXPROJ-cached"
    }
    # INDEXPROJ wins at every configuration, by a growing factor in l.
    for key, ni_ms in ni.items():
        assert ip[key] < ni_ms
    # Machine-readable perf trajectory, like BENCH_cache.json /
    # BENCH_batch.json.
    write_bench_json(
        str(REPO_ROOT / "BENCH_strategies.json"),
        {
            "bench": "fig9_strategies",
            "scale": scale,
            "rows": rows,
            "acceptance": {
                "indexproj_cached_beats_naive_everywhere": True,
            },
        },
    )
