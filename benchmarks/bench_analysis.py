"""Static-analysis overhead and fast-reject payoff.

Not a paper figure: this module quantifies the cost/benefit of the
``repro.analysis`` pre-checker added on top of the paper's machinery.

* the pre-checker itself is O(graph) and must stay microseconds-cheap,
  since every ``ProvenanceService.lineage()`` call pays it;
* a provably-empty query answered by the fast-reject path must beat
  actually executing it (which re-discovers the empty answer through
  trace lookups, per run);
* linting a workflow is a one-off design-time action — benchmarked to
  keep it interactive on the synthetic chains.
"""

import pytest

from repro.analysis.lint import LintConfig, run_lint
from repro.analysis.planlint import analyze, plan_findings
from repro.analysis.precheck import precheck_query
from repro.query.base import LineageQuery
from repro.service import ProvenanceService
from repro.testbed.generator import chain_product_workflow
from repro.workflow.depths import propagate_depths


LENGTH = 6
#: CHAIN2_0 is on the second branch: provably not upstream of CHAIN1_1:y.
DISCONNECTED = LineageQuery.create("CHAIN1_1", "y", (0,), ("CHAIN2_0",))
VIABLE = LineageQuery.create("2TO1_FINAL", "y", (0, 0), ("LISTGEN_1",))


@pytest.fixture(scope="module")
def chain_analysis():
    return propagate_depths(chain_product_workflow(LENGTH).flattened())


@pytest.fixture(scope="module")
def populated_service(scale):
    d = 4 if scale == "quick" else 10
    flow = chain_product_workflow(LENGTH)
    with ProvenanceService() as service:
        service.register_workflow(flow)
        for _ in range(3):
            service.run(flow.name, {"ListSize": d})
        yield service


def bench_precheck_kernel_viable(benchmark, chain_analysis):
    """Timed kernel: triaging a viable query (the per-call overhead)."""
    report = benchmark(lambda: precheck_query(chain_analysis, VIABLE))
    assert report.is_viable


def bench_precheck_kernel_empty(benchmark, chain_analysis):
    """Timed kernel: proving a disconnected query empty."""
    report = benchmark(lambda: precheck_query(chain_analysis, DISCONNECTED))
    assert report.is_empty


def bench_fast_reject_vs_execution(benchmark, populated_service):
    """Timed kernel: the service's fast-reject path (zero trace reads)."""
    result = benchmark(
        lambda: populated_service.lineage(DISCONNECTED)
    )
    assert result.per_run == {}


def bench_executed_empty_query(benchmark, populated_service):
    """Baseline: the same empty answer discovered through the store."""
    runs = populated_service.runs_of(f"synthetic_l{LENGTH}")
    result = benchmark(
        lambda: populated_service.lineage(
            DISCONNECTED, runs=runs, precheck=False
        )
    )
    assert all(not r.bindings for r in result.per_run.values())


def bench_lint_kernel(benchmark, chain_analysis):
    """Timed kernel: the full rule catalogue over the synthetic chain."""
    findings = benchmark(lambda: run_lint(chain_analysis.flow))
    assert not any(f.is_error for f in findings)


def bench_plan_lint(benchmark):
    """Timed kernel: EXPLAIN every registered store primitive and lint it.

    One-off design/CI-time action (schema DDL + N EXPLAIN QUERY PLAN runs
    against an in-memory store); benchmarked to keep the CI gate cheap.
    """

    def run():
        report = analyze()
        return report, plan_findings(report, LintConfig())

    report, findings = benchmark(run)
    assert report.statement_count() > 0
    assert not any(f.is_error for f in findings)
