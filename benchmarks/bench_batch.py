"""Set-based batched execution — round-trip collapse across runs.

Beyond the paper's figures: the batched read path (docs/PERFORMANCE.md)
answers the full ``plan × run-set`` lookup grid of a multi-run lineage
query in ``ceil(keys/chunk)`` SQL statements instead of one per key.
The kernel rows time a 20-run focused query unbatched vs. batched; the
report benchmark runs the full ``repro.bench.batching`` sweep, asserts
the acceptance floors — batched answers identical everywhere, never more
round-trips than unbatched, and >= 3x fewer at the largest run scope —
then writes the machine-readable ``BENCH_batch.json`` record at the
repository root.
"""

from pathlib import Path

import pytest

from repro.bench.batching import (
    REDUCTION_THRESHOLD,
    batch_sweep,
    min_reduction_at_max_runs,
)
from repro.bench.reporting import write_bench_json
from repro.service import ProvenanceService
from repro.testbed.workloads import genes2kegg_workload

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def gk_service(tmp_path_factory):
    workload = genes2kegg_workload()
    tmp = tmp_path_factory.mktemp("bench-batch")
    service = ProvenanceService(str(tmp / "traces.db"), cache=False)
    service.register_workflow(workload.flow, workload.registry)
    for _ in range(20):
        service.run(workload.flow.name, workload.inputs)
    service.store.create_indexes()
    yield workload, service
    service.close()


def bench_batch_kernel_unbatched(benchmark, gk_service):
    """Timed kernel: 20-run focused query, one statement per key."""
    workload, service = gk_service
    query = workload.focused_query()
    # compiled=False: this kernel times the interpreted per-key shape.
    result = benchmark(lambda: service.lineage(query, compiled=False))
    assert result.sql_queries == 20


def bench_batch_kernel_batched(benchmark, gk_service):
    """Timed kernel: the same query through the set-based grid."""
    workload, service = gk_service
    query = workload.focused_query()
    result = benchmark(lambda: service.lineage(query, batch=True))
    assert result.sql_queries == 1


def bench_batch_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: batch_sweep(scale), rounds=1, iterations=1
    )
    emit_report(
        "batch_sweep",
        rows,
        f"Set-based batched execution (scale={scale})",
        columns=[
            "workload", "query", "strategy", "runs", "unbatched_ms",
            "batched_ms", "unbatched_queries", "batched_queries",
            "reduction", "identical",
        ],
    )
    assert all(row["identical"] for row in rows)
    assert all(
        row["batched_queries"] <= row["unbatched_queries"] for row in rows
    )
    assert min_reduction_at_max_runs(rows) >= REDUCTION_THRESHOLD
    write_bench_json(
        str(REPO_ROOT / "BENCH_batch.json"),
        {
            "bench": "batch_sweep",
            "scale": scale,
            "rows": rows,
            "acceptance": {
                "reduction_threshold": REDUCTION_THRESHOLD,
                "min_reduction_at_max_runs": min_reduction_at_max_runs(rows),
                "never_more_round_trips": True,
            },
        },
    )
