"""Table 1 — trace database record counts over the (l, d) grid.

Paper shape: counts grow linearly in ``l * d`` (per-element events along
the chains) plus a ``d^2`` term from the final cross product.  Absolute
numbers differ from the paper's (the relational schema differs), but the
growth law is the same.
"""

from repro.bench.figures import table1_trace_sizes
from repro.bench.harness import prepare_store
from repro.bench.reporting import pivot


def bench_table1_populate_kernel(benchmark, scale):
    """Timed kernel: generate + execute + store one mid-grid configuration."""
    from repro.bench.figures import scale_config

    config = scale_config(scale)
    length = config["l_values"][1]
    d = config["d_values"][1]
    prepared = benchmark.pedantic(
        lambda: prepare_store(length, d, runs=1, cache=False),
        rounds=1,
        iterations=1,
    )
    assert prepared.record_count > 0
    prepared.close()


def bench_table1_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: table1_trace_sizes(scale), rounds=1, iterations=1
    )
    pivoted = pivot(rows, index="d", column="l", value="records")
    emit_report(
        "table1_trace_sizes",
        pivoted,
        f"Table 1 — trace records for one run, d rows x l columns "
        f"(scale={scale})",
    )
    # Growth law: monotone in both dimensions, superlinear in d (d^2 term).
    by_config = {(r["d"], r["l"]): r["records"] for r in rows}
    ds = sorted({d for d, _ in by_config})
    ls = sorted({l for _, l in by_config})
    for d in ds:
        series = [by_config[(d, l)] for l in ls]
        assert series == sorted(series)
    if len(ds) >= 3:
        low, mid, high = ds[0], ds[len(ds) // 2], ds[-1]
        l = ls[0]
        first_slope = (by_config[(mid, l)] - by_config[(low, l)]) / (mid - low)
        second_slope = (by_config[(high, l)] - by_config[(mid, l)]) / (high - mid)
        assert second_slope > first_slope  # superlinear in d
