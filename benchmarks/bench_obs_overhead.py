"""Observability overhead — the disabled path must stay near-free.

Every hot path in the engine, store and query strategies now carries
``repro.obs`` instrumentation guarded by ``obs.enabled``.  The acceptance
criterion for the subsystem is that the *disabled* default adds at most
~2% to the latency-bound query regime.  Because the pre-instrumentation
code no longer exists to diff against, the bound is established from two
measurements:

* a micro benchmark of the disabled hooks themselves (shared no-op span,
  guarded counter update) — nanoseconds per call; and
* the instrumented sweep's per-query latency together with the number of
  hook crossings per query (read off the *enabled* run's own counters).

``estimated overhead = hooks/query x ns/hook / ns/query`` — asserted
< 2%.  The enabled-vs-disabled macro comparison is reported alongside
(not tightly asserted: span allocation cost is real and accepted when
profiling is requested).

The *request-level* regimes measure what the telemetry budget actually
governs: a warm HTTP lineage request with tracing disabled, fully
enabled (sampling 1.0), and head-sampled at 0.1.  The three servers run
concurrently and the wall-clock probes interleave in lockstep, so clock
drift and machine noise hit every regime equally; the measured p50s are
reported and recorded verbatim.

The asserted *overhead* numbers use the same estimator the disabled
budget has always used, extended to the enabled regimes: count the
telemetry operations one warm request performs (spans from the live
tracer's own tree, counter/histogram traffic from the live metrics
snapshot), microbench each operation, and divide the summed cost by the
measured disabled p50.  Rationale: single-core CI runners show a
run-to-run p50 spread an order of magnitude larger than the budget
itself (tens of microseconds of scheduler and cgroup noise on a
~0.5 ms request), so a direct A/B p50 subtraction certifies nothing at
the 2% level — while the op inventory and per-op costs are stable and
reproducible.  The raw measured p50s ride along in ``BENCH_obs.json``
so a real regression in either number stays visible.  Budgets
(asserted): enabled <= 5% of the disabled p50, sampled(0.1) <= 2%,
disabled hook estimate <= 2%.
"""

from __future__ import annotations

import gc
import time
from pathlib import Path
from typing import Dict

from repro.bench.reporting import write_bench_json
from repro.obs import NO_OBS, Observability, SpanSink
from repro.obs.tracer import Tracer, format_traceparent
from repro.obs.window import TimeWindow
from repro.provenance.store import TraceStore
from repro.server.admission import AdmissionController
from repro.query.indexproj import IndexProjEngine
from repro.query.parser import format_query
from repro.server import (
    ServerClient,
    ServerConfig,
    ServerThread,
    TenantRegistry,
)
from repro.service import ProvenanceService
from repro.testbed.runs import populate_store
from repro.testbed.workloads import genes2kegg_workload

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Acceptance budgets for request-level tracing overhead (percent of the
#: disabled-path p50).  CI reads these back out of ``BENCH_obs.json``.
BUDGET_ENABLED_PCT = 5.0
BUDGET_SAMPLED_PCT = 2.0
BUDGET_DISABLED_PCT = 2.0


def _best_seconds(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _populated(runs: int):
    workload = genes2kegg_workload()
    store = TraceStore()
    run_ids = populate_store(
        store, workload.flow, workload.inputs, runs=runs,
        runner=workload.runner(), run_prefix=workload.name,
    )
    store.create_indexes()
    return workload, store, run_ids


def _disabled_guard_ns(iterations: int = 500_000) -> float:
    """Cost of the ``if obs.enabled: obs.inc(...)`` hot-path guard, in ns.

    This is what a disabled store read actually pays (no span is created
    on the metrics-only paths); spans/timers are costed separately.
    """
    obs = NO_OBS

    def body() -> None:
        for _ in range(iterations):
            if obs.enabled:
                obs.inc("x")

    return _best_seconds(body, repeats=3) / iterations * 1e9


def _disabled_timer_ns(iterations: int = 200_000) -> float:
    """Cost of one disabled ``timer()`` stopwatch (per-run s2 timing)."""
    obs = NO_OBS

    def body() -> None:
        for _ in range(iterations):
            with obs.timer("t"):
                pass

    return _best_seconds(body, repeats=3) / iterations * 1e9


def obs_overhead(scale: str):
    runs = 50 if scale == "quick" else 200
    workload, store, run_ids = _populated(runs)
    flat = workload.flow.flattened()
    query = workload.unfocused_query()

    disabled_engine = IndexProjEngine(store, flat)
    disabled_engine.lineage_multirun(run_ids[:5], query)  # warm caches
    disabled = _best_seconds(
        lambda: disabled_engine.lineage_multirun(run_ids, query)
    )

    obs = Observability()
    enabled_engine = IndexProjEngine(store, flat, obs=obs)
    store.obs = obs  # the store was built before the handle existed
    enabled_engine.lineage_multirun(run_ids[:5], query)
    obs.reset()
    enabled = _best_seconds(
        lambda: enabled_engine.lineage_multirun(run_ids, query)
    )
    store.obs = NO_OBS
    # Hook crossings per sweep, from the enabled run's own accounting:
    # every store read passes ~3 enabled-guards, every run in scope one
    # disabled timer (s2) plus a couple of guards around it.
    sweeps = 5  # _best_seconds repeats
    reads = obs.counter_value("store.reads") / sweeps
    guard_ns = _disabled_guard_ns()
    timer_ns = _disabled_timer_ns()
    estimated_ns = (
        3 * reads * guard_ns + len(run_ids) * (timer_ns + 2 * guard_ns)
    )
    estimated_pct = estimated_ns / (disabled * 1e9) * 100

    store.close()
    return [
        {
            "regime": "micro.disabled_hooks", "ms": timer_ns / 1e6,
            "overhead_pct": 0.0,
            "note": f"{guard_ns:.0f} ns/guard, {timer_ns:.0f} ns/timer",
        },
        {
            "regime": "sweep.disabled", "ms": disabled * 1000,
            "overhead_pct": 0.0,
            "note": f"{len(run_ids)} runs, default NO_OBS",
        },
        {
            "regime": "sweep.enabled", "ms": enabled * 1000,
            "overhead_pct": (enabled - disabled) / disabled * 100,
            "note": f"{reads:.0f} reads/sweep traced",
        },
        {
            "regime": "sweep.disabled_estimated", "ms": disabled * 1000,
            "overhead_pct": estimated_pct,
            "note": f"{estimated_ns / 1000:.1f} us of hooks/sweep",
        },
    ]


def _boot_traced_server(obs, trace_sample: float):
    """One served genes2kegg deployment under the given obs handle."""
    workload = genes2kegg_workload()
    service = ProvenanceService(obs=obs if obs.enabled else None)
    service.register_workflow(workload.flow, workload.registry)
    for _ in range(3):
        service.run(workload.name, workload.inputs)
    registry = TenantRegistry(obs=obs)
    registry.register_service("default", service)
    config = ServerConfig(obs=obs, trace_sample=trace_sample)
    thread = ServerThread(config=config, registry=registry)
    return workload, service, thread


def _op_ns(fn, iterations: int = 20_000, repeats: int = 3) -> float:
    """Best-of wall time for one call of ``fn``, in nanoseconds."""

    def body() -> None:
        for _ in range(iterations):
            fn()

    return _best_seconds(body, repeats=repeats) / iterations * 1e9


def _telemetry_op_costs(query) -> Dict[str, float]:
    """Microbench every telemetry operation a traced request performs.

    Standalone reconstructions of the live objects — a tracer with a
    span sink attached, cached metric instruments, a time window, an
    admission gate — so each per-op cost includes the same locks and
    allocations the serving path pays.
    """
    costs: Dict[str, float] = {}

    tracer = Tracer()
    tracer.sink = SpanSink(capacity=256)

    def sampled_root() -> None:
        with tracer.span("r"):
            pass

    costs["root_span"] = _op_ns(sampled_root)
    hold = tracer.span("hold")
    held = hold.__enter__()

    def child() -> None:
        with tracer.span("c"):
            pass

    costs["child_span"] = _op_ns(child)
    costs["span_set"] = _op_ns(
        lambda: held.set(method="GET", path="/v1/lineage/-", status=200)
    )
    hold.__exit__(None, None, None)
    tracer.reset()

    unsampled = Tracer()
    unsampled.set_sampling(0.0)

    def unsampled_root() -> None:
        with unsampled.span("r"):
            pass

    costs["unsampled_root"] = _op_ns(unsampled_root)
    dead_hold = unsampled.span("hold")
    dead_hold.__enter__()

    def dead_child() -> None:
        with unsampled.span("c"):
            pass

    costs["dead_span"] = _op_ns(dead_child)
    dead_hold.__exit__(None, None, None)

    obs = Observability()
    costs["counter_inc"] = _op_ns(lambda: obs.inc("x"))
    costs["histogram_observe"] = _op_ns(lambda: obs.observe("h", 0.0005))
    costs["gauge_set"] = _op_ns(lambda: obs.gauge("g", 1.0))

    window = TimeWindow()
    costs["window_record"] = _op_ns(lambda: window.record(200, 0.0005))
    costs["traceparent"] = _op_ns(
        lambda: format_traceparent(
            "0af7651916cd43dd8448eb211c80319c", "b7ad6b7169203331"
        )
    )
    costs["query_str"] = _op_ns(lambda: str(query))

    admission = AdmissionController(
        max_workers=1, max_queue=4, timeout=1.0, obs=NO_OBS
    )
    try:
        costs["admission_depth"] = _op_ns(admission.depth)
    finally:
        admission.close()
    return costs


def _request_op_inventory(obs, client, query) -> Dict[str, float]:
    """Count telemetry ops per warm request from the server's own books.

    Spans come from the live tracer's collected trees, counter and
    histogram traffic from the metrics snapshot — no hand-maintained
    inventory to drift out of sync with the instrumentation.
    """
    obs.reset()
    probes = 50
    for _ in range(probes):
        assert client.lineage(q=query).status == 200
    roots = obs.tracer.roots()
    spans = (
        sum(len(list(root.walk())) for root in roots) / len(roots)
        if roots else 0.0
    )
    snapshot = obs.metrics_snapshot()
    incs = sum(snapshot["counters"].values()) / probes
    observes = (
        sum(h["count"] for h in snapshot["histograms"].values()) / probes
    )
    return {"spans": spans, "incs": incs, "observes": observes}


def _estimate_request_us(costs: Dict[str, float],
                         inventory: Dict[str, float]):
    """(fully traced, sampled-out) telemetry microseconds per request.

    The fixed terms mirror the serving path: the inflight gauge is set
    on submit and release, one window fold and one response traceparent
    per request; a *sampled* request additionally annotates its two
    spans (``span.set`` on ``server.request`` and ``service.lineage``),
    reads the admission depth, and formats the query once.
    """
    children = max(inventory["spans"] - 1.0, 0.0)
    shared = (
        inventory["incs"] * costs["counter_inc"]
        + inventory["observes"] * costs["histogram_observe"]
        + 2 * costs["gauge_set"]
        + costs["window_record"]
        + costs["traceparent"]
    )
    enabled_ns = (
        costs["root_span"]
        + children * costs["child_span"]
        + 2 * costs["span_set"]
        + costs["admission_depth"]
        + costs["query_str"]
        + shared
    )
    unsampled_ns = (
        costs["unsampled_root"] + children * costs["dead_span"] + shared
    )
    return enabled_ns / 1000.0, unsampled_ns / 1000.0


def request_overhead(scale: str):
    """Request-level telemetry overhead: disabled / enabled / sampled.

    The three regimes run as concurrent servers probed in lockstep —
    every iteration sends one request to each — so ambient noise cannot
    bias one regime's *measured* p50.  The asserted ``overhead_pct``
    comes from the op-inventory estimator (see module docstring): the
    enabled server's own span trees and metric counters say what one
    warm request does, microbenches say what each op costs, and the sum
    is taken against the measured disabled p50.
    """
    samples = 200 if scale == "quick" else 600
    sample_rate = 0.1
    regimes = [
        ("request.disabled", NO_OBS, 1.0),
        ("request.enabled", Observability(), 1.0),
        ("request.sampled", Observability(), sample_rate),
    ]
    booted = []
    times = {name: [] for name, _, _ in regimes}
    costs = inventory = None
    gc_was_enabled = gc.isenabled()
    try:
        for name, obs, rate in regimes:
            workload, service, thread = _boot_traced_server(obs, rate)
            url = thread.start()
            client = ServerClient(url)
            query = format_query(workload.focused_query())
            for _ in range(5):  # warm sockets, caches, and the JIT-less VM
                assert client.lineage(q=query).status == 200
            booted.append((name, service, thread, client, query))
        gc.collect()
        gc.disable()  # collector pauses land on single regimes otherwise
        for _ in range(samples):
            for name, _, _, client, query in booted:
                started = time.perf_counter()
                response = client.lineage(q=query)
                elapsed = time.perf_counter() - started
                assert response.status == 200
                times[name].append(elapsed)
        # Op inventory, read off the fully-traced server while it still
        # serves; op costs, microbenched on the same interpreter.
        _, enabled_obs, _ = regimes[1]
        _, _, _, enabled_client, enabled_query = booted[1]
        inventory = _request_op_inventory(
            enabled_obs, enabled_client, enabled_query
        )
        costs = _telemetry_op_costs(workload.focused_query())
    finally:
        if gc_was_enabled and not gc.isenabled():
            gc.enable()
        for _, service, thread, client, _ in booted:
            client.close()
            thread.stop()
            service.close()

    def p50_ms(name: str) -> float:
        ordered = sorted(times[name])
        return ordered[len(ordered) // 2] * 1000

    base_ms = p50_ms("request.disabled")
    enabled_us, unsampled_us = _estimate_request_us(costs, inventory)
    sampled_us = (
        sample_rate * enabled_us + (1.0 - sample_rate) * unsampled_us
    )
    estimates = {
        "request.disabled": 0.0,
        "request.enabled": enabled_us,
        "request.sampled": sampled_us,
    }
    rows = []
    for name, _, rate in regimes:
        p50 = p50_ms(name)
        est_us = estimates[name]
        note = (
            f"{samples} reqs, NO_OBS" if name == "request.disabled"
            else (
                f"sampling {rate:g}: {est_us:.1f} us of telemetry ops; "
                f"measured p50 {(p50 - base_ms) / base_ms * 100:+.1f}%"
            )
        )
        rows.append({
            "regime": name,
            "ms": p50,
            "overhead_pct": est_us / (base_ms * 1000.0) * 100,
            "note": note,
        })
    rows.append({
        "regime": "request.ops",
        "ms": enabled_us / 1000.0,
        "overhead_pct": 0.0,
        "note": (
            f"{inventory['spans']:.0f} spans, {inventory['incs']:.0f} incs,"
            f" {inventory['observes']:.0f} observes per traced request"
        ),
    })
    return rows


# -- kernels ---------------------------------------------------------------

def bench_obs_kernel_disabled(benchmark):
    """Timed kernel: 50-run sweep with the default disabled handle."""
    workload, store, run_ids = _populated(50)
    engine = IndexProjEngine(store, workload.flow.flattened())
    query = workload.unfocused_query()
    engine.lineage_multirun(run_ids[:5], query)
    result = benchmark(lambda: engine.lineage_multirun(run_ids, query))
    assert len(result.per_run) == len(run_ids)
    store.close()


def bench_obs_kernel_enabled(benchmark):
    """Timed kernel: the same sweep with full span + metric collection."""
    workload, store, run_ids = _populated(50)
    obs = Observability()
    engine = IndexProjEngine(store, workload.flow.flattened(), obs=obs)
    store.obs = obs  # the store was built before the handle existed
    query = workload.unfocused_query()
    engine.lineage_multirun(run_ids[:5], query)
    result = benchmark(lambda: engine.lineage_multirun(run_ids, query))
    assert len(result.per_run) == len(run_ids)
    assert obs.counter_value("store.reads") > 0
    store.close()


# -- report ----------------------------------------------------------------

def bench_obs_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: obs_overhead(scale) + request_overhead(scale),
        rounds=1, iterations=1,
    )
    emit_report(
        "obs_overhead",
        rows,
        f"Observability overhead — disabled path near-free (scale={scale})",
        columns=["regime", "ms", "overhead_pct", "note"],
    )
    by_regime = {row["regime"]: row for row in rows}
    # One disabled timer must cost well under a microsecond...
    timer_ns = float(by_regime["micro.disabled_hooks"]["ms"]) * 1e6
    assert timer_ns < 2_000
    # ...and the acceptance bounds: the estimated disabled-path overhead
    # and the measured request-level budgets.
    disabled_pct = by_regime["sweep.disabled_estimated"]["overhead_pct"]
    enabled_pct = by_regime["request.enabled"]["overhead_pct"]
    sampled_pct = by_regime["request.sampled"]["overhead_pct"]
    assert disabled_pct <= BUDGET_DISABLED_PCT
    assert enabled_pct <= BUDGET_ENABLED_PCT
    assert sampled_pct <= BUDGET_SAMPLED_PCT
    write_bench_json(
        str(REPO_ROOT / "BENCH_obs.json"),
        {
            "bench": "obs_overhead",
            "scale": scale,
            "rows": rows,
            "headline": {
                "request_p50_disabled_ms": by_regime["request.disabled"]["ms"],
                "request_p50_enabled_ms": by_regime["request.enabled"]["ms"],
                "request_p50_sampled_ms": by_regime["request.sampled"]["ms"],
                "enabled_overhead_pct": enabled_pct,
                "sampled_overhead_pct": sampled_pct,
                "disabled_overhead_pct": disabled_pct,
            },
            "acceptance": {
                "enabled_overhead_pct": enabled_pct,
                "enabled_budget_pct": BUDGET_ENABLED_PCT,
                "sampled_overhead_pct": sampled_pct,
                "sampled_budget_pct": BUDGET_SAMPLED_PCT,
                "disabled_overhead_pct": disabled_pct,
                "disabled_budget_pct": BUDGET_DISABLED_PCT,
            },
        },
    )
