"""Observability overhead — the disabled path must stay near-free.

Every hot path in the engine, store and query strategies now carries
``repro.obs`` instrumentation guarded by ``obs.enabled``.  The acceptance
criterion for the subsystem is that the *disabled* default adds at most
~2% to the latency-bound query regime.  Because the pre-instrumentation
code no longer exists to diff against, the bound is established from two
measurements:

* a micro benchmark of the disabled hooks themselves (shared no-op span,
  guarded counter update) — nanoseconds per call; and
* the instrumented sweep's per-query latency together with the number of
  hook crossings per query (read off the *enabled* run's own counters).

``estimated overhead = hooks/query x ns/hook / ns/query`` — asserted
< 2%.  The enabled-vs-disabled macro comparison is reported alongside
(not tightly asserted: span allocation cost is real and accepted when
profiling is requested).
"""

from __future__ import annotations

import time

from repro.obs import NO_OBS, Observability
from repro.provenance.store import TraceStore
from repro.query.indexproj import IndexProjEngine
from repro.testbed.runs import populate_store
from repro.testbed.workloads import genes2kegg_workload


def _best_seconds(fn, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - started)
    return best


def _populated(runs: int):
    workload = genes2kegg_workload()
    store = TraceStore()
    run_ids = populate_store(
        store, workload.flow, workload.inputs, runs=runs,
        runner=workload.runner(), run_prefix=workload.name,
    )
    store.create_indexes()
    return workload, store, run_ids


def _disabled_guard_ns(iterations: int = 500_000) -> float:
    """Cost of the ``if obs.enabled: obs.inc(...)`` hot-path guard, in ns.

    This is what a disabled store read actually pays (no span is created
    on the metrics-only paths); spans/timers are costed separately.
    """
    obs = NO_OBS

    def body() -> None:
        for _ in range(iterations):
            if obs.enabled:
                obs.inc("x")

    return _best_seconds(body, repeats=3) / iterations * 1e9


def _disabled_timer_ns(iterations: int = 200_000) -> float:
    """Cost of one disabled ``timer()`` stopwatch (per-run s2 timing)."""
    obs = NO_OBS

    def body() -> None:
        for _ in range(iterations):
            with obs.timer("t"):
                pass

    return _best_seconds(body, repeats=3) / iterations * 1e9


def obs_overhead(scale: str):
    runs = 50 if scale == "quick" else 200
    workload, store, run_ids = _populated(runs)
    flat = workload.flow.flattened()
    query = workload.unfocused_query()

    disabled_engine = IndexProjEngine(store, flat)
    disabled_engine.lineage_multirun(run_ids[:5], query)  # warm caches
    disabled = _best_seconds(
        lambda: disabled_engine.lineage_multirun(run_ids, query)
    )

    obs = Observability()
    enabled_engine = IndexProjEngine(store, flat, obs=obs)
    store.obs = obs  # the store was built before the handle existed
    enabled_engine.lineage_multirun(run_ids[:5], query)
    obs.reset()
    enabled = _best_seconds(
        lambda: enabled_engine.lineage_multirun(run_ids, query)
    )
    store.obs = NO_OBS
    # Hook crossings per sweep, from the enabled run's own accounting:
    # every store read passes ~3 enabled-guards, every run in scope one
    # disabled timer (s2) plus a couple of guards around it.
    sweeps = 5  # _best_seconds repeats
    reads = obs.counter_value("store.reads") / sweeps
    guard_ns = _disabled_guard_ns()
    timer_ns = _disabled_timer_ns()
    estimated_ns = (
        3 * reads * guard_ns + len(run_ids) * (timer_ns + 2 * guard_ns)
    )
    estimated_pct = estimated_ns / (disabled * 1e9) * 100

    store.close()
    return [
        {
            "regime": "micro.disabled_hooks", "ms": timer_ns / 1e6,
            "overhead_pct": 0.0,
            "note": f"{guard_ns:.0f} ns/guard, {timer_ns:.0f} ns/timer",
        },
        {
            "regime": "sweep.disabled", "ms": disabled * 1000,
            "overhead_pct": 0.0,
            "note": f"{len(run_ids)} runs, default NO_OBS",
        },
        {
            "regime": "sweep.enabled", "ms": enabled * 1000,
            "overhead_pct": (enabled - disabled) / disabled * 100,
            "note": f"{reads:.0f} reads/sweep traced",
        },
        {
            "regime": "sweep.disabled_estimated", "ms": disabled * 1000,
            "overhead_pct": estimated_pct,
            "note": f"{estimated_ns / 1000:.1f} us of hooks/sweep",
        },
    ]


# -- kernels ---------------------------------------------------------------

def bench_obs_kernel_disabled(benchmark):
    """Timed kernel: 50-run sweep with the default disabled handle."""
    workload, store, run_ids = _populated(50)
    engine = IndexProjEngine(store, workload.flow.flattened())
    query = workload.unfocused_query()
    engine.lineage_multirun(run_ids[:5], query)
    result = benchmark(lambda: engine.lineage_multirun(run_ids, query))
    assert len(result.per_run) == len(run_ids)
    store.close()


def bench_obs_kernel_enabled(benchmark):
    """Timed kernel: the same sweep with full span + metric collection."""
    workload, store, run_ids = _populated(50)
    obs = Observability()
    engine = IndexProjEngine(store, workload.flow.flattened(), obs=obs)
    store.obs = obs  # the store was built before the handle existed
    query = workload.unfocused_query()
    engine.lineage_multirun(run_ids[:5], query)
    result = benchmark(lambda: engine.lineage_multirun(run_ids, query))
    assert len(result.per_run) == len(run_ids)
    assert obs.counter_value("store.reads") > 0
    store.close()


# -- report ----------------------------------------------------------------

def bench_obs_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: obs_overhead(scale), rounds=1, iterations=1
    )
    emit_report(
        "obs_overhead",
        rows,
        f"Observability overhead — disabled path near-free (scale={scale})",
        columns=["regime", "ms", "overhead_pct", "note"],
    )
    by_regime = {row["regime"]: row for row in rows}
    # One disabled timer must cost well under a microsecond...
    timer_ns = float(by_regime["micro.disabled_hooks"]["ms"]) * 1e6
    assert timer_ns < 2_000
    # ...and the acceptance bound: estimated disabled overhead <= 2%.
    assert by_regime["sweep.disabled_estimated"]["overhead_pct"] <= 2.0
