"""Warm lineage cache — repeated multi-run queries with zero store reads.

Beyond the paper's figures: the ``repro.cache`` stack (docs/CACHING.md)
extends Section 3.4's plan sharing to trace lookups and complete
answers.  The kernel rows time one Fig. 4-style multi-run query cold
(cache-disabled service) and warm (cache-enabled service after one
priming execution); the report benchmark runs the full experiment
driver and asserts the acceptance thresholds — warm repeats perform
zero trace-store reads, answer identically to cold, and are >= 5x
faster — then writes the machine-readable ``BENCH_cache.json`` record
at the repository root.
"""

from pathlib import Path

from repro.bench.cachewarm import (
    SPEEDUP_THRESHOLD,
    cache_warm,
    min_speedup,
)
from repro.bench.reporting import write_bench_json
from repro.service import ProvenanceService
from repro.testbed.workloads import genes2kegg_workload

REPO_ROOT = Path(__file__).resolve().parent.parent


def _gk_service(tmp_path, cache, runs=50):
    workload = genes2kegg_workload()
    service = ProvenanceService(str(tmp_path / "traces.db"), cache=cache)
    service.register_workflow(workload.flow, workload.registry)
    for _ in range(runs):
        service.run(workload.flow.name, workload.inputs)
    service.store.create_indexes()
    return workload, service


def bench_cache_kernel_cold(benchmark, tmp_path):
    """Timed kernel: repeated 50-run query on a cache-disabled service."""
    workload, service = _gk_service(tmp_path, cache=False)
    query = workload.focused_query()
    service.lineage(query)
    result = benchmark(lambda: service.lineage(query))
    assert not result.from_cache
    service.close()


def bench_cache_kernel_warm(benchmark, tmp_path):
    """Timed kernel: the same query served by the warm result cache."""
    workload, service = _gk_service(tmp_path, cache=True)
    query = workload.focused_query()
    service.lineage(query)  # priming execution fills both cache levels
    result = benchmark(lambda: service.lineage(query))
    assert result.from_cache
    assert all(r.stats.queries == 0 for r in result.per_run.values())
    service.close()


def bench_cache_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: cache_warm(scale), rounds=1, iterations=1
    )
    emit_report(
        "cache_warm",
        rows,
        f"Warm lineage cache — repeated multi-run queries (scale={scale})",
        columns=[
            "workload", "query", "runs", "cold_ms", "warm_ms", "speedup",
            "warm_store_reads", "identical",
        ],
    )
    assert all(row["identical"] for row in rows)
    assert all(row["warm_store_reads"] == 0 for row in rows)
    assert all(row["warm_stats_queries"] == 0 for row in rows)
    assert min_speedup(rows) >= SPEEDUP_THRESHOLD
    write_bench_json(
        str(REPO_ROOT / "BENCH_cache.json"),
        {
            "bench": "cache_warm",
            "scale": scale,
            "rows": rows,
            "acceptance": {
                "speedup_threshold": SPEEDUP_THRESHOLD,
                "min_speedup": min_speedup(rows),
                "warm_store_reads": 0,
            },
        },
    )
