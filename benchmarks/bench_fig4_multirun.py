"""Fig. 4 — focused/unfocused queries ranging over multiple runs (GK, PD).

Paper shape: INDEXPROJ shares the graph-traversal step (s1) across all
runs in scope, so multi-run response grows only with the per-run lookup
step (s2); the unfocused long-path workflow (unfocused-PD) has an s2 an
order of magnitude larger than the others and scales proportionally
worse.  NI re-traverses every run and grows fastest.
"""

from repro.bench.figures import fig4_multirun
from repro.provenance.store import TraceStore
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.testbed.runs import populate_store
from repro.testbed.workloads import protein_discovery_workload


def _pd_store(runs=10):
    workload = protein_discovery_workload()
    store = TraceStore()
    run_ids = populate_store(
        store, workload.flow, workload.inputs, runs=runs,
        runner=workload.runner(),
    )
    return workload, store, run_ids


def bench_fig4_kernel_indexproj_multirun(benchmark):
    """Timed kernel: INDEXPROJ unfocused-PD across 10 runs."""
    workload, store, run_ids = _pd_store()
    engine = IndexProjEngine(store, workload.flow.flattened())
    query = workload.unfocused_query()
    result = benchmark(lambda: engine.lineage_multirun(run_ids, query))
    assert result.per_run
    store.close()


def bench_fig4_kernel_naive_multirun(benchmark):
    """Timed kernel: NI unfocused-PD across 10 runs (one traversal each)."""
    workload, store, run_ids = _pd_store()
    engine = NaiveEngine(store)
    query = workload.unfocused_query()
    result = benchmark(lambda: engine.lineage_multirun(run_ids, query))
    assert result.per_run
    store.close()


def bench_fig4_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: fig4_multirun(scale), rounds=1, iterations=1
    )
    emit_report(
        "fig4_multirun",
        rows,
        f"Fig. 4 — focused/unfocused over multiple runs (scale={scale})",
        columns=[
            "workload", "mode", "runs", "indexproj_ms", "s1_ms", "s2_ms",
            "naive_ms", "bindings",
        ],
    )
    max_runs = max(row["runs"] for row in rows)
    at_max = {
        (r["workload"], r["mode"]): r for r in rows if r["runs"] == max_runs
    }
    # Unfocused-PD is the slowest INDEXPROJ configuration (10x-ish s2).
    pd_unfocused = at_max[("protein_discovery", "unfocused")]
    assert pd_unfocused["indexproj_ms"] == max(
        r["indexproj_ms"] for r in at_max.values()
    )
    # NI is never faster than INDEXPROJ on the same configuration.
    for row in at_max.values():
        assert row["naive_ms"] >= row["indexproj_ms"]
