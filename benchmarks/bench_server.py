"""HTTP serving performance of the provenance query server.

Kernel rows time one warm request over a real socket (lineage via the
paper's ``lin(...)`` notation, and a ``lineage:batch`` POST); the report
runs the two-phase multi-tenant load experiment
(:mod:`repro.bench.serverload`) and asserts the serving discipline:
below the admission limit, zero failures of any kind; above it, clean
429s and still zero 5xx.  The machine-readable record lands in
``BENCH_server.json`` with the sustained requests/s and the p50/p99
latency of the below-limit phase.
"""

from pathlib import Path

from repro.bench.reporting import write_bench_json
from repro.bench.serverload import phase_row, server_load
from repro.query.parser import format_query
from repro.server import ServerClient, ServerConfig, ServerThread, TenantRegistry
from repro.service import ProvenanceService
from repro.testbed.workloads import genes2kegg_workload

REPO_ROOT = Path(__file__).resolve().parent.parent


def _served_workload(tmp_path, runs=3):
    workload = genes2kegg_workload()
    service = ProvenanceService(str(tmp_path / "traces.db"), cache=False)
    service.register_workflow(workload.flow, workload.registry)
    for _ in range(runs):
        service.run(workload.name, workload.inputs)
    registry = TenantRegistry()
    registry.register_service("default", service)
    thread = ServerThread(config=ServerConfig(), registry=registry)
    return workload, service, thread


def bench_server_kernel_lineage(benchmark, tmp_path):
    """Timed kernel: one warm focused lineage request over the socket."""
    workload, service, thread = _served_workload(tmp_path)
    query = format_query(workload.focused_query())
    try:
        url = thread.start()
        with ServerClient(url) as client:
            assert client.lineage(q=query).status == 200  # warm
            response = benchmark(lambda: client.lineage(q=query))
            assert response.status == 200
    finally:
        thread.stop()
        service.close()


def bench_server_kernel_batch(benchmark, tmp_path):
    """Timed kernel: an 8-query batch POST mapped onto lineage_many."""
    workload, service, thread = _served_workload(tmp_path)
    body = {"queries": [format_query(workload.focused_query())] * 8}
    try:
        url = thread.start()
        with ServerClient(url) as client:
            assert client.lineage_batch(body).status == 200  # warm
            response = benchmark(lambda: client.lineage_batch(body))
            assert response.status == 200
            assert response.body["count"] == 8
    finally:
        thread.stop()
        service.close()


def bench_server_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: server_load(scale), rounds=1, iterations=1
    )
    emit_report(
        "server_load",
        rows,
        f"Provenance query server — multi-tenant HTTP load (scale={scale})",
        columns=["phase", "clients", "tenants", "requests", "ok",
                 "rejected_429", "errors_5xx", "rps", "p50_ms", "p99_ms"],
    )
    below = phase_row(rows, "below-limit")
    overload = phase_row(rows, "overload")
    # Below the admission limit: zero failures of any kind.
    assert below["errors_5xx"] == 0
    assert below["rejected_429"] == 0
    assert below["ok"] == below["requests"]
    # Above it: clean 429s, no 5xx, and admitted work still completes.
    assert overload["errors_5xx"] == 0
    assert overload["rejected_429"] > 0
    assert overload["ok"] > 0
    assert overload["ok"] + overload["rejected_429"] == overload["requests"]
    write_bench_json(
        str(REPO_ROOT / "BENCH_server.json"),
        {
            "bench": "server_load",
            "scale": scale,
            "rows": rows,
            "headline": {
                "requests_per_second": below["rps"],
                "p50_ms": below["p50_ms"],
                "p99_ms": below["p99_ms"],
            },
            "acceptance": {
                "below_limit_5xx": below["errors_5xx"],
                "below_limit_429": below["rejected_429"],
                "overload_5xx": overload["errors_5xx"],
                "overload_429": overload["rejected_429"],
            },
        },
    )
