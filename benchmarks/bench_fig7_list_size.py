"""Fig. 7 — NI lineage query response time vs input list size d.

Paper shape: response times grow only modestly with d for each chain
length l — d inflates the trace (and its indexes) but not the number of
hops the query traverses.  The machine-independent form: the SQL
round-trip count per query is identical for every d at fixed l.
"""

from repro.bench.figures import fig7_list_size, scale_config
from repro.bench.harness import prepare_store
from repro.query.naive import NaiveEngine
from repro.testbed.generator import focused_query


def bench_fig7_kernel_large_d(benchmark, scale):
    """Timed kernel: NI focused query at the largest (l, d) of the sweep."""
    config = scale_config(scale)
    prepared = prepare_store(
        config["fig7_l_values"][-1], config["fig7_d_values"][-1], runs=1
    )
    engine = NaiveEngine(prepared.store)
    run_id = prepared.run_ids[0]
    result = benchmark(lambda: engine.lineage(run_id, focused_query()))
    assert result.bindings


def bench_fig7_report(benchmark, scale, emit_report):
    rows = benchmark.pedantic(
        lambda: fig7_list_size(scale), rounds=1, iterations=1
    )
    emit_report(
        "fig7_list_size",
        rows,
        f"Fig. 7 — NI response vs input list size (scale={scale})",
    )
    by_l = {}
    for row in rows:
        by_l.setdefault(row["l"], []).append(row)
    for l, series in by_l.items():
        assert len({row["sql_queries"] for row in series}) == 1, l
