"""Shared configuration for the benchmark suite.

Every ``bench_*`` module reproduces one table or figure of the paper's
Section 4.  Each module contains:

* *kernel* benchmarks — pytest-benchmark timings of the representative
  query under each strategy (comparable across machines via the
  pytest-benchmark statistics); and
* a *report* benchmark — one full run of the experiment driver, whose
  rendered series (the paper's rows) is printed and written to
  ``benchmarks/results/<experiment>.txt``.

Scale is controlled by ``REPRO_BENCH_SCALE`` (``paper`` by default; set
``quick`` for a fast smoke pass).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench.reporting import format_table

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "paper")


@pytest.fixture(scope="session")
def emit_report():
    """Write one experiment's rendered table to the results directory."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _emit(name: str, rows, title: str, columns=None) -> str:
        text = format_table(rows, columns=columns, title=title)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        print(f"\n{text}\n[written to {path}]")
        return text

    return _emit
