"""Finding exporters: text, JSON, and SARIF 2.1.0.

SARIF (Static Analysis Results Interchange Format, OASIS) is the
interchange format GitHub code scanning and most editors ingest; the
document produced here follows the 2.1.0 schema's required shape — one
``run`` with a ``tool.driver`` carrying the full rule catalogue and one
``result`` per finding, located by the workflow-graph logical location
(there are no files/regions to point at in a workflow specification).
``repro-prov lint --format sarif`` writes it; CI uploads it as an
artifact.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.lint import Finding, LintRule, lint_rules


def _package_version() -> str:
    # Imported lazily: repro/__init__ (which defines __version__) imports
    # the service layer, which imports this package.
    from repro import __version__

    return __version__

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: lint severity -> SARIF result level
_LEVELS = {"error": "error", "warning": "warning", "note": "note"}


def render_text(findings: Sequence[Finding], workflow: str = "") -> str:
    """One human-readable line per finding (empty string when clean)."""
    if not findings:
        return f"workflow {workflow!r}: no findings" if workflow else ""
    return "\n".join(finding.render() for finding in findings)


def render_json(findings: Sequence[Finding], workflow: str = "") -> str:
    """Machine-readable JSON: schema ``repro.analysis/1``."""
    document = {
        "schema": "repro.analysis/1",
        "workflow": workflow,
        "findings": [
            {
                "code": f.code,
                "rule": f.rule,
                "severity": f.severity,
                "message": f.message,
                "location": f.location,
            }
            for f in findings
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _rule_descriptor(entry: LintRule) -> Dict:
    return {
        "id": entry.code,
        "name": _pascal(entry.slug),
        "shortDescription": {"text": entry.description},
        "defaultConfiguration": {"level": _LEVELS[entry.default_severity]},
        "properties": {"slug": entry.slug},
    }


def _pascal(slug: str) -> str:
    return "".join(part.capitalize() for part in slug.split("-"))


def render_sarif(
    findings: Sequence[Finding],
    workflow: str = "",
    rules: Optional[Sequence[LintRule]] = None,
    tool: str = "repro-prov-lint",
) -> str:
    """A complete SARIF 2.1.0 document as a JSON string.

    ``rules`` swaps in an alternate rule catalogue (the plan lint passes
    its P-series rules) and ``tool`` names the driver accordingly.
    """
    catalogue = list(rules) if rules is not None else list(lint_rules())
    rule_index = {entry.code: i for i, entry in enumerate(catalogue)}
    results: List[Dict] = []
    for finding in findings:
        result: Dict = {
            "ruleId": finding.code,
            "level": _LEVELS[finding.severity],
            "message": {"text": finding.message},
        }
        if finding.code in rule_index:
            result["ruleIndex"] = rule_index[finding.code]
        if finding.location:
            result["locations"] = [
                {
                    "logicalLocations": [
                        {
                            "fullyQualifiedName": (
                                f"{workflow}.{finding.location}"
                                if workflow
                                else finding.location
                            ),
                            "kind": "member",
                        }
                    ]
                }
            ]
        results.append(result)
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": tool,
                        "informationUri": (
                            "https://github.com/paper-repro/"
                            "collection-provenance"
                        ),
                        "version": _package_version(),
                        "rules": [_rule_descriptor(e) for e in catalogue],
                    }
                },
                "results": results,
                "columnKind": "unicodeCodePoints",
                "properties": {"workflow": workflow},
            }
        ],
    }
    return json.dumps(document, indent=2)
