"""Static analysis of workflows and lineage queries (``repro.analysis``).

Everything in this package reasons over the *workflow specification* only
— the :class:`~repro.workflow.model.Dataflow` graph and the
:class:`~repro.workflow.depths.DepthAnalysis` produced by Alg. 1 — and
never opens the trace store.  Three cooperating passes:

* :mod:`repro.analysis.precheck` — validates a parsed lineage query
  against the specification (name resolution with did-you-mean
  suggestions, dataflow-path existence, index bound checks against the
  Prop. 1 fragment layout) and classifies it as *invalid*, *provably
  empty*, or *viable* in O(|workflow graph|) with **zero** trace reads;
* :mod:`repro.analysis.lint` — a rule-registry lint engine over workflow
  definitions (stable ``E0xx``/``W0xx`` codes, severity configuration,
  suppressions) with text/JSON/SARIF exporters
  (:mod:`repro.analysis.sarif`);
* :mod:`repro.analysis.cost` — the static cost model comparing NI and
  INDEXPROJ trace-lookup counts, behind ``strategy="auto"`` and
  ``explain_plan()``;
* :mod:`repro.analysis.planlint` — the static SQL access-path analyzer
  over the store's registered primitive catalog (stable ``P0xx`` codes,
  committed ``plans.lock.json`` baseline, :class:`PlanGuard` test
  fixture), surfaced as ``repro-prov plan-lint``.

See docs/ANALYSIS.md for the rule catalogue and the model's semantics.
"""

from repro.analysis.cost import PlanExplanation, choose_strategy, explain_plan
from repro.analysis.lint import Finding, LintConfig, LintRule, lint_rules, run_lint
from repro.analysis.planlint import (
    PLAN_RULES,
    PlanGuard,
    PlanReport,
    StatementAudit,
    analyze,
    audit_findings,
    diff_baseline,
    load_baseline,
    plan_findings,
    plan_rules,
    write_baseline,
)
from repro.analysis.precheck import (
    PrecheckIssue,
    PrecheckReport,
    QueryValidationError,
    precheck_query,
)
from repro.analysis.sarif import render_json, render_sarif, render_text

__all__ = [
    "Finding",
    "LintConfig",
    "LintRule",
    "PLAN_RULES",
    "PlanExplanation",
    "PlanGuard",
    "PlanReport",
    "PrecheckIssue",
    "PrecheckReport",
    "QueryValidationError",
    "StatementAudit",
    "analyze",
    "audit_findings",
    "choose_strategy",
    "diff_baseline",
    "explain_plan",
    "lint_rules",
    "load_baseline",
    "plan_findings",
    "plan_rules",
    "precheck_query",
    "render_json",
    "render_sarif",
    "render_text",
    "run_lint",
]
