"""Lineage-query pre-checking on the workflow specification graph.

The INDEXPROJ premise (Section 3) is that the static graph plus the depth
analysis already knows a great deal about every possible query.  This
module exploits that *before* execution: :func:`precheck_query` resolves
the query's names, verifies that a dataflow path connects the focus set to
the query binding, and bound-checks the index against the propagated
depths (Alg. 1) — classifying the query as

``invalid``
    it references names that do not exist, or an index that no value
    reaching the port can carry (deeper than the port's propagated
    depth).  Executing it would silently return nothing; the checker
    rejects it with did-you-mean suggestions instead.
``empty``
    well-formed, but *provably* empty: no focus processor lies on any
    dataflow path upstream of the query binding (or the focus set is
    empty — both strategies only report bindings of focus processors).
    The answer is known without a single trace read.
``viable``
    everything else; execution proceeds normally.

Soundness: the upstream closure is computed on the specification graph,
which over-approximates every run's trace paths, so an *empty* verdict
can never disagree with an actual execution.  Under the paper's two
assumptions (Section 3.1) the propagated depth of a port is exactly the
depth of every value bound to it, so an over-deep index can never match
a value — the engines are lenient and silently answer for the deepest
legal prefix, while the checker rejects the query outright (a stricter,
compiler-style contract).  The differential property test
(tests/properties/test_prop_precheck.py) asserts both claims against
executions of generated workflows.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import FrozenSet, List, Sequence, Set, Tuple

from repro.query.base import LineageQuery
from repro.workflow.depths import DepthAnalysis
from repro.workflow.model import Dataflow, PortRef, WorkflowError


class QueryValidationError(WorkflowError):
    """An *invalid* pre-checker verdict, raised on the fast-reject path.

    Carries the full :class:`PrecheckReport` so callers (CLI, service
    users) can surface the individual issues and their suggestions.
    """

    def __init__(self, report: "PrecheckReport") -> None:
        self.report = report
        details = "; ".join(issue.message for issue in report.issues)
        super().__init__(f"invalid lineage query {report.query}: {details}")


@dataclass(frozen=True)
class PrecheckIssue:
    """One finding of the pre-checker.

    ``kind`` is a stable machine-readable tag (``unknown-node``,
    ``unknown-port``, ``unknown-focus``, ``index-too-deep``);
    ``suggestions`` holds did-you-mean candidates for name issues.
    """

    kind: str
    message: str
    suggestions: Tuple[str, ...] = ()


@dataclass(frozen=True)
class PrecheckReport:
    """The pre-checker's verdict for one query: the static triage result."""

    query: LineageQuery
    verdict: str  # "invalid" | "empty" | "viable"
    issues: Tuple[PrecheckIssue, ...] = ()
    #: human-readable proof sketches for an ``empty`` verdict
    reasons: Tuple[str, ...] = ()
    #: focus processors that actually lie upstream of the binding
    reachable_focus: FrozenSet[str] = field(default_factory=frozenset)

    @property
    def is_invalid(self) -> bool:
        return self.verdict == "invalid"

    @property
    def is_empty(self) -> bool:
        return self.verdict == "empty"

    @property
    def is_viable(self) -> bool:
        return self.verdict == "viable"

    def summary(self) -> str:
        lines = [f"{self.query}: {self.verdict}"]
        for issue in self.issues:
            lines.append(f"  [{issue.kind}] {issue.message}")
            if issue.suggestions:
                lines.append(
                    "    did you mean: " + ", ".join(issue.suggestions)
                )
        for reason in self.reasons:
            lines.append(f"  because: {reason}")
        return "\n".join(lines)


def suggest_names(
    name: str, candidates: Sequence[str], limit: int = 3
) -> Tuple[str, ...]:
    """Did-you-mean candidates for a misspelled name (best first)."""
    return tuple(
        difflib.get_close_matches(name, list(candidates), n=limit, cutoff=0.5)
    )


def upstream_processors(flow: Dataflow, start: PortRef) -> FrozenSet[str]:
    """Processors whose *outputs* lie on some dataflow path into ``start``.

    Exactly the processors whose input bindings a lineage traversal from
    ``start`` can ever surface: both NI (Def. 1) and INDEXPROJ (Alg. 2)
    collect input bindings only when they pass *through* a processor via
    one of its output ports.  Mirrors the traversal order of
    ``build_plan`` with the index bookkeeping stripped out.
    """
    producing: Set[str] = set()
    visited: Set[PortRef] = set()
    stack: List[PortRef] = [start]
    while stack:
        ref = stack.pop()
        if ref in visited:
            continue
        visited.add(ref)
        if ref.node == flow.name:
            arc = flow.incoming_arc(ref)
            if arc is not None:
                stack.append(arc.source)
            continue
        processor = flow.processor(ref.node)
        if processor.has_output(ref.port):
            producing.add(ref.node)
            stack.extend(
                PortRef(processor.name, port.name)
                for port in processor.inputs
            )
        else:
            arc = flow.incoming_arc(ref)
            if arc is not None:
                stack.append(arc.source)
    return frozenset(producing)


def _resolve_binding(
    flow: Dataflow, query: LineageQuery
) -> List[PrecheckIssue]:
    """Name-resolution issues for the binding ``node:port`` (maybe empty)."""
    node_names = [flow.name, *flow.processor_names]
    if query.node != flow.name and not flow.has_processor(query.node):
        return [
            PrecheckIssue(
                "unknown-node",
                f"workflow {flow.name!r} has no node {query.node!r}",
                suggest_names(query.node, node_names),
            )
        ]
    if query.node == flow.name:
        ports = [p.name for p in flow.inputs + flow.outputs]
    else:
        processor = flow.processor(query.node)
        ports = [p.name for p in processor.inputs + processor.outputs]
    if query.port not in ports:
        return [
            PrecheckIssue(
                "unknown-port",
                f"node {query.node!r} has no port {query.port!r}",
                suggest_names(query.port, ports),
            )
        ]
    return []


def precheck_query(
    analysis: DepthAnalysis, query: LineageQuery
) -> PrecheckReport:
    """Triage one lineage query using only the static analysis.

    Pure function of the specification graph and the query; cost is
    O(|ports| + |arcs|).  Never touches a :class:`TraceStore`.
    """
    flow = analysis.flow
    issues = _resolve_binding(flow, query)
    known = set(flow.processor_names)
    for name in sorted(query.focus - known):
        issues.append(
            PrecheckIssue(
                "unknown-focus",
                f"focus processor {name!r} is not in workflow {flow.name!r}",
                suggest_names(name, sorted(known)),
            )
        )
    if issues:
        return PrecheckReport(query, "invalid", tuple(issues))

    binding = PortRef(query.node, query.port)
    depth = analysis.depth_of(binding)
    if len(query.index) > depth:
        # Under Alg. 1's assumptions every value reaching the port has
        # exactly `depth` list levels, so a deeper accessor is impossible
        # — not merely unmatched — and the query is rejected, with the
        # deepest legal prefix as the suggestion.
        prefix = query.index.head(depth).encode()
        return PrecheckReport(
            query,
            "invalid",
            (
                PrecheckIssue(
                    "index-too-deep",
                    f"index [{query.index.encode()}] has {len(query.index)} "
                    f"position(s) but values at {binding} are "
                    f"{depth}-deep lists",
                    (f"[{prefix}]",) if depth else ("[]",),
                ),
            ),
        )

    if not query.focus:
        return PrecheckReport(
            query,
            "empty",
            reasons=(
                "the focus set is empty: lineage answers contain only "
                "input bindings of focus processors",
            ),
        )
    producing = upstream_processors(flow, binding)
    reachable = query.focus & producing
    if not reachable:
        return PrecheckReport(
            query,
            "empty",
            reasons=(
                "no dataflow path connects any focus processor "
                f"({', '.join(sorted(query.focus))}) to the query binding "
                f"{binding}",
            ),
            reachable_focus=frozenset(),
        )
    return PrecheckReport(query, "viable", reachable_focus=reachable)
