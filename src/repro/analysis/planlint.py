"""Static SQL access-path analyzer: plan lint over the store catalog.

The paper's query-performance results (Fig. 9) rest on one property:
every lineage lookup resolves through an index, never a full table scan.
This module turns that property into a machine-checkable contract that
needs **no data**.  Every :class:`~repro.provenance.store.TraceStore`
read primitive is registered in ``SQL_PRIMITIVES`` (via the
``@sql_primitive`` decorator) together with representative bind shapes;
the analyzer replays each shape against a throwaway in-memory store,
captures the exact SQL the primitive issues, runs ``EXPLAIN QUERY PLAN``
on it, parses the plan tree and classifies every table access:

====================  ==================================================
``covering-seek``     SEARCH ... USING COVERING INDEX (ideal)
``index-seek``        SEARCH ... USING INDEX (seek + row fetch)
``pk-seek``           SEARCH ... USING INTEGER PRIMARY KEY
``index-scan``        SCAN ... USING [COVERING] INDEX (full index walk)
``full-scan``         SCAN <table> (the regime Fig. 6 exists to avoid)
``auto-index``        SQLite built a transient index mid-query
``ephemeral``         VALUES lists, materialized subqueries, constants
``system``            sqlite_master bookkeeping lookups
====================  ==================================================

plus statement-level flags for ``USE TEMP B-TREE FOR ORDER BY`` /
``GROUP BY`` / ``DISTINCT``.  Findings carry stable P-series codes (see
``PLAN_RULES``) and flow through the same severity/suppression
machinery and SARIF exporter as the workflow lint.  The expected plans
are committed as a human-reviewable ``plans.lock.json`` baseline;
:func:`diff_baseline` powers the CI regression gate (any drift is a
rule-coded P006 finding).  :class:`PlanGuard` packages the capture +
classify step as a test fixture, and :class:`StatementAudit` (fed by
``TraceStore.set_statement_audit``) proves a workload touches the trace
relations only through registered primitives (P005).
"""

from __future__ import annotations

import itertools
import json
import re
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.lint import Finding, LintConfig, LintRule
from repro.engine.events import Binding, XferEvent, XformEvent
from repro.provenance.store import (
    PLAN_REFERENCE_RUN,
    SQL_PRIMITIVES,
    SqlPrimitive,
    TraceStore,
)
from repro.provenance.trace import Trace

# Importing the sharded backend registers its reconciliation primitive
# (``shard_run_inventory``) in ``SQL_PRIMITIVES``, so the catalog the
# analyzer replays covers every storage backend shipped with the repo.
from repro.storage import sharded as _sharded  # noqa: F401
from repro.values.index import Index
from repro.workflow.model import PortRef

#: The trace relations of the canonical schema.  Only accesses to these
#: tables are subject to the P-series rules; VALUES aliases, materialized
#: subqueries and sqlite_master lookups are classified out of the way.
SCHEMA_TABLES = frozenset(
    {"runs", "xform_event", "xform_io", "xfer", "value_pool"}
)

#: Access paths that count as "indexed" for PlanGuard and P001.
INDEXED_PATHS = frozenset({"covering-seek", "index-seek", "pk-seek"})

BASELINE_SCHEMA = "repro.planlint/1"
DEFAULT_BASELINE = "plans.lock.json"

# Python's sqlite3 module caches compiled statements by SQL text, and a
# cached EXPLAIN replays its *old* plan even after the schema changed
# underneath it (verified: a DROP INDEX on the same connection leaves a
# re-run EXPLAIN claiming the dropped index is still used).  A unique
# trailing comment per EXPLAIN defeats the cache.
_EXPLAIN_NONCE = itertools.count(1)


# ---------------------------------------------------------------------------
# Rule catalogue


def _no_check(_ctx: Any) -> Iterable[Tuple[str, str]]:
    """P-rules are driven by plan analysis, not the workflow LintContext."""
    return ()


#: The P-series rules.  Kept out of the workflow lint registry on
#: purpose: ``repro-prov lint`` findings and plan findings are different
#: documents with different drivers; they only share the machinery.
PLAN_RULES: Tuple[LintRule, ...] = (
    LintRule(
        "P001",
        "full-table-scan",
        "error",
        "A store primitive reads a trace relation with a full table or "
        "index scan instead of an index seek.",
        _no_check,
    ),
    LintRule(
        "P002",
        "non-covering-index-hot-path",
        "note",
        "A hot-path primitive seeks a non-covering index, paying one "
        "extra row fetch per match.",
        _no_check,
    ),
    LintRule(
        "P003",
        "temp-btree-sort",
        "error",
        "A statement sorts or groups through a transient B-tree instead "
        "of reading rows in index order.",
        _no_check,
    ),
    LintRule(
        "P004",
        "automatic-index",
        "error",
        "SQLite built an automatic (transient) index at query time — a "
        "missing schema index is being paid for on every execution.",
        _no_check,
    ),
    LintRule(
        "P005",
        "unregistered-sql",
        "error",
        "A statement read the trace relations without going through any "
        "registered SQL primitive.",
        _no_check,
    ),
    LintRule(
        "P006",
        "plan-baseline-drift",
        "error",
        "A live query plan differs from the committed plans.lock.json "
        "baseline.",
        _no_check,
    ),
)

_RULES_BY_CODE: Dict[str, LintRule] = {rule.code: rule for rule in PLAN_RULES}


def plan_rules() -> Tuple[LintRule, ...]:
    """The P-series rule catalogue (for ``--list-rules`` and SARIF)."""
    return PLAN_RULES


# ---------------------------------------------------------------------------
# SQL normalization and alias resolution


def normalize_sql(sql: str) -> str:
    """Canonical statement template: whitespace- and arity-insensitive.

    Chunked batch variants of one primitive differ only in how many
    ``(?,?,...)`` groups their ``VALUES`` lists carry; collapsing every
    placeholder group to ``(?*)`` and every run of groups to one makes
    all chunk sizes normalize to the same template.
    """
    text = " ".join(sql.split())
    text = re.sub(r"\(\s*\?(?:\s*,\s*\?)*\s*\)", "(?*)", text)
    text = re.sub(r"\(\?\*\)(?:\s*,\s*\(\?\*\))+", "(?*)", text)
    return text.strip()


#: Words that can follow a table name in FROM/JOIN without being an alias.
_NOT_ALIAS = frozenset(
    {
        "ON", "LEFT", "RIGHT", "INNER", "OUTER", "CROSS", "JOIN", "WHERE",
        "ORDER", "GROUP", "LIMIT", "UNION", "SET", "USING", "NATURAL",
        "HAVING", "AND", "OR", "AS",
    }
)

_FROM_RE = re.compile(
    r"\b(?:FROM|JOIN)\s+([A-Za-z_]\w*)"
    r"(?:\s+AS\s+([A-Za-z_]\w*)|\s+([A-Za-z_]\w*))?",
    re.IGNORECASE,
)


def _alias_map(sql: str) -> Dict[str, str]:
    """Map every FROM/JOIN alias (and bare table name) to its table."""
    aliases: Dict[str, str] = {}
    for match in _FROM_RE.finditer(sql):
        table, as_alias, bare_alias = match.groups()
        aliases.setdefault(table, table)
        alias = as_alias or bare_alias
        if alias and alias.upper() not in _NOT_ALIAS:
            aliases[alias] = table
    return aliases


# ---------------------------------------------------------------------------
# Plan parsing


@dataclass(frozen=True)
class TableAccess:
    """One access step of a query plan, classified."""

    table: str  # schema table (aliases resolved) or raw plan name
    path: str  # one of the access-path classes in the module docstring
    index: str = ""  # index name when the path uses one

    def to_json(self) -> Dict[str, str]:
        doc = {"table": self.table, "path": self.path}
        if self.index:
            doc["index"] = self.index
        return doc


@dataclass(frozen=True)
class StatementPlan:
    """One captured statement with its parsed EXPLAIN QUERY PLAN."""

    sql: str  # normalized template
    accesses: Tuple[TableAccess, ...]
    flags: Tuple[str, ...]  # temp-btree-order / -group / -distinct
    details: Tuple[str, ...]  # raw plan detail lines (informational)

    def to_json(self) -> Dict[str, Any]:
        return {
            "sql": self.sql,
            "accesses": [a.to_json() for a in self.accesses],
            "flags": list(self.flags),
            "detail": list(self.details),
        }


_SEARCH_RE = re.compile(
    r"^SEARCH\s+(?:SUBQUERY\s+\S+\s+AS\s+)?(\w+)\s+USING\s+(.*)$"
)
_SCAN_RE = re.compile(
    r"^SCAN\s+(?:SUBQUERY\s+\S+\s+AS\s+)?(\w+)(?:\s+USING\s+(.*))?$"
)
_TEMP_BTREE_RE = re.compile(r"^USE TEMP B-TREE FOR (ORDER BY|GROUP BY|DISTINCT)")
_INDEX_NAME_RE = re.compile(r"INDEX\s+(\w+)")


def _classify_detail(
    detail: str, aliases: Dict[str, str]
) -> Tuple[Optional[TableAccess], Optional[str]]:
    """(access, flag) for one plan line; (None, None) for structure."""
    text = detail.strip()
    temp = _TEMP_BTREE_RE.match(text)
    if temp:
        kind = temp.group(1).split()[0].lower()  # order / group / distinct
        return None, f"temp-btree-{kind}"
    search = _SEARCH_RE.match(text)
    if search:
        name, how = search.groups()
        table = aliases.get(name, name)
        how_upper = how.upper()
        index_match = _INDEX_NAME_RE.search(how)
        index = index_match.group(1) if index_match else ""
        if "AUTOMATIC" in how_upper:
            return TableAccess(table, "auto-index", index), None
        if "COVERING INDEX" in how_upper:
            return TableAccess(table, "covering-seek", index), None
        if "INTEGER PRIMARY KEY" in how_upper or "PRIMARY KEY" in how_upper:
            return TableAccess(table, "pk-seek"), None
        if "INDEX" in how_upper:
            return TableAccess(table, "index-seek", index), None
        return TableAccess(table, "index-seek", index), None
    scan = _SCAN_RE.match(text)
    if scan:
        name, how = scan.groups()
        table = aliases.get(name, name)
        if how:
            how_upper = how.upper()
            index_match = _INDEX_NAME_RE.search(how)
            index = index_match.group(1) if index_match else ""
            if "AUTOMATIC" in how_upper:
                return TableAccess(table, "auto-index", index), None
            return TableAccess(table, "index-scan", index), None
        if table == "sqlite_master" or table.startswith("sqlite_"):
            return TableAccess(table, "system"), None
        if table in SCHEMA_TABLES:
            return TableAccess(table, "full-scan"), None
        # VALUES aliases, co-routines, materialized subqueries.
        return TableAccess(table, "ephemeral"), None
    if "CONSTANT ROW" in text.upper():
        return TableAccess("const", "ephemeral"), None
    # COMPOUND QUERY / UNION ALL / MERGE / MATERIALIZE / SUBQUERY markers.
    return None, None


def explain_statement(
    store: TraceStore, sql: str, params: Sequence[Any] = ()
) -> StatementPlan:
    """EXPLAIN one statement against ``store`` and classify its plan."""
    nonce = next(_EXPLAIN_NONCE)
    stmt = f"EXPLAIN QUERY PLAN {sql} /* planlint:{nonce} */"
    with store._read_guard:
        rows = store._conn.execute(stmt, tuple(params)).fetchall()
    aliases = _alias_map(sql)
    accesses: List[TableAccess] = []
    flags: List[str] = []
    details: List[str] = []
    for row in rows:
        detail = str(row[-1])
        details.append(detail)
        access, flag = _classify_detail(detail, aliases)
        if access is not None:
            accesses.append(access)
        if flag is not None and flag not in flags:
            flags.append(flag)
    return StatementPlan(
        sql=normalize_sql(sql),
        accesses=tuple(accesses),
        flags=tuple(flags),
        details=tuple(details),
    )


# ---------------------------------------------------------------------------
# Capture: replay bind shapes and spy on the statements they issue


def capture_statements(
    store: TraceStore, fn: Callable[[], Any]
) -> List[Tuple[str, Tuple[Any, ...]]]:
    """Run ``fn`` and return every (sql, params) its store reads issued.

    Spies on ``store._read`` — the funnel every read primitive goes
    through — so captured statements carry their exact bind parameters,
    ready to hand to ``EXPLAIN QUERY PLAN``.  ``KeyError`` from ``fn``
    is tolerated: shapes run against empty stores, and a miss still
    exercises the statements of interest.
    """
    captured: List[Tuple[str, Tuple[Any, ...]]] = []
    original = store._read

    def spy(
        sql: str, params: Sequence[Any] = (), stats: Any = None
    ) -> List[Tuple]:
        captured.append((sql, tuple(params)))
        return original(sql, params, stats=stats)

    store._read = spy  # type: ignore[method-assign]
    try:
        try:
            fn()
        except KeyError:
            pass
    finally:
        del store._read
    return captured


# ---------------------------------------------------------------------------
# The analyzer


@dataclass(frozen=True)
class ShapePlans:
    """All statements one bind shape issues, with their plans."""

    label: str
    statements: Tuple[StatementPlan, ...]


@dataclass(frozen=True)
class PrimitivePlans:
    """One registered primitive with the plans of every bind shape."""

    primitive: SqlPrimitive
    shapes: Tuple[ShapePlans, ...]

    @property
    def name(self) -> str:
        return self.primitive.name


@dataclass
class PlanReport:
    """The full analysis: every primitive, shape and statement plan."""

    primitives: List[PrimitivePlans] = field(default_factory=list)

    def statement_count(self) -> int:
        return sum(
            len(shape.statements)
            for prim in self.primitives
            for shape in prim.shapes
        )

    def templates(self) -> Set[str]:
        """Every normalized SQL template the catalog can issue."""
        return {
            stmt.sql
            for prim in self.primitives
            for shape in prim.shapes
            for stmt in shape.statements
        }


def seed_reference_trace(store: TraceStore) -> None:
    """Insert the tiny reference trace shapes like ``load_trace`` replay.

    One xform with an input and output binding plus one transfer — just
    enough rows that every statement of the read-back path executes.
    """
    if store.has_run(PLAN_REFERENCE_RUN):
        return
    trace = Trace(run_id=PLAN_REFERENCE_RUN, workflow="__planlint__")
    trace.xforms.append(
        XformEvent(
            "P",
            inputs=(Binding(PortRef("P", "x"), Index.of((0,)), value=1),),
            outputs=(Binding(PortRef("P", "y"), Index.of((0,)), value=2),),
        )
    )
    trace.xfers.append(
        XferEvent(
            Binding(PortRef("P", "y"), Index.of((0,)), value=2),
            Binding(PortRef("Q", "x"), Index.of((0,)), value=2),
        )
    )
    store.insert_trace(trace)


def analyze(
    store: Optional[TraceStore] = None, seed: bool = True
) -> PlanReport:
    """Run the static analysis: every catalog shape, explained.

    With no ``store``, a throwaway in-memory store carrying only the
    canonical schema is used (the "needs no data" mode); pass a store to
    analyze a live schema (e.g. after an index ablation).  ``seed``
    inserts the tiny reference trace :func:`seed_reference_trace`
    describes so read-back shapes emit all their statements.
    """
    owned = store is None
    live = store if store is not None else TraceStore()
    try:
        if seed:
            seed_reference_trace(live)
        primitives: List[PrimitivePlans] = []
        for name in sorted(SQL_PRIMITIVES):
            primitive = SQL_PRIMITIVES[name]
            shapes: List[ShapePlans] = []
            for shape in primitive.shapes:
                statements = capture_statements(
                    live, lambda call=shape.call: call(live)
                )
                plans = tuple(
                    explain_statement(live, sql, params)
                    for sql, params in statements
                )
                shapes.append(ShapePlans(shape.label, plans))
            primitives.append(PrimitivePlans(primitive, tuple(shapes)))
        return PlanReport(primitives)
    finally:
        if owned:
            live.close()


# ---------------------------------------------------------------------------
# Findings


def _emit(
    code: str, message: str, location: str, config: LintConfig
) -> Optional[Finding]:
    rule = _RULES_BY_CODE[code]
    if config.is_suppressed(rule):
        return None
    return Finding(
        code=code,
        rule=rule.slug,
        severity=config.severity_for(rule),
        message=message,
        location=location,
    )


def plan_findings(
    report: PlanReport, config: Optional[LintConfig] = None
) -> List[Finding]:
    """Classify the report's access paths into P001-P004 findings."""
    cfg = config if config is not None else LintConfig()
    findings: List[Finding] = []

    def add(code: str, message: str, location: str) -> None:
        finding = _emit(code, message, location, cfg)
        if finding is not None:
            findings.append(finding)

    for prim in report.primitives:
        meta = prim.primitive
        for shape in prim.shapes:
            for i, stmt in enumerate(shape.statements):
                where = f"{prim.name}.{shape.label}[{i}]"
                for access in stmt.accesses:
                    if access.table not in SCHEMA_TABLES:
                        continue
                    if access.path in ("full-scan", "index-scan"):
                        if not meta.scan_ok:
                            add(
                                "P001",
                                f"{access.path} of {access.table}"
                                + (
                                    f" via {access.index}"
                                    if access.index
                                    else ""
                                )
                                + " — expected an index seek",
                                where,
                            )
                    elif access.path == "auto-index":
                        add(
                            "P004",
                            f"automatic index built over {access.table} "
                            "at query time",
                            where,
                        )
                    elif access.path == "index-seek" and meta.hot:
                        add(
                            "P002",
                            f"non-covering index {access.index or '?'} on "
                            f"hot primitive ({access.table} row fetch per "
                            "match)",
                            where,
                        )
                if not meta.sort_ok:
                    for flag in stmt.flags:
                        # DISTINCT B-trees are the intentional dedupe
                        # pushdown (see the store docstring); only
                        # ORDER BY / GROUP BY temp trees are findings.
                        if flag in ("temp-btree-order", "temp-btree-group"):
                            add(
                                "P003",
                                f"{flag.replace('-', ' ')} in use — rows "
                                "are not consumed in index order",
                                where,
                            )
    return findings


# ---------------------------------------------------------------------------
# Baseline: plans.lock.json


def baseline_document(report: PlanReport) -> Dict[str, Any]:
    """The committed, human-reviewable form of a plan report."""
    primitives: Dict[str, Any] = {}
    for prim in report.primitives:
        meta = prim.primitive
        primitives[prim.name] = {
            "description": meta.description,
            "hot": meta.hot,
            "scan_ok": meta.scan_ok,
            "sort_ok": meta.sort_ok,
            "shapes": {
                shape.label: [stmt.to_json() for stmt in shape.statements]
                for shape in prim.shapes
            },
        }
    return {"schema": BASELINE_SCHEMA, "primitives": primitives}


def write_baseline(path: str, report: PlanReport) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline_document(report), handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        raise ValueError(f"baseline {path} is not a JSON object")
    if document.get("schema") != BASELINE_SCHEMA:
        raise ValueError(
            f"unsupported baseline schema {document.get('schema')!r} in "
            f"{path} (expected {BASELINE_SCHEMA})"
        )
    return document


def _strip_details(value: Any) -> Any:
    """Drop ``detail`` keys: raw plan text is SQLite-version-dependent."""
    if isinstance(value, dict):
        return {
            key: _strip_details(item)
            for key, item in value.items()
            if key != "detail"
        }
    if isinstance(value, list):
        return [_strip_details(item) for item in value]
    return value


def diff_baseline(
    report: PlanReport,
    baseline: Dict[str, Any],
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """P006 findings for every difference between live plans and baseline.

    Compares everything *except* the raw ``detail`` lines (informational
    only — their wording shifts across SQLite versions while the
    classified accesses do not).
    """
    cfg = config if config is not None else LintConfig()
    live = _strip_details(baseline_document(report))["primitives"]
    want = _strip_details(baseline).get("primitives", {})
    findings: List[Finding] = []

    def add(message: str, location: str) -> None:
        finding = _emit("P006", message, location, cfg)
        if finding is not None:
            findings.append(finding)

    for name in sorted(set(want) - set(live)):
        add("primitive present in baseline but not registered", name)
    for name in sorted(set(live) - set(want)):
        add("primitive not in baseline (run --update-baseline)", name)
    for name in sorted(set(live) & set(want)):
        live_prim, want_prim = live[name], want[name]
        for key in ("hot", "scan_ok", "sort_ok"):
            if live_prim.get(key) != want_prim.get(key):
                add(
                    f"{key} flag changed: baseline {want_prim.get(key)!r} "
                    f"-> live {live_prim.get(key)!r}",
                    name,
                )
        live_shapes = live_prim.get("shapes", {})
        want_shapes = want_prim.get("shapes", {})
        for label in sorted(set(want_shapes) - set(live_shapes)):
            add("bind shape present in baseline but no longer captured",
                f"{name}.{label}")
        for label in sorted(set(live_shapes) - set(want_shapes)):
            add("new bind shape not in baseline (run --update-baseline)",
                f"{name}.{label}")
        for label in sorted(set(live_shapes) & set(want_shapes)):
            live_stmts = live_shapes[label]
            want_stmts = want_shapes[label]
            if len(live_stmts) != len(want_stmts):
                add(
                    f"statement count changed: baseline "
                    f"{len(want_stmts)} -> live {len(live_stmts)}",
                    f"{name}.{label}",
                )
                continue
            for i, (live_stmt, want_stmt) in enumerate(
                zip(live_stmts, want_stmts, strict=True)
            ):
                if live_stmt == want_stmt:
                    continue
                parts: List[str] = []
                if live_stmt.get("sql") != want_stmt.get("sql"):
                    parts.append("SQL template changed")
                if live_stmt.get("accesses") != want_stmt.get("accesses"):
                    parts.append(
                        "access path changed: baseline "
                        f"{_render_accesses(want_stmt)} -> live "
                        f"{_render_accesses(live_stmt)}"
                    )
                if live_stmt.get("flags") != want_stmt.get("flags"):
                    parts.append(
                        f"flags changed: baseline "
                        f"{want_stmt.get('flags')} -> live "
                        f"{live_stmt.get('flags')}"
                    )
                add("; ".join(parts) or "plan changed", f"{name}.{label}[{i}]")
    return findings


def _render_accesses(stmt: Dict[str, Any]) -> str:
    rendered = [
        a.get("path", "?")
        + (f"({a['index']})" if a.get("index") else "")
        + f" on {a.get('table', '?')}"
        for a in stmt.get("accesses", [])
    ]
    return "[" + ", ".join(rendered) + "]"


# ---------------------------------------------------------------------------
# Statement audit (P005)


# The sqlite3 trace callback hands over the *expanded* statement text
# (bound parameters substituted as literals, via sqlite3_expanded_sql),
# so audited statements are additionally normalized literal-insensitively
# before matching against the catalog's placeholder templates.
_STRING_LITERAL = re.compile(r"'(?:[^']|'')*'")
_NUMERIC_LITERAL = re.compile(r"(?<![\w'.])-?\d+(?:\.\d+)?\b")


def audit_normalize(sql: str) -> str:
    """Template form of an audited statement: literals become ``?``."""
    text = " ".join(sql.split())
    text = _STRING_LITERAL.sub("?", text)
    text = _NUMERIC_LITERAL.sub("?", text)
    return normalize_sql(text)


_AUDIT_SKIP_PREFIXES = (
    "EXPLAIN", "PRAGMA", "BEGIN", "COMMIT", "ROLLBACK", "INSERT", "UPDATE",
    "DELETE", "CREATE", "DROP", "SAVEPOINT", "RELEASE",
)


class StatementAudit:
    """Connection-level statement recorder for the P005 rule.

    Install with ``store.set_statement_audit(audit)``; every statement
    any of the store's connections executes lands in ``statements``.
    :func:`audit_findings` then reports each normalized SELECT that does
    not match a registered primitive's template.
    """

    def __init__(self) -> None:
        self.statements: List[str] = []

    def __call__(self, sql: str) -> None:
        self.statements.append(sql)

    def selects(self) -> List[str]:
        """The recorded read statements, template-normalized, in order."""
        out: List[str] = []
        for sql in self.statements:
            text = audit_normalize(sql)
            upper = text.upper()
            if upper.startswith(_AUDIT_SKIP_PREFIXES):
                continue
            if not upper.startswith(("SELECT", "WITH")):
                continue
            out.append(text)
        return out


def registered_templates(report: Optional[PlanReport] = None) -> Set[str]:
    """Every normalized template the registered catalog can issue."""
    live = report if report is not None else analyze()
    return live.templates()


def audit_findings(
    audit: StatementAudit,
    templates: Optional[Set[str]] = None,
    config: Optional[LintConfig] = None,
) -> List[Finding]:
    """P005 findings for recorded reads outside the registered catalog."""
    cfg = config if config is not None else LintConfig()
    raw = templates if templates is not None else registered_templates()
    # Catalog templates carry ``?`` placeholders while audited text
    # carries expanded literals; project both onto the same form.
    known = {audit_normalize(template) for template in raw}
    findings: List[Finding] = []
    seen: Set[str] = set()
    for text in audit.selects():
        if text in known or text in seen:
            continue
        # Reads that never touch a trace relation (e.g. pure VALUES
        # probes) are not the audit's business.
        aliases = _alias_map(text)
        if not (set(aliases.values()) & SCHEMA_TABLES):
            continue
        seen.add(text)
        finding = _emit(
            "P005",
            f"unregistered read of trace relations: {text[:120]}",
            "",
            cfg,
        )
        if finding is not None:
            findings.append(finding)
    return findings


# ---------------------------------------------------------------------------
# PlanGuard: the test fixture


class PlanGuard:
    """Assert access paths of live store calls inside tests.

    Replaces ad-hoc ``EXPLAIN QUERY PLAN`` string assertions: capture the
    statements a call issues, classify their plans, and assert every
    trace-relation access is an index seek.

    >>> guard = PlanGuard(store)
    >>> plans = guard.assert_indexed(lambda: store.xform_inputs([1, 2]))
    """

    def __init__(self, store: TraceStore) -> None:
        self.store = store

    def capture(self, fn: Callable[[], Any]) -> List[StatementPlan]:
        """Plans (classified) of every statement ``fn`` issues."""
        statements = capture_statements(self.store, fn)
        return [
            explain_statement(self.store, sql, params)
            for sql, params in statements
        ]

    def assert_indexed(
        self,
        fn: Callable[[], Any],
        allow_scan_of: Sequence[str] = (),
    ) -> List[StatementPlan]:
        """Run ``fn``; fail unless every trace-table access is a seek.

        ``allow_scan_of`` whitelists tables a scan is acceptable on
        (e.g. ``runs`` for whole-store enumerations).  Returns the plans
        for further assertions.
        """
        plans = self.capture(fn)
        allowed = set(allow_scan_of)
        offences: List[str] = []
        for plan in plans:
            for access in plan.accesses:
                if access.table not in SCHEMA_TABLES:
                    continue
                if access.path in INDEXED_PATHS:
                    continue
                if access.table in allowed and access.path in (
                    "full-scan", "index-scan",
                ):
                    continue
                offences.append(
                    f"{access.path} on {access.table}"
                    + (f" via {access.index}" if access.index else "")
                    + f" in: {plan.sql[:100]}"
                )
        if offences:
            raise AssertionError(
                "non-indexed access path(s):\n  " + "\n  ".join(offences)
            )
        if not plans:
            raise AssertionError(
                "PlanGuard captured no statements — nothing to assert on"
            )
        return plans
