"""Static cost-based strategy planning for lineage queries.

Builds on the per-strategy estimates of :mod:`repro.query.explain` (whose
INDEXPROJ lookup count is exact — it *is* the plan size — and whose NI
count is the static 2-lookups-per-hop bound) and combines them with the
pre-checker's verdict into one :class:`PlanExplanation`:

* :func:`choose_strategy` is the ``strategy="auto"`` planner: pick the
  strategy with the fewer estimated trace lookups, breaking ties towards
  INDEXPROJ (the paper's Section 4 conclusion: it never does worse, and
  its traversal is shared across runs and cached across queries);
* :func:`explain_plan` is the user-facing ``EXPLAIN``: verdict, cost
  breakdown, chosen strategy, and the exact trace lookups INDEXPROJ
  would issue — all without touching the trace store.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.analysis.precheck import PrecheckReport, precheck_query
from repro.provenance.store import DEFAULT_BATCH_CHUNK
from repro.query.base import LineageQuery
from repro.query.explain import QueryExplanation, explain
from repro.query.indexproj import build_plan
from repro.workflow.depths import DepthAnalysis


@dataclass(frozen=True)
class PlanExplanation:
    """Everything the static planner knows about one query."""

    report: PrecheckReport
    #: per-strategy cost estimates; ``None`` when the query is invalid
    #: (its names do not resolve, so no cost can be attributed).
    cost: Optional[QueryExplanation]
    #: the strategy ``strategy="auto"`` would run ("indexproj" | "naive",
    #: or "none" when the pre-checker already answers the query).
    chosen_strategy: str
    #: rendered trace lookups of the INDEXPROJ plan, in plan order.
    trace_queries: Tuple[str, ...]
    #: lineage result-cache state for this query over the stored-run
    #: scope: ``"warm"`` (a valid entry exists — the query would be
    #: answered with zero store reads), ``"cold"``, or ``None`` when the
    #: planning context has no result cache (engine-level planning, or a
    #: cache-disabled service).
    cache_state: Optional[str] = None
    #: SQL round-trips the unbatched INDEXPROJ execution would issue over
    #: the run scope: ``len(plan) * runs`` (0 for non-viable queries).
    unbatched_round_trips: int = 0
    #: round-trips of the set-based execution of the same key grid:
    #: ``ceil(len(plan) * runs / batch_chunk_size)``.
    batched_round_trips: int = 0
    #: chunk size the batched estimate assumes
    #: (:data:`repro.provenance.store.DEFAULT_BATCH_CHUNK` by default).
    batch_chunk_size: int = DEFAULT_BATCH_CHUNK
    #: how a default ``lineage()`` call would execute: ``"compiled"``
    #: (through the plan registry's prepared programs) or
    #: ``"interpreted"``.
    execution: str = "interpreted"
    #: compiled-plan registry state for this query shape: ``"warm"`` (a
    #: valid program exists — (s1) would be skipped entirely),
    #: ``"cold"``, or ``None`` when the planning context has no registry.
    plan_state: Optional[str] = None
    #: prepared-statement reuses the backend has recorded so far
    #: (``store.stmt_cache_hits``); only meaningful alongside
    #: ``execution == "compiled"``.
    stmt_cache_hits: int = 0

    def summary(self) -> str:
        lines = [self.report.summary()]
        if self.report.is_viable and self.cost is not None:
            lines.append(self.cost.summary())
            lines.append(f"auto strategy: {self.chosen_strategy}")
            if self.unbatched_round_trips:
                lines.append(
                    f"round-trips: {self.unbatched_round_trips} unbatched"
                    f" -> {self.batched_round_trips} batched"
                    f" (chunk={self.batch_chunk_size})"
                )
            if self.execution == "compiled":
                lines.append(
                    f"execution: compiled (plan {self.plan_state or 'cold'},"
                    f" {self.stmt_cache_hits} statement-cache hits)"
                )
            else:
                lines.append(f"execution: {self.execution}")
            if self.cache_state is not None:
                hint = (
                    " (would be served with 0 trace lookups)"
                    if self.cache_state == "warm"
                    else ""
                )
                lines.append(f"result cache: {self.cache_state}{hint}")
            for rendered in self.trace_queries:
                lines.append(f"  {rendered}")
        elif self.report.is_empty:
            lines.append(
                "plan: answered statically (0 trace lookups, any strategy)"
            )
        return "\n".join(lines)


def choose_strategy(
    analysis: DepthAnalysis, query: LineageQuery, runs: int = 1
) -> str:
    """The ``strategy="auto"`` decision: fewest estimated trace lookups.

    INDEXPROJ wins ties — its estimate is exact while NI's is an upper
    bound, and its plan is shared across the ``runs`` in scope.
    """
    estimate = explain(analysis, query, runs=max(runs, 1))
    if estimate.indexproj_lookups <= estimate.naive_lookups:
        return "indexproj"
    return "naive"


def explain_plan(
    analysis: DepthAnalysis,
    query: LineageQuery,
    runs: int = 1,
    cache_state: Optional[str] = None,
    batch_chunk: int = DEFAULT_BATCH_CHUNK,
    execution: str = "interpreted",
    plan_state: Optional[str] = None,
    stmt_cache_hits: int = 0,
) -> PlanExplanation:
    """Full static plan for one query (pre-check + cost + trace lookups).

    ``cache_state`` is supplied by contexts that own a lineage result
    cache (the :class:`~repro.service.ProvenanceService`): ``"warm"``
    when a currently-valid cached answer exists for the query.
    ``execution``/``plan_state``/``stmt_cache_hits`` likewise come from
    contexts that own a compiled-plan registry (same service).

    The round-trip estimates are exact for INDEXPROJ, because the key
    grid of the batched s2 executor is exactly ``plan × runs``:
    unbatched execution issues one statement per key, batched execution
    ``ceil(keys / batch_chunk)`` statements in total.
    """
    report = precheck_query(analysis, query)
    if report.is_invalid:
        return PlanExplanation(report, None, "none", ())
    cost = explain(analysis, query, runs=max(runs, 1))
    if report.is_empty:
        return PlanExplanation(report, cost, "none", ())
    plan = build_plan(analysis, query)
    keys = len(plan) * max(runs, 1)
    chunk = max(batch_chunk, 1)
    return PlanExplanation(
        report,
        cost,
        choose_strategy(analysis, query, runs=runs),
        tuple(str(tq) for tq in plan.trace_queries),
        cache_state=cache_state,
        unbatched_round_trips=keys,
        batched_round_trips=math.ceil(keys / chunk),
        batch_chunk_size=chunk,
        execution=execution,
        plan_state=plan_state,
        stmt_cache_hits=stmt_cache_hits,
    )
