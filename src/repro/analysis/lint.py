"""Workflow lint engine: a rule registry over dataflow specifications.

Compiler-front-end treatment of workflow definitions: every check is a
registered :class:`LintRule` with a stable code (``E0xx`` for errors,
``W0xx`` for warnings), rules run over a shared :class:`LintContext`, and
a :class:`LintConfig` re-maps severities or suppresses codes entirely.
Exporters for the resulting findings — text, JSON, SARIF 2.1.0 — live in
:mod:`repro.analysis.sarif`; the CLI surfaces them as ``repro-prov lint``.

Unlike Alg. 1 (which raises on the first structural problem), linting is
*total*: a cyclic workflow still gets its type/reachability/unbound
checks, and depth-based rules run on every processor whose depths are
determined by the acyclic part of the graph (a tolerant re-run of the
depth propagation that records conflicts instead of raising).  That is
what fixes the historical ``validate()`` early-return, where one cycle
hid every other finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
)

from repro.strategy import StrategyError, fragment_offsets, node_level, parse_strategy
from repro.workflow.model import Dataflow, PortRef

_SEVERITIES = ("error", "warning", "note")


@dataclass(frozen=True)
class Finding:
    """One lint finding, ready for any exporter."""

    code: str  # stable rule code, e.g. "W004"
    rule: str  # rule slug, e.g. "fanout-explosion"
    severity: str  # "error" | "warning" | "note"
    message: str
    #: logical location inside the workflow: "node", "node:port" or
    #: "src -> sink" for arcs; empty for whole-workflow findings.
    location: str = ""

    @property
    def is_error(self) -> bool:
        return self.severity == "error"

    def render(self) -> str:
        where = f" at {self.location}" if self.location else ""
        return f"{self.severity:7s} {self.code} [{self.rule}]{where}: {self.message}"


@dataclass
class LintConfig:
    """Per-invocation rule configuration.

    ``severities`` overrides a rule's default severity (keyed by code or
    slug); ``suppress`` silences rules entirely.  ``fanout_levels`` is the
    iteration level at which W004 starts warning (a level-``l`` processor
    fires ``d^l`` instances on ``d``-element lists).
    """

    severities: Dict[str, str] = field(default_factory=dict)
    suppress: Set[str] = field(default_factory=set)
    fanout_levels: int = 3

    def severity_for(self, rule: "LintRule") -> str:
        override = self.severities.get(rule.code) or self.severities.get(rule.slug)
        if override is None:
            return rule.default_severity
        if override not in _SEVERITIES:
            raise ValueError(
                f"unknown severity {override!r} for rule {rule.code}; "
                f"expected one of {_SEVERITIES}"
            )
        return override

    def is_suppressed(self, rule: "LintRule") -> bool:
        return rule.code in self.suppress or rule.slug in self.suppress


@dataclass(frozen=True)
class LintRule:
    """A registered check: metadata plus the check callable."""

    code: str
    slug: str
    default_severity: str
    description: str
    check: Callable[["LintContext"], Iterable[Tuple[str, str]]]


class LintContext:
    """Everything a rule may look at: the flow plus tolerant depth info."""

    def __init__(self, flow: Dataflow, config: LintConfig) -> None:
        self.flow = flow
        self.config = config
        self.cycle_nodes: Set[str] = _nodes_on_cycles(flow)
        # Tolerant depth propagation over the acyclic part of the graph.
        self.mismatches: Dict[PortRef, int] = {}
        self.levels: Dict[str, int] = {}
        #: (processor, message) pairs where the iteration strategy rejects
        #: the propagated mismatches (dot children disagreeing, Def. 3).
        self.strategy_conflicts: List[Tuple[str, str]] = []
        #: processors whose depths could not be determined (on or
        #: downstream of a cycle) — depth-based rules skip them.
        self.undetermined: Set[str] = set()
        _tolerant_depths(self)


_REGISTRY: Dict[str, LintRule] = {}


def lint_rules() -> Tuple[LintRule, ...]:
    """Every registered rule, ordered by code."""
    return tuple(_REGISTRY[code] for code in sorted(_REGISTRY))


def rule(
    code: str, slug: str, severity: str, description: str
) -> Callable[[Callable[[LintContext], Iterable[Tuple[str, str]]]], LintRule]:
    """Register a check function as a lint rule.

    The decorated function receives a :class:`LintContext` and yields
    ``(message, location)`` pairs; the registry attaches code/slug/
    severity.
    """
    if severity not in _SEVERITIES:
        raise ValueError(f"unknown severity {severity!r}")

    def register(check: Callable[[LintContext], Iterable[Tuple[str, str]]]) -> LintRule:
        if code in _REGISTRY:
            raise ValueError(f"duplicate lint rule code {code}")
        entry = LintRule(code, slug, severity, description, check)
        _REGISTRY[code] = entry
        return entry

    return register


def run_lint(
    flow: Dataflow,
    config: Optional[LintConfig] = None,
    only: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Run the registered rules over ``flow`` and return all findings.

    ``only`` restricts the run to the given codes/slugs (used by the
    legacy :func:`repro.workflow.validate.validate` wrapper).  Findings
    come back deterministically ordered: errors first, then by code, then
    by location.
    """
    config = config if config is not None else LintConfig()
    selected = set(only) if only is not None else None
    context = LintContext(flow, config)
    findings: List[Finding] = []
    for entry in lint_rules():
        if selected is not None and not {entry.code, entry.slug} & selected:
            continue
        if config.is_suppressed(entry):
            continue
        severity = config.severity_for(entry)
        for message, location in entry.check(context):
            findings.append(
                Finding(entry.code, entry.slug, severity, message, location)
            )
    rank = {name: i for i, name in enumerate(_SEVERITIES)}
    findings.sort(key=lambda f: (rank[f.severity], f.code, f.location, f.message))
    return findings


# ---------------------------------------------------------------------------
# Tolerant structural analysis shared by the rules
# ---------------------------------------------------------------------------


def _nodes_on_cycles(flow: Dataflow) -> Set[str]:
    """Processors that sit on at least one dependency cycle.

    Iterative Tarjan over the processor-level dependency graph: a node is
    cyclic iff its strongly connected component has more than one member,
    or it carries a self-edge (an arc from one of its outputs straight
    back into one of its inputs).
    """
    adjacency: Dict[str, List[str]] = {p.name: [] for p in flow.processors}
    self_edges: Set[str] = set()
    for arc in flow.arcs:
        src, snk = arc.source.node, arc.sink.node
        if src == flow.name or snk == flow.name:
            continue
        if src == snk:
            self_edges.add(src)
        adjacency[src].append(snk)

    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    cyclic: Set[str] = set(self_edges)
    counter = 0
    for root in adjacency:
        if root in index:
            continue
        # (node, iterator over its successors) — explicit DFS stack.
        work: List[Tuple[str, Iterator[str]]] = [(root, iter(adjacency[root]))]
        index[root] = lowlink[root] = counter
        counter += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter
                    counter += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(adjacency[succ])))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    cyclic.update(component)
    return cyclic


def _tolerant_depths(context: LintContext) -> None:
    """Alg. 1 re-run that records problems instead of raising.

    Processes processors in dependency order, skipping any node whose
    inputs depend on a cycle (recorded in ``context.undetermined``).  A
    strategy/mismatch conflict (the condition that makes
    ``propagate_depths`` raise) is recorded and the processor continues
    with the cross-product level, so downstream nodes still get checked.
    """
    flow = context.flow
    depths: Dict[PortRef, int] = {}
    for port in flow.inputs:
        depths[PortRef(flow.name, port.name)] = port.declared_depth

    pending = {p.name: p for p in flow.processors}
    progress = True
    while pending and progress:
        progress = False
        for name in list(pending):
            processor = pending[name]
            sources = [
                flow.incoming_arc(PortRef(name, port.name))
                for port in processor.inputs
            ]
            if any(
                arc is not None and arc.source not in depths
                for arc in sources
            ):
                continue  # a producer has not been resolved (yet)
            del pending[name]
            progress = True
            deltas: Dict[str, int] = {}
            for port, arc in zip(processor.inputs, sources, strict=False):
                ref = PortRef(name, port.name)
                depths[ref] = (
                    port.declared_depth if arc is None else depths[arc.source]
                )
                delta = depths[ref] - port.declared_depth
                context.mismatches[ref] = delta
                deltas[port.name] = max(delta, 0)
            try:
                node = parse_strategy(
                    processor.iteration, [p.name for p in processor.inputs]
                )
                level = node_level(node, deltas)
                fragment_offsets(node, deltas)
            except StrategyError as exc:
                context.strategy_conflicts.append((name, str(exc)))
                level = sum(deltas.values())  # cross-product fallback
            context.levels[name] = level
            for port in processor.outputs:
                depths[PortRef(name, port.name)] = port.declared_depth + level
    context.undetermined = set(pending)


# ---------------------------------------------------------------------------
# Built-in rules
# ---------------------------------------------------------------------------


def _port_type(flow: Dataflow, ref: PortRef):
    if ref.node == flow.name:
        ports: Iterable = flow.inputs + flow.outputs
    else:
        processor = flow.processor(ref.node)
        ports = processor.inputs + processor.outputs
    for port in ports:
        if port.name == ref.port:
            return port.type
    return None


@rule("E001", "cycle", "error", "the dataflow graph must be acyclic")
def _check_cycles(context: LintContext) -> Iterator[Tuple[str, str]]:
    if context.cycle_nodes:
        members = ", ".join(sorted(context.cycle_nodes))
        yield (
            f"dataflow {context.flow.name!r} contains a dependency cycle "
            f"through {{{members}}}",
            members.split(", ")[0],
        )


@rule(
    "E002",
    "base-type-conflict",
    "error",
    "arc endpoints must agree on the base (list-stripped) type",
)
def _check_types(context: LintContext) -> Iterator[Tuple[str, str]]:
    flow = context.flow
    for arc in flow.arcs:
        source_type = _port_type(flow, arc.source)
        sink_type = _port_type(flow, arc.sink)
        if source_type is None or sink_type is None:
            continue  # unresolvable port: structurally impossible via add_arc
        if source_type.base() != sink_type.base():
            yield (
                f"arc {arc}: base type {source_type.base().name!r} does not "
                f"match {sink_type.base().name!r}",
                str(arc),
            )


@rule(
    "E003",
    "dot-mismatch-conflict",
    "error",
    "dot-combinator ports must agree on their positive depth mismatch",
)
def _check_dot_conflicts(context: LintContext) -> Iterator[Tuple[str, str]]:
    for name, message in context.strategy_conflicts:
        yield (
            f"processor {name!r}: iteration strategy rejects the propagated "
            f"mismatches: {message}",
            name,
        )


@rule(
    "W001",
    "unreachable",
    "warning",
    "processor output can never influence a workflow output (dead code)",
)
def _check_reachability(context: LintContext) -> Iterator[Tuple[str, str]]:
    flow = context.flow
    reaching: Set[str] = set()
    frontier: List[PortRef] = [PortRef(flow.name, p.name) for p in flow.outputs]
    visited: Set[PortRef] = set()
    while frontier:
        ref = frontier.pop()
        if ref in visited:
            continue
        visited.add(ref)
        if ref.node != flow.name:
            reaching.add(ref.node)
            processor = flow.processor(ref.node)
            if processor.has_output(ref.port):
                frontier.extend(
                    PortRef(processor.name, p.name) for p in processor.inputs
                )
                continue
        arc = flow.incoming_arc(ref)
        if arc is not None:
            frontier.append(arc.source)
    for processor in flow.processors:
        if processor.name not in reaching:
            yield (
                f"processor {processor.name!r} cannot influence any "
                "workflow output",
                processor.name,
            )


@rule(
    "W002",
    "unbound-input",
    "warning",
    "input port has no incoming arc and will use its default value",
)
def _check_unbound_inputs(context: LintContext) -> Iterator[Tuple[str, str]]:
    flow = context.flow
    for processor in flow.processors:
        for port in processor.inputs:
            ref = PortRef(processor.name, port.name)
            if flow.incoming_arc(ref) is None:
                yield (
                    f"input {ref} has no incoming arc and will use its "
                    "default value",
                    str(ref),
                )


@rule(
    "W003",
    "negative-mismatch",
    "warning",
    "input receives values shallower than declared; the engine wraps "
    "singletons at run time",
)
def _check_negative_mismatch(context: LintContext) -> Iterator[Tuple[str, str]]:
    for ref in sorted(context.mismatches):
        delta = context.mismatches[ref]
        if delta < 0:
            yield (
                f"input {ref} declares a depth {-delta} greater than the "
                f"values that reach it (delta_s = {delta}); each value is "
                "wrapped in singleton lists at run time — confirm the "
                "declared type is intended",
                str(ref),
            )


@rule(
    "W004",
    "fanout-explosion",
    "warning",
    "iteration level implies a combinatorial number of processor firings",
)
def _check_fanout(context: LintContext) -> Iterator[Tuple[str, str]]:
    threshold = context.config.fanout_levels
    for name in sorted(context.levels):
        level = context.levels[name]
        if level >= threshold:
            yield (
                f"processor {name!r} iterates at level {level}: with "
                f"d-element lists one run fires ~d^{level} instances of it "
                "(declared depths, Def. 3) — check the declared types and "
                "iteration strategy",
                name,
            )


@rule(
    "W005",
    "shadowed-arc",
    "warning",
    "one source port feeds several inputs of the same processor",
)
def _check_shadowed_arcs(context: LintContext) -> Iterator[Tuple[str, str]]:
    flow = context.flow
    for processor in flow.processors:
        by_source: Dict[PortRef, List[str]] = {}
        for arc in flow.arcs_into_processor(processor.name):
            by_source.setdefault(arc.source, []).append(arc.sink.port)
        for source, ports in sorted(by_source.items()):
            if len(ports) > 1:
                yield (
                    f"source {source} feeds {len(ports)} inputs of processor "
                    f"{processor.name!r} ({', '.join(sorted(ports))}): the "
                    "same value is consumed twice — under cross iteration "
                    "this squares the instance count",
                    f"{source} -> {processor.name}",
                )


@rule(
    "W006",
    "unused-output",
    "warning",
    "processor output is computed but never consumed",
)
def _check_unused_outputs(context: LintContext) -> Iterator[Tuple[str, str]]:
    flow = context.flow
    for processor in flow.processors:
        for port in processor.outputs:
            ref = PortRef(processor.name, port.name)
            if not flow.outgoing_arcs(ref):
                yield (
                    f"output {ref} is never consumed by any arc",
                    str(ref),
                )


#: Rules whose findings the legacy ``validate()`` wrapper reports, mapped
#: to the historical issue codes it has always used.
LEGACY_CODES: Mapping[str, str] = {
    "E001": "cycle",
    "E002": "base-type-conflict",
    "E003": "dot-mismatch-conflict",
    "W001": "unreachable",
    "W002": "unbound-input",
    "W003": "depth-mismatch",
}
