"""repro.cache — generation-aware multi-level lineage caching.

The paper's INDEXPROJ strategy makes lineage cost scale with the small
workflow graph instead of the trace; Section 3.4 adds that work done for
one query should be *reused* across the many queries sharing a workflow.
The query layer already caches s1 plans.  This package adds the two
read-path levels above it:

1. :class:`~repro.cache.trace.TraceReadCache` — memoizes the s2 store
   lookups (per run, processor, port, index) for both strategies;
2. :class:`~repro.cache.results.LineageResultCache` — memoizes complete
   multi-run answers keyed by (workflow fingerprint, strategy, run set,
   focus 𝒫, target), so a warm repeat costs **zero** store reads.

Both levels are bounded LRUs with byte accounting and are kept coherent
by the store's write generations (per-run + global monotonic counters,
bumped on ingest/delete/maintenance): an entry is valid iff the
generation vector captured before the reads it summarizes still matches
the store's current vector, and store-side invalidation listeners evict
eagerly.  See docs/CACHING.md for the full design and tuning guide.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.cache.lru import MISSING, LRUCache, approx_size
from repro.cache.results import GenerationVector, LineageResultCache, ResultCacheKey
from repro.cache.trace import TraceReadCache
from repro.workflow.model import Dataflow


@dataclass(frozen=True)
class CacheConfig:
    """Tuning knobs of the lineage cache stack (docs/CACHING.md).

    A bound of 0 disables that bound; ``enabled=False`` disables the
    whole stack (the service then behaves exactly as before this
    subsystem existed).
    """

    enabled: bool = True
    result_entries: int = 256
    result_bytes: int = 64 * 1024 * 1024
    trace_entries: int = 4096
    trace_bytes: int = 32 * 1024 * 1024

    @classmethod
    def of(cls, value) -> "CacheConfig":
        """Coerce ``True``/``False``/``None``/config into a config."""
        if isinstance(value, CacheConfig):
            return value
        if value is None or value is True:
            return cls()
        if value is False:
            return cls(enabled=False)
        raise TypeError(
            f"cache must be a bool, None, or CacheConfig, not {value!r}"
        )


def workflow_fingerprint(flow: Dataflow) -> str:
    """Stable digest of a workflow definition (its canonical JSON form).

    Result-cache keys carry this instead of the workflow *name* so that
    re-registering a structurally different workflow under the same name
    can never serve answers computed for the old definition.
    """
    from repro.workflow import serialize

    text = serialize.dumps(flow, indent=0)
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


__all__ = [
    "CacheConfig",
    "GenerationVector",
    "LRUCache",
    "LineageResultCache",
    "MISSING",
    "ResultCacheKey",
    "TraceReadCache",
    "approx_size",
    "workflow_fingerprint",
]
