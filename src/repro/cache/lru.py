"""Bounded, thread-safe LRU storage with byte accounting.

The two lineage caches (:mod:`repro.cache.trace`,
:mod:`repro.cache.results`) share this container: an insertion-ordered
map bounded both by entry count and by an approximate byte budget, with
least-recently-used eviction and predicate invalidation.  All mutation
happens under one internal lock, so a cache may be hammered by the
service's reader pool while a writer thread evicts behind it.

Size accounting uses :func:`approx_size` — a recursive
``sys.getsizeof`` walk that shares identity-deduplicated payloads (the
store memoizes decoded JSON values across rows, so charging them once
mirrors their real footprint).  The estimate is deliberately cheap and
approximate; the budget exists to bound memory, not to measure it.
"""

from __future__ import annotations

import sys
import threading
from collections import OrderedDict
from typing import Any, Callable, Dict, Optional, Set, Tuple


def approx_size(obj: Any, _seen: Optional[Set[int]] = None) -> int:
    """Approximate deep size of ``obj`` in bytes (shared objects once)."""
    seen = _seen if _seen is not None else set()
    if id(obj) in seen:
        return 0
    seen.add(id(obj))
    size = sys.getsizeof(obj, 64)
    if isinstance(obj, (str, bytes, bytearray, int, float, bool)) or obj is None:
        return size
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += approx_size(key, seen) + approx_size(value, seen)
        return size
    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += approx_size(item, seen)
        return size
    # Dataclasses / plain objects: walk their attribute values.
    fields = getattr(obj, "__dict__", None)
    if fields is not None:
        for value in fields.values():
            size += approx_size(value, seen)
        return size
    slots = getattr(type(obj), "__slots__", ())
    for name in slots:
        size += approx_size(getattr(obj, name, None), seen)
    return size


#: Sentinel distinguishing "no entry" from a cached ``None``.
MISSING = object()


class LRUCache:
    """An LRU map bounded by entry count and approximate bytes.

    Counters (hits/misses/evictions/invalidations) are plain attributes
    mutated under the same lock as the map; owners fold them into
    ``repro.obs`` instruments.  A ``max_entries``/``max_bytes`` of 0
    disables the respective bound.
    """

    def __init__(
        self,
        max_entries: int = 1024,
        max_bytes: int = 64 * 1024 * 1024,
    ) -> None:
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Any, Tuple[Any, int]]" = OrderedDict()
        self._bytes = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    # -- accessors ---------------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def current_bytes(self) -> int:
        with self._lock:
            return self._bytes

    def get(self, key: Any) -> Any:
        """The cached value, or :data:`MISSING`; counts a hit or a miss."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return MISSING
            self._entries.move_to_end(key)
            self.hits += 1
            return entry[0]

    def peek(self, key: Any) -> Any:
        """Like :meth:`get` but without counters or recency update."""
        with self._lock:
            entry = self._entries.get(key)
            return MISSING if entry is None else entry[0]

    # -- mutation ----------------------------------------------------------

    def put(self, key: Any, value: Any, size: Optional[int] = None) -> None:
        """Insert/replace one entry, then evict down to the bounds."""
        entry_size = approx_size(value) if size is None else size
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, entry_size)
            self._bytes += entry_size
            while self._entries and (
                (self.max_entries and len(self._entries) > self.max_entries)
                or (self.max_bytes and self._bytes > self.max_bytes)
            ):
                _, (_, dropped_size) = self._entries.popitem(last=False)
                self._bytes -= dropped_size
                self.evictions += 1

    def discard(self, key: Any) -> bool:
        """Drop one entry (a staleness eviction); True when it existed."""
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._bytes -= entry[1]
            self.invalidations += 1
            return True

    def invalidate_where(self, predicate: Callable[[Any], bool]) -> int:
        """Drop every entry whose *key* satisfies ``predicate``."""
        with self._lock:
            doomed = [key for key in self._entries if predicate(key)]
            for key in doomed:
                _, size = self._entries.pop(key)
                self._bytes -= size
            self.invalidations += len(doomed)
            return len(doomed)

    def clear(self) -> int:
        """Drop everything; returns the number of invalidated entries."""
        with self._lock:
            count = len(self._entries)
            self._entries.clear()
            self._bytes = 0
            self.invalidations += count
            return count

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "bytes": self._bytes,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
