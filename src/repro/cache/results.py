"""Full lineage-result cache — warm repeats with zero store reads.

The heaviest unit of reuse: one entry per answered multi-run lineage
query, keyed by ``(workflow fingerprint, strategy, target binding,
focus set 𝒫, run set)``.  A warm hit rebuilds the complete
:class:`~repro.query.base.MultiRunResult` from the cached snapshot —
no plan execution, no SQL, no ``StoreStats`` movement — which is what
lets repeated multi-run traffic be served at memory speed.

Coherence follows the same generation protocol as the trace cache: the
service captures the scope's generation vector *before* executing the
query and hands it to :meth:`LineageResultCache.put`; a hit is served
only while the store's current vector for the entry's run set compares
equal.  Store-side invalidation listeners evict eagerly (exactly the
entries whose run set contains a bumped run; everything on a global
bump), and the vector check remains as the backstop for entries built
from reads that raced a writer.

Cached answers are rebuilt fresh per hit: new result objects, new
binding lists, zeroed timings, a fresh (all-zero) ``StoreStats`` — so
the object a caller receives is never shared with the cache's own
snapshot.  Binding *payloads* follow the store's read-only contract.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Dict, FrozenSet, Optional, Tuple

from repro.cache.lru import MISSING, LRUCache
from repro.engine.events import Binding
from repro.obs.core import NO_OBS, Observability
from repro.provenance.store import StoreStats, TraceStore
from repro.query.base import LineageQuery, LineageResult, MultiRunResult

#: ``(global generation, per-run generations)`` — see the store docs.
GenerationVector = Tuple[int, Tuple[int, ...]]


@dataclass(frozen=True)
class ResultCacheKey:
    """Identity of one cached multi-run lineage answer.

    ``fingerprint`` pins the workflow *definition* (re-registering a
    changed workflow under the same name misses cleanly); ``strategy``
    is the resolved execution strategy (``"auto"`` resolves before the
    key is built, so an auto query warms the concrete strategy's entry).
    Execution mode (sequential/batched/parallel) is deliberately absent:
    all modes produce identical answers, so they share one entry.
    """

    fingerprint: str
    strategy: str
    node: str
    port: str
    index: str
    focus: FrozenSet[str]
    runs: Tuple[str, ...]


class LineageResultCache:
    """Generation-validated LRU of complete multi-run lineage answers."""

    def __init__(
        self,
        store: TraceStore,
        max_entries: int = 256,
        max_bytes: int = 64 * 1024 * 1024,
        obs: Optional[Observability] = None,
    ) -> None:
        self.store = store
        self.obs = obs if obs is not None else NO_OBS
        self._lru = LRUCache(max_entries=max_entries, max_bytes=max_bytes)
        self._counter_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._obs_synced: Dict[str, int] = {"evictions": 0, "invalidations": 0}
        store.add_invalidation_listener(self._on_generation_bump)

    # -- coherence ---------------------------------------------------------

    def _on_generation_bump(self, run_id: Optional[str]) -> None:
        """Evict exactly the entries a generation bump affects."""
        if run_id is None:
            self._lru.clear()
        else:
            self._lru.invalidate_where(
                lambda key: run_id in key.runs  # type: ignore[attr-defined]
            )
        self._sync_obs()

    def _record(self, hit: bool) -> None:
        with self._counter_lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
        if self.obs.enabled:
            self.obs.inc(
                "cache.result_hits" if hit else "cache.result_misses"
            )

    def _sync_obs(self) -> None:
        if not self.obs.enabled:
            return
        stats = self._lru.stats()
        self.obs.gauge("cache.result_entries", stats["entries"])
        self.obs.gauge("cache.result_bytes", stats["bytes"])
        with self._counter_lock:
            for name in ("evictions", "invalidations"):
                delta = stats[name] - self._obs_synced[name]
                if delta > 0:
                    self.obs.inc(f"cache.result_{name}", delta)
                    self._obs_synced[name] = stats[name]

    # -- lookup ------------------------------------------------------------

    def get(
        self, key: ResultCacheKey, query: LineageQuery
    ) -> Optional[MultiRunResult]:
        """The cached answer rebuilt as a fresh result, or ``None``."""
        entry = self._lru.get(key)
        if entry is not MISSING:
            generations, snapshot = entry
            if generations == self.store.generation_vector(key.runs):
                self._record(hit=True)
                return self._rebuild(query, snapshot, generations)
            self._lru.discard(key)
        self._record(hit=False)
        self._sync_obs()
        return None

    def probe(self, key: ResultCacheKey) -> bool:
        """True when a currently-valid entry exists (no counters moved).

        The static planner uses this to report a warm result cache in
        ``EXPLAIN`` output without perturbing hit/miss accounting.
        """
        entry = self._lru.peek(key)
        if entry is MISSING:
            return False
        generations, _ = entry
        return generations == self.store.generation_vector(key.runs)

    def put(
        self,
        key: ResultCacheKey,
        result: MultiRunResult,
        generations: GenerationVector,
    ) -> None:
        """Snapshot one freshly computed answer.

        ``generations`` must have been captured *before* the execution
        that produced ``result`` — the conservative ordering that makes
        entries built concurrently with a writer self-invalidate.
        """
        snapshot = tuple(
            (run_id, tuple(run_result.bindings))
            for run_id, run_result in result.per_run.items()
        )
        self._lru.put(key, (generations, snapshot))
        self._sync_obs()

    def _rebuild(
        self,
        query: LineageQuery,
        snapshot: Tuple[Tuple[str, Tuple[Binding, ...]], ...],
        generations: GenerationVector,
    ) -> MultiRunResult:
        per_run = {
            run_id: LineageResult(
                query=query,
                run_id=run_id,
                bindings=list(bindings),
                stats=StoreStats(),
                traversal_seconds=0.0,
                lookup_seconds=0.0,
            )
            for run_id, bindings in snapshot
        }
        return MultiRunResult(
            query=query,
            per_run=per_run,
            traversal_seconds=0.0,
            lookup_seconds=0.0,
            wall_seconds=0.0,
            from_cache=True,
            generations=generations,
        )

    # -- reporting / control ----------------------------------------------

    def clear(self) -> int:
        count = self._lru.clear()
        self._sync_obs()
        return count

    def stats(self) -> Dict[str, int]:
        merged = self._lru.stats()
        with self._counter_lock:
            merged["hits"] = self.hits
            merged["misses"] = self.misses
        return merged
