"""TraceQuery lookup cache — memoized s2 store reads.

INDEXPROJ's execution step (s2) issues one indexed lookup per planned
:class:`~repro.query.indexproj.TraceQuery` per run; NI's traversal
issues one or two per visited binding.  Repeated queries over the same
runs repeat those exact lookups — the paper's Section 3.4 observation
("work done for one query should be reused across the many queries that
share a workflow") applied to the *trace* side rather than the plan
side.  This cache memoizes the store's lookup primitives per
``(primitive, run, processor, port, index)`` key.

Coherence is generation-based: every entry captures the owning run's
generation vector *before* the read it caches (so a write racing the
read can only make the entry conservatively stale, never wrong), and a
hit is only served while the vector still compares equal.  The store
additionally pushes eager evictions through its invalidation-listener
hook, so entries for rewritten runs do not linger in the LRU.

A cache hit costs zero store accesses: neither the ``StoreStats`` of
the running query nor the ``store.*`` observability counters move.
Returned lists are fresh per call; the bindings inside them follow the
store's existing read-only payload contract.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.cache.lru import MISSING, LRUCache
from repro.engine.events import Binding
from repro.obs.core import NO_OBS, Observability
from repro.provenance.store import StoreStats, TraceStore, XformMatch
from repro.values.index import Index


class TraceReadCache:
    """Generation-validated memoization of :class:`TraceStore` lookups.

    Exposes the same lookup signatures as the store (plus a leading
    ``run_id`` on :meth:`xform_inputs`, which the store keys by event id
    alone — event ids may be reused after a run is deleted, so the cache
    must scope them to the run's generation).  Engines treat an instance
    as a drop-in reader in front of the store.
    """

    def __init__(
        self,
        store: TraceStore,
        max_entries: int = 4096,
        max_bytes: int = 32 * 1024 * 1024,
        obs: Optional[Observability] = None,
    ) -> None:
        self.store = store
        self.obs = obs if obs is not None else NO_OBS
        self._lru = LRUCache(max_entries=max_entries, max_bytes=max_bytes)
        self._counter_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._obs_synced: Dict[str, int] = {"evictions": 0, "invalidations": 0}
        store.add_invalidation_listener(self._on_generation_bump)

    # -- coherence ---------------------------------------------------------

    def _on_generation_bump(self, run_id: Optional[str]) -> None:
        """Eagerly evict entries the bumped generation invalidated."""
        if run_id is None:
            self._lru.clear()
        else:
            self._lru.invalidate_where(lambda key: key[1] == run_id)
        self._sync_obs()

    def _record(self, hit: bool) -> None:
        with self._counter_lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
        if self.obs.enabled:
            self.obs.inc("cache.trace_hits" if hit else "cache.trace_misses")

    def _sync_obs(self) -> None:
        if not self.obs.enabled:
            return
        stats = self._lru.stats()
        self.obs.gauge("cache.trace_entries", stats["entries"])
        self.obs.gauge("cache.trace_bytes", stats["bytes"])
        with self._counter_lock:
            for name in ("evictions", "invalidations"):
                delta = stats[name] - self._obs_synced[name]
                if delta > 0:
                    self.obs.inc(f"cache.trace_{name}", delta)
                    self._obs_synced[name] = stats[name]

    def _lookup(
        self,
        key: Tuple[Any, ...],
        run_id: str,
        fetch: Callable[[], Sequence[Any]],
    ) -> List[Any]:
        entry = self._lru.get(key)
        if entry is not MISSING:
            generations, payload = entry
            if generations == self.store.generation_vector((run_id,)):
                self._record(hit=True)
                return list(payload)
            # Stale under the current generation vector: drop and refetch.
            self._lru.discard(key)
        self._record(hit=False)
        # Capture *before* the read: a write landing mid-read leaves the
        # entry tagged with the older vector, so the next validation
        # refuses it — conservative, never incoherent.
        generations = self.store.generation_vector((run_id,))
        payload = tuple(fetch())
        self._lru.put(key, (generations, payload))
        self._sync_obs()
        return list(payload)

    # -- INDEXPROJ primitives ---------------------------------------------

    def find_xform_inputs_matching(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        """Memoized ``Q(P, X_i, p_i)`` — the s2 lookup of Alg. 2."""
        key = ("xform_in_match", run_id, node, port, index.encode())
        with self.obs.span(
            "cache.trace_lookup", run=run_id, node=node, port=port,
        ) as span:
            fetched: List[bool] = []

            def fetch() -> List[Binding]:
                fetched.append(True)
                return self.store.find_xform_inputs_matching(
                    run_id, node, port, index, stats
                )

            result = self._lookup(key, run_id, fetch)
            span.set(warm=not fetched, rows=len(result))
        return result

    def find_xform_inputs_matching_multi(
        self,
        run_ids: Sequence[str],
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> Dict[str, List[Binding]]:
        """Batched variant sharing keys with the per-run path.

        Warm runs are answered from cache; only the misses go to the
        store (in one ``run_id IN (...)`` round-trip), so a mixed scope
        costs exactly one SQL query however many runs are already warm.
        """
        resolved: Dict[str, List[Binding]] = {}
        missing: List[str] = []
        for run_id in run_ids:
            key = ("xform_in_match", run_id, node, port, index.encode())
            entry = self._lru.get(key)
            if entry is not MISSING:
                generations, payload = entry
                if generations == self.store.generation_vector((run_id,)):
                    self._record(hit=True)
                    if payload:
                        resolved[run_id] = list(payload)
                    continue
                self._lru.discard(key)
            self._record(hit=False)
            missing.append(run_id)
        if missing:
            captured = {
                run_id: self.store.generation_vector((run_id,))
                for run_id in missing
            }
            fetched = self.store.find_xform_inputs_matching_multi(
                missing, node, port, index, stats
            )
            for run_id in missing:
                bindings = fetched.get(run_id, [])
                key = ("xform_in_match", run_id, node, port, index.encode())
                self._lru.put(key, (captured[run_id], tuple(bindings)))
                if bindings:
                    resolved[run_id] = list(bindings)
            self._sync_obs()
        return resolved

    # -- NI primitives -----------------------------------------------------

    def find_xform_by_output(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[XformMatch]:
        key = ("xform_by_out", run_id, node, port, index.encode())
        return self._lookup(
            key,
            run_id,
            lambda: self.store.find_xform_by_output(
                run_id, node, port, index, stats
            ),
        )

    def xform_inputs(
        self,
        run_id: str,
        event_ids: Sequence[int],
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        key = ("xform_inputs", run_id, tuple(event_ids))
        return self._lookup(
            key,
            run_id,
            lambda: self.store.xform_inputs(event_ids, stats),
        )

    def find_xfer_into(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Tuple[Binding, Index]]:
        key = ("xfer_into", run_id, node, port, index.encode())
        return self._lookup(
            key,
            run_id,
            lambda: self.store.find_xfer_into(run_id, node, port, index, stats),
        )

    # -- set-based (batched) lookups ---------------------------------------

    def get_many(
        self,
        probes: Sequence[Tuple[Tuple[Any, ...], str]],
    ) -> Tuple[Dict[int, Tuple[Any, ...]], List[int]]:
        """Probe many ``(lru_key, run_id)`` pairs at once.

        Returns ``(hits, miss_ordinals)``: ``hits`` maps the probe's
        position to its still-coherent payload, ``miss_ordinals`` lists
        the positions whose entries were absent or stale (stale entries
        are discarded here).  Generation vectors are looked up once per
        distinct run, not once per probe — a batched frontier touches
        the same few runs hundreds of times.
        """
        vectors: Dict[str, Any] = {}
        hits: Dict[int, Tuple[Any, ...]] = {}
        misses: List[int] = []
        for ord_, (key, run_id) in enumerate(probes):
            entry = self._lru.get(key)
            if entry is not MISSING:
                generations, payload = entry
                if run_id not in vectors:
                    vectors[run_id] = self.store.generation_vector((run_id,))
                if generations == vectors[run_id]:
                    self._record(hit=True)
                    hits[ord_] = payload
                    continue
                self._lru.discard(key)
            self._record(hit=False)
            misses.append(ord_)
        return hits, misses

    def put_many(
        self,
        entries: Sequence[Tuple[Tuple[Any, ...], Any, Tuple[Any, ...]]],
    ) -> None:
        """Backfill ``(lru_key, generation_vector, payload)`` entries.

        The vector must have been captured *before* the batched fetch
        that produced the payloads (same conservative rule as the
        single-key path: a racing write leaves the entry tagged older
        than the store, so validation refuses it).
        """
        for key, generations, payload in entries:
            self._lru.put(key, (generations, payload))
        self._sync_obs()

    def _lookup_many(
        self,
        tag: str,
        keys: Sequence[Tuple[str, str, str, Index]],
        fetch_missing: Callable[
            [List[Tuple[str, str, str, Index]]],
            Dict[Tuple[str, str, str, str], Sequence[Any]],
        ],
    ) -> Dict[Tuple[str, str, str, str], List[Any]]:
        """Shared hit/miss split for the batched lookup wrappers.

        Serves warm keys from memory, fetches only the misses through
        ``fetch_missing`` (one chunked batch), and backfills them under
        generation vectors captured per run *before* the fetch.  Keys are
        byte-identical to the single-key wrappers', so a cache warmed by
        one path serves the other.
        """
        probes = [
            ((tag, run_id, node, port, index.encode()), run_id)
            for run_id, node, port, index in keys
        ]
        hits, miss_ords = self.get_many(probes)
        result: Dict[Tuple[str, str, str, str], List[Any]] = {}
        for ord_, payload in hits.items():
            run_id, node, port, index = keys[ord_]
            result[(run_id, node, port, index.encode())] = list(payload)
        if miss_ords:
            captured: Dict[str, Tuple[int, Tuple[int, ...]]] = {}
            for ord_ in miss_ords:
                run_id = keys[ord_][0]
                if run_id not in captured:
                    captured[run_id] = self.store.generation_vector((run_id,))
            miss_keys = [keys[ord_] for ord_ in miss_ords]
            fetched = fetch_missing(miss_keys)
            entries: List[Tuple[Tuple[Any, ...], Any, Tuple[Any, ...]]] = []
            for ord_ in miss_ords:
                run_id, node, port, index = keys[ord_]
                key_id = (run_id, node, port, index.encode())
                payload = tuple(fetched[key_id])
                entries.append((probes[ord_][0], captured[run_id], payload))
                result[key_id] = list(payload)
            self.put_many(entries)
        return result

    def find_xform_inputs_matching_many(
        self,
        keys: Sequence[Tuple[str, str, str, Index]],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[Tuple[str, str, str, str], List[Binding]]:
        """Batched s2 grid lookup: hits from memory, misses in one batch."""
        return self._lookup_many(
            "xform_in_match",
            keys,
            lambda missing: self.store.find_xform_inputs_matching_many(
                missing, stats, chunk_size=chunk_size
            ),
        )

    def find_xform_inputs_matching_compiled(
        self,
        pairs: Sequence[Tuple[str, Tuple[Any, ...]]],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[Tuple[str, str, str, str], List[Binding]]:
        """Compiled-grid lookup sharing entries with the interpreted paths.

        LRU keys are byte-identical to
        :meth:`find_xform_inputs_matching` /
        :meth:`find_xform_inputs_matching_many` (the compiled lookup
        already carries the encoded fragment, so no re-encoding happens
        here) — a cache warmed by any execution mode serves the others.
        Misses go to the store's compiled primitive in one batch.
        """
        probes = [
            (
                ("xform_in_match", run_id, lk[0], lk[1], lk[2]),
                run_id,
            )
            for run_id, lk in pairs
        ]
        hits, miss_ords = self.get_many(probes)
        result: Dict[Tuple[str, str, str, str], List[Binding]] = {}
        for ord_, payload in hits.items():
            run_id, lk = pairs[ord_]
            result[(run_id, lk[0], lk[1], lk[2])] = list(payload)
        if miss_ords:
            captured: Dict[str, Tuple[int, Tuple[int, ...]]] = {}
            for ord_ in miss_ords:
                run_id = pairs[ord_][0]
                if run_id not in captured:
                    captured[run_id] = self.store.generation_vector((run_id,))
            miss_pairs = [pairs[ord_] for ord_ in miss_ords]
            fetched = self.store.find_xform_inputs_matching_compiled(
                miss_pairs, stats, chunk_size=chunk_size
            )
            entries: List[Tuple[Tuple[Any, ...], Any, Tuple[Any, ...]]] = []
            for ord_ in miss_ords:
                run_id, lk = pairs[ord_]
                key_id = (run_id, lk[0], lk[1], lk[2])
                payload = tuple(fetched[key_id])
                entries.append((probes[ord_][0], captured[run_id], payload))
                result[key_id] = list(payload)
            self.put_many(entries)
        return result

    def find_xform_by_output_many(
        self,
        keys: Sequence[Tuple[str, str, str, Index]],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[Tuple[str, str, str, str], List[XformMatch]]:
        return self._lookup_many(
            "xform_by_out",
            keys,
            lambda missing: self.store.find_xform_by_output_many(
                missing, stats, chunk_size=chunk_size
            ),
        )

    def find_xfer_into_many(
        self,
        keys: Sequence[Tuple[str, str, str, Index]],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[Tuple[str, str, str, str], List[Tuple[Binding, Index]]]:
        return self._lookup_many(
            "xfer_into",
            keys,
            lambda missing: self.store.find_xfer_into_many(
                missing, stats, chunk_size=chunk_size
            ),
        )

    def xform_inputs_many(
        self,
        groups: Sequence[Tuple[str, Sequence[int]]],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[Tuple[str, Tuple[int, ...]], List[Binding]]:
        """Batched event-input fetch, keyed like :meth:`xform_inputs`."""
        probes = [
            (("xform_inputs", run_id, tuple(event_ids)), run_id)
            for run_id, event_ids in groups
        ]
        hits, miss_ords = self.get_many(probes)
        result: Dict[Tuple[str, Tuple[int, ...]], List[Binding]] = {}
        for ord_, payload in hits.items():
            run_id, event_ids = groups[ord_]
            result[(run_id, tuple(event_ids))] = list(payload)
        if miss_ords:
            captured: Dict[str, Tuple[int, Tuple[int, ...]]] = {}
            for ord_ in miss_ords:
                run_id = groups[ord_][0]
                if run_id not in captured:
                    captured[run_id] = self.store.generation_vector((run_id,))
            missing = [
                (groups[ord_][0], tuple(groups[ord_][1])) for ord_ in miss_ords
            ]
            fetched = self.store.xform_inputs_many(
                missing, stats, chunk_size=chunk_size
            )
            entries: List[Tuple[Tuple[Any, ...], Any, Tuple[Any, ...]]] = []
            for ord_ in miss_ords:
                run_id, event_ids = groups[ord_]
                group_key = (run_id, tuple(event_ids))
                payload = tuple(fetched[group_key])
                entries.append((probes[ord_][0], captured[run_id], payload))
                result[group_key] = list(payload)
            self.put_many(entries)
        return result

    # -- reporting / control ----------------------------------------------

    def clear(self) -> int:
        count = self._lru.clear()
        self._sync_obs()
        return count

    def stats(self) -> Dict[str, int]:
        """Validated hit/miss counts plus the LRU's size accounting."""
        merged = self._lru.stats()
        with self._counter_lock:
            merged["hits"] = self.hits
            merged["misses"] = self.misses
        return merged
