"""TraceQuery lookup cache — memoized s2 store reads.

INDEXPROJ's execution step (s2) issues one indexed lookup per planned
:class:`~repro.query.indexproj.TraceQuery` per run; NI's traversal
issues one or two per visited binding.  Repeated queries over the same
runs repeat those exact lookups — the paper's Section 3.4 observation
("work done for one query should be reused across the many queries that
share a workflow") applied to the *trace* side rather than the plan
side.  This cache memoizes the store's lookup primitives per
``(primitive, run, processor, port, index)`` key.

Coherence is generation-based: every entry captures the owning run's
generation vector *before* the read it caches (so a write racing the
read can only make the entry conservatively stale, never wrong), and a
hit is only served while the vector still compares equal.  The store
additionally pushes eager evictions through its invalidation-listener
hook, so entries for rewritten runs do not linger in the LRU.

A cache hit costs zero store accesses: neither the ``StoreStats`` of
the running query nor the ``store.*`` observability counters move.
Returned lists are fresh per call; the bindings inside them follow the
store's existing read-only payload contract.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.engine.events import Binding
from repro.obs.core import NO_OBS, Observability
from repro.provenance.store import StoreStats, TraceStore, XformMatch
from repro.values.index import Index
from repro.cache.lru import LRUCache, MISSING


class TraceReadCache:
    """Generation-validated memoization of :class:`TraceStore` lookups.

    Exposes the same lookup signatures as the store (plus a leading
    ``run_id`` on :meth:`xform_inputs`, which the store keys by event id
    alone — event ids may be reused after a run is deleted, so the cache
    must scope them to the run's generation).  Engines treat an instance
    as a drop-in reader in front of the store.
    """

    def __init__(
        self,
        store: TraceStore,
        max_entries: int = 4096,
        max_bytes: int = 32 * 1024 * 1024,
        obs: Optional[Observability] = None,
    ) -> None:
        self.store = store
        self.obs = obs if obs is not None else NO_OBS
        self._lru = LRUCache(max_entries=max_entries, max_bytes=max_bytes)
        self._counter_lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self._obs_synced: Dict[str, int] = {"evictions": 0, "invalidations": 0}
        store.add_invalidation_listener(self._on_generation_bump)

    # -- coherence ---------------------------------------------------------

    def _on_generation_bump(self, run_id: Optional[str]) -> None:
        """Eagerly evict entries the bumped generation invalidated."""
        if run_id is None:
            self._lru.clear()
        else:
            self._lru.invalidate_where(lambda key: key[1] == run_id)
        self._sync_obs()

    def _record(self, hit: bool) -> None:
        with self._counter_lock:
            if hit:
                self.hits += 1
            else:
                self.misses += 1
        if self.obs.enabled:
            self.obs.inc("cache.trace_hits" if hit else "cache.trace_misses")

    def _sync_obs(self) -> None:
        if not self.obs.enabled:
            return
        stats = self._lru.stats()
        self.obs.gauge("cache.trace_entries", stats["entries"])
        self.obs.gauge("cache.trace_bytes", stats["bytes"])
        with self._counter_lock:
            for name in ("evictions", "invalidations"):
                delta = stats[name] - self._obs_synced[name]
                if delta > 0:
                    self.obs.inc(f"cache.trace_{name}", delta)
                    self._obs_synced[name] = stats[name]

    def _lookup(
        self,
        key: Tuple[Any, ...],
        run_id: str,
        fetch: Callable[[], Sequence[Any]],
    ) -> List[Any]:
        entry = self._lru.get(key)
        if entry is not MISSING:
            generations, payload = entry
            if generations == self.store.generation_vector((run_id,)):
                self._record(hit=True)
                return list(payload)
            # Stale under the current generation vector: drop and refetch.
            self._lru.discard(key)
        self._record(hit=False)
        # Capture *before* the read: a write landing mid-read leaves the
        # entry tagged with the older vector, so the next validation
        # refuses it — conservative, never incoherent.
        generations = self.store.generation_vector((run_id,))
        payload = tuple(fetch())
        self._lru.put(key, (generations, payload))
        self._sync_obs()
        return list(payload)

    # -- INDEXPROJ primitives ---------------------------------------------

    def find_xform_inputs_matching(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        """Memoized ``Q(P, X_i, p_i)`` — the s2 lookup of Alg. 2."""
        key = ("xform_in_match", run_id, node, port, index.encode())
        return self._lookup(
            key,
            run_id,
            lambda: self.store.find_xform_inputs_matching(
                run_id, node, port, index, stats
            ),
        )

    def find_xform_inputs_matching_multi(
        self,
        run_ids: Sequence[str],
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> Dict[str, List[Binding]]:
        """Batched variant sharing keys with the per-run path.

        Warm runs are answered from cache; only the misses go to the
        store (in one ``run_id IN (...)`` round-trip), so a mixed scope
        costs exactly one SQL query however many runs are already warm.
        """
        resolved: Dict[str, List[Binding]] = {}
        missing: List[str] = []
        for run_id in run_ids:
            key = ("xform_in_match", run_id, node, port, index.encode())
            entry = self._lru.get(key)
            if entry is not MISSING:
                generations, payload = entry
                if generations == self.store.generation_vector((run_id,)):
                    self._record(hit=True)
                    if payload:
                        resolved[run_id] = list(payload)
                    continue
                self._lru.discard(key)
            self._record(hit=False)
            missing.append(run_id)
        if missing:
            captured = {
                run_id: self.store.generation_vector((run_id,))
                for run_id in missing
            }
            fetched = self.store.find_xform_inputs_matching_multi(
                missing, node, port, index, stats
            )
            for run_id in missing:
                bindings = fetched.get(run_id, [])
                key = ("xform_in_match", run_id, node, port, index.encode())
                self._lru.put(key, (captured[run_id], tuple(bindings)))
                if bindings:
                    resolved[run_id] = list(bindings)
            self._sync_obs()
        return resolved

    # -- NI primitives -----------------------------------------------------

    def find_xform_by_output(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[XformMatch]:
        key = ("xform_by_out", run_id, node, port, index.encode())
        return self._lookup(
            key,
            run_id,
            lambda: self.store.find_xform_by_output(
                run_id, node, port, index, stats
            ),
        )

    def xform_inputs(
        self,
        run_id: str,
        event_ids: Sequence[int],
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        key = ("xform_inputs", run_id, tuple(event_ids))
        return self._lookup(
            key,
            run_id,
            lambda: self.store.xform_inputs(event_ids, stats),
        )

    def find_xfer_into(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Tuple[Binding, Index]]:
        key = ("xfer_into", run_id, node, port, index.encode())
        return self._lookup(
            key,
            run_id,
            lambda: self.store.find_xfer_into(run_id, node, port, index, stats),
        )

    # -- reporting / control ----------------------------------------------

    def clear(self) -> int:
        count = self._lru.clear()
        self._sync_obs()
        return count

    def stats(self) -> Dict[str, int]:
        """Validated hit/miss counts plus the LRU's size accounting."""
        merged = self._lru.stats()
        with self._counter_lock:
            merged["hits"] = self.hits
            merged["misses"] = self.misses
        return merged
