"""Plain-text and machine-readable rendering of experiment rows."""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render row dicts as an aligned ASCII table.

    >>> print(format_table([{"l": 10, "ms": 1.5}], title="demo"))
    demo
    l   ms
    --  -----
    10  1.500
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    names = list(columns) if columns else list(rows[0])
    grid: List[List[str]] = [names]
    for row in rows:
        grid.append([_format_cell(row.get(name, "")) for name in names])
    widths = [max(len(line[i]) for line in grid) for i in range(len(names))]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(name.ljust(widths[i]) for i, name in enumerate(names)).rstrip()
    )
    lines.append("  ".join("-" * widths[i] for i in range(len(names))))
    for line in grid[1:]:
        lines.append(
            "  ".join(
                line[i].ljust(widths[i]) for i in range(len(names))
            ).rstrip()
        )
    return "\n".join(lines)


def pivot(
    rows: Sequence[Dict[str, Any]],
    index: str,
    column: str,
    value: str,
) -> List[Dict[str, Any]]:
    """Pivot long-form rows into one row per ``index`` value.

    Mirrors the layout of the paper's Table 1 (d rows, l columns).
    """
    table: Dict[Any, Dict[str, Any]] = {}
    for row in rows:
        entry = table.setdefault(row[index], {index: row[index]})
        entry[str(row[column])] = row[value]
    return list(table.values())


def write_report(path: str, sections: Iterable[str]) -> None:
    """Concatenate rendered sections into a report file."""
    with open(path, "w", encoding="utf-8") as handle:
        for section in sections:
            handle.write(section)
            handle.write("\n\n")


#: Version tag every ``BENCH_*.json`` record carries.  Bump only on an
#: incompatible layout change; tooling diffing records across commits
#: keys its parsers off this string.
BENCH_SCHEMA = "repro.bench/1"


def validate_bench_payload(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Check a benchmark record against the ``repro.bench/1`` shape.

    Every record must carry the schema tag, a ``bench`` name, the
    ``scale`` it ran at, and a list of plain-dict ``rows``.  Returns the
    payload so callers can validate inline; raises ``ValueError`` with
    the full defect list otherwise.
    """
    problems = []
    if payload.get("schema") != BENCH_SCHEMA:
        problems.append(
            f"schema must be {BENCH_SCHEMA!r}, got {payload.get('schema')!r}"
        )
    if not isinstance(payload.get("bench"), str) or not payload.get("bench"):
        problems.append("'bench' must be a non-empty string")
    if not isinstance(payload.get("scale"), str):
        problems.append("'scale' must be a string")
    rows = payload.get("rows")
    if not isinstance(rows, list):
        problems.append("'rows' must be a list")
    elif not all(isinstance(row, dict) for row in rows):
        problems.append("every entry of 'rows' must be an object")
    if problems:
        raise ValueError(
            "invalid benchmark record: " + "; ".join(problems)
        )
    return payload


def write_bench_json(path: str, payload: Dict[str, Any]) -> None:
    """Write one benchmark's machine-readable record (``BENCH_*.json``).

    The record is what CI archives and trajectory tooling diffs across
    commits: stable key order, trailing newline, plain JSON types only.
    The shared ``repro.bench/1`` schema tag is stamped (and the shape
    validated) on the way out.
    """
    payload.setdefault("schema", BENCH_SCHEMA)
    validate_bench_payload(payload)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True, default=str)
        handle.write("\n")
