"""Warm lineage-cache experiment (beyond the paper's figures).

The paper's Section 3.4 argues that work done for one lineage query
should be reused across the many queries sharing a workflow; the repo's
``repro.cache`` stack extends that reuse from plans to trace lookups and
complete answers.  This driver quantifies the end state on the Fig. 4
multi-run workload: the same query answered repeatedly over an N-run
store, cold (a cache-disabled :class:`~repro.service.ProvenanceService`)
versus warm (a cache-enabled service after one priming execution).

Two acceptance claims are checked for every row before its timing is
reported:

* the warm repeats perform **zero** trace-store reads — asserted twice,
  via the per-result ``StoreStats`` and via the ``store.reads`` counter
  of an enabled ``repro.obs`` handle wired through the warm service; and
* the warm answer is differentially identical to the cold one (same
  binding keys per run).

The report benchmark asserts the headline threshold on top: >= 5x
wall-clock speedup of the warm path over the cold path.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Any, Dict, List

from repro.obs import Observability
from repro.service import ProvenanceService

Row = Dict[str, Any]

SCALES: Dict[str, Dict[str, Any]] = {
    "quick": {"runs": 30, "repeats": 5, "workloads": ["gk"]},
    "paper": {"runs": 200, "repeats": 10, "workloads": ["gk", "pd"]},
}

#: minimum warm-over-cold speedup the report benchmark asserts.
SPEEDUP_THRESHOLD = 5.0


def scale_config(scale: str) -> Dict[str, Any]:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r} (use one of {sorted(SCALES)})")
    return SCALES[scale]


def _workload(key: str):
    from repro.testbed.workloads import (
        genes2kegg_workload,
        protein_discovery_workload,
    )

    return {"gk": genes2kegg_workload, "pd": protein_discovery_workload}[key]()


def cache_warm(scale: str = "quick") -> List[Row]:
    """Cold vs. warm repeated multi-run lineage, one row per query shape.

    Returns one row per (workload, query kind) with cold/warm timings,
    the speedup, the warm store-read count (must be 0), and the
    differential check outcome.
    """
    config = scale_config(scale)
    runs, repeats = config["runs"], config["repeats"]
    rows: List[Row] = []
    for key in config["workloads"]:
        workload = _workload(key)
        with tempfile.TemporaryDirectory() as tmp:
            db = os.path.join(tmp, "traces.db")
            cold = ProvenanceService(db, cache=False)
            cold.register_workflow(workload.flow, workload.registry)
            for _ in range(runs):
                cold.run(workload.flow.name, workload.inputs)
            cold.store.create_indexes()
            obs = Observability()
            warm = ProvenanceService(db, cache=True, obs=obs)
            warm.register_workflow(workload.flow, workload.registry)
            for kind, query in (
                ("focused", workload.focused_query()),
                ("unfocused", workload.unfocused_query()),
            ):
                rows.append(
                    _measure(kind, key, runs, repeats, cold, warm, obs, query)
                )
            cold.close()
            warm.close()
    return rows


def _measure(
    kind: str,
    workload_key: str,
    runs: int,
    repeats: int,
    cold: ProvenanceService,
    warm: ProvenanceService,
    obs: Observability,
    query,
) -> Row:
    # compiled=False: the cold baseline is *interpreted* recomputation,
    # the regime the committed SPEEDUP_THRESHOLD was calibrated against
    # (compiled recomputation has its own record, BENCH_compiled.json).
    cold_times = []
    for _ in range(repeats):
        start = time.perf_counter()
        reference = cold.lineage(query, compiled=False)
        cold_times.append(time.perf_counter() - start)
    # One priming execution fills both cache levels on the warm service.
    warm.lineage(query)
    reads_before = obs.counter_value("store.reads")
    warm_times = []
    warm_results = []
    for _ in range(repeats):
        start = time.perf_counter()
        warm_results.append(warm.lineage(query))
        warm_times.append(time.perf_counter() - start)
    warm_store_reads = obs.counter_value("store.reads") - reads_before
    stats_queries = sum(
        result.stats.queries
        for answer in warm_results
        for result in answer.per_run.values()
    )
    identical = all(
        answer.from_cache
        and answer.binding_keys_by_run() == reference.binding_keys_by_run()
        for answer in warm_results
    )
    # Best-of-N (timeit discipline): scheduling and GC spikes only ever
    # add time, and they can dominate the sub-millisecond warm path.
    cold_ms = 1000.0 * min(cold_times)
    warm_ms = 1000.0 * min(warm_times)
    return {
        "workload": workload_key,
        "query": kind,
        "runs": runs,
        "repeats": repeats,
        "cold_ms": cold_ms,
        "warm_ms": warm_ms,
        "speedup": cold_ms / warm_ms if warm_ms > 0 else float("inf"),
        "warm_store_reads": warm_store_reads,
        "warm_stats_queries": stats_queries,
        "identical": identical,
    }


def min_speedup(rows: List[Row]) -> float:
    return min(row["speedup"] for row in rows)
