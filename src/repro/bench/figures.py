"""Experiment drivers: one function per table/figure of Section 4.

Every driver returns a list of row dictionaries (plus enough metadata in
the row to render the published series), so the same code backs the pytest
benchmark suite, the CLI, and EXPERIMENTS.md.  Wall-clock numbers are
machine-dependent; each row therefore also carries machine-independent
cost counters (SQL round-trips, fetched rows, visited graph ports) that
make the *shape* claims checkable anywhere.

Scales
------

``quick`` keeps every experiment under a few seconds for CI; ``paper``
covers the published configuration space (l up to 150/200, d up to 75,
plus the d = 150 extreme of Fig. 9).
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.bench.harness import Timer, best_of, prepare_store
from repro.provenance.store import TraceStore
from repro.query.indexproj import IndexProjEngine, build_plan
from repro.query.naive import NaiveEngine
from repro.testbed.generator import (
    chain_product_workflow,
    focused_query,
    partially_focused_query,
    unfocused_query,
)
from repro.testbed.runs import populate_store
from repro.workflow.depths import propagate_depths

Row = Dict[str, Any]

SCALES: Dict[str, Dict[str, Any]] = {
    "quick": {
        "l_values": [10, 28, 50],
        "d_values": [10, 25],
        "fig6_runs": 5,
        "fig6_l": 30,
        "fig6_d": 25,
        "fig7_l_values": [28, 50],
        "fig7_d_values": [10, 25, 50],
        "fig8_l_values": [10, 28, 50, 100],
        "fig9_l_values": [10, 28, 50],
        "fig9_d_values": [10, 50],
        "fig10_l": 30,
        "fig10_d": 25,
        "fig4_runs": [1, 2, 5],
        "fractions": [0.05, 0.25, 0.5],
        "repeats": 3,
    },
    "paper": {
        "l_values": [10, 28, 50, 75, 100, 150],
        "d_values": [10, 25, 50, 75],
        "fig6_runs": 10,
        "fig6_l": 75,
        "fig6_d": 50,
        "fig7_l_values": [28, 75, 150],
        "fig7_d_values": [10, 25, 50, 75],
        "fig8_l_values": [10, 28, 50, 75, 100, 150, 200],
        "fig9_l_values": [10, 28, 50, 75, 100, 150],
        "fig9_d_values": [10, 150],
        "fig10_l": 75,
        "fig10_d": 50,
        "fig4_runs": [1, 5, 10, 20],
        "fractions": [0.02, 0.1, 0.2, 0.3, 0.4, 0.5],
        "repeats": 5,
    },
}


def scale_config(scale: str) -> Dict[str, Any]:
    try:
        return SCALES[scale]
    except KeyError:
        raise ValueError(
            f"unknown scale {scale!r}; choose one of {sorted(SCALES)}"
        ) from None


# ---------------------------------------------------------------------------
# Fig. 4 — focused/unfocused queries over multiple runs (GK and PD)
# ---------------------------------------------------------------------------


def fig4_multirun(scale: str = "quick") -> List[Row]:
    """Query response across 1..K runs of the GK and PD workloads.

    For each workload and each focus mode, reports the INDEXPROJ split
    into (s1) one shared graph traversal and (s2) per-run trace lookups,
    plus the NI total for contrast (NI re-traverses every run).
    """
    from repro.testbed.workloads import (
        genes2kegg_workload,
        protein_discovery_workload,
    )

    config = scale_config(scale)
    repeats = config["repeats"]
    rows: List[Row] = []
    for workload in (genes2kegg_workload(), protein_discovery_workload()):
        store = TraceStore()
        run_ids = populate_store(
            store,
            workload.flow,
            workload.inputs,
            runs=max(config["fig4_runs"]),
            runner=workload.runner(),
            run_prefix=workload.name,
        )
        flat = workload.flow.flattened()
        indexproj = IndexProjEngine(store, flat)
        naive = NaiveEngine(store)
        for mode, query in (
            ("focused", workload.focused_query()),
            ("unfocused", workload.unfocused_query()),
        ):
            for runs in config["fig4_runs"]:
                scope = run_ids[:runs]
                timing_ip, result_ip = best_of(
                    lambda scope=scope, query=query: (
                        indexproj.lineage_multirun(scope, query)
                    ),
                    repeats,
                )
                timing_ni, _ = best_of(
                    lambda scope=scope, query=query: (
                        naive.lineage_multirun(scope, query)
                    ),
                    repeats,
                )
                rows.append(
                    {
                        "workload": workload.name,
                        "mode": mode,
                        "runs": runs,
                        "indexproj_ms": timing_ip.best_ms,
                        "s1_ms": result_ip.traversal_seconds * 1000.0,
                        "s2_ms": result_ip.lookup_seconds * 1000.0,
                        "naive_ms": timing_ni.best_ms,
                        "bindings": sum(
                            len(r.bindings) for r in result_ip.per_run.values()
                        ),
                    }
                )
        store.close()
    return rows


# ---------------------------------------------------------------------------
# Table 1 — trace database sizes over the (l, d) grid
# ---------------------------------------------------------------------------


def table1_trace_sizes(scale: str = "quick") -> List[Row]:
    """Record counts for one run of every (l, d) configuration."""
    config = scale_config(scale)
    rows: List[Row] = []
    for d in config["d_values"]:
        for length in config["l_values"]:
            prepared = prepare_store(length, d, runs=1)
            rows.append(
                {
                    "d": d,
                    "l": length,
                    "records": prepared.store.record_count(prepared.run_ids[0]),
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 6 — NI response vs accumulated database size
# ---------------------------------------------------------------------------


def fig6_db_size(scale: str = "quick") -> List[Row]:
    """NI single-run query time while the store accumulates 1..K runs."""
    config = scale_config(scale)
    length, d = config["fig6_l"], config["fig6_d"]
    flow = chain_product_workflow(length)
    store = TraceStore()
    rows: List[Row] = []
    run_ids: List[str] = []
    naive = NaiveEngine(store)
    query = focused_query()
    for run_number in range(1, config["fig6_runs"] + 1):
        run_ids += populate_store(
            store, flow, {"ListSize": d}, runs=1, run_prefix=f"acc{run_number}"
        )
        timing, result = best_of(
            lambda: naive.lineage(run_ids[0], query), config["repeats"]
        )
        rows.append(
            {
                "runs_stored": run_number,
                "records": store.record_count(),
                "naive_ms": timing.best_ms,
                "sql_queries": result.stats.queries,
            }
        )
    store.close()
    return rows


# ---------------------------------------------------------------------------
# Fig. 7 — NI response vs input list size d
# ---------------------------------------------------------------------------


def fig7_list_size(scale: str = "quick") -> List[Row]:
    """NI query time as d grows, for several chain lengths l."""
    config = scale_config(scale)
    rows: List[Row] = []
    query = focused_query()
    for length in config["fig7_l_values"]:
        for d in config["fig7_d_values"]:
            prepared = prepare_store(length, d, runs=1)
            naive = NaiveEngine(prepared.store)
            timing, result = best_of(
                lambda: naive.lineage(prepared.run_ids[0], query),
                config["repeats"],
            )
            rows.append(
                {
                    "l": length,
                    "d": d,
                    "records": prepared.record_count,
                    "naive_ms": timing.best_ms,
                    "sql_queries": result.stats.queries,
                }
            )
    return rows


# ---------------------------------------------------------------------------
# Fig. 8 — pre-processing time t1 vs l
# ---------------------------------------------------------------------------


def fig8_preprocessing(scale: str = "quick") -> List[Row]:
    """Static costs per workflow size: Alg. 1 plus one graph traversal."""
    config = scale_config(scale)
    rows: List[Row] = []
    for length in config["fig8_l_values"]:
        flow = chain_product_workflow(length)
        with Timer() as depth_timer:
            analysis = propagate_depths(flow)
        query = unfocused_query(flow)
        with Timer() as plan_timer:
            plan = build_plan(analysis, query)
        rows.append(
            {
                "l": length,
                "graph_nodes": len(flow.processors),
                "depth_ms": depth_timer.ms,
                "plan_ms": plan_timer.ms,
                "t1_ms": depth_timer.ms + plan_timer.ms,
                "visited_ports": plan.visited_ports,
            }
        )
    return rows


# ---------------------------------------------------------------------------
# Fig. 9 — query time across strategies vs l, for two extreme d
# ---------------------------------------------------------------------------


def fig9_strategies(scale: str = "quick") -> List[Row]:
    """The focused query under NI, INDEXPROJ, and INDEXPROJ with a warm
    plan cache, across chain lengths and the two d extremes."""
    config = scale_config(scale)
    rows: List[Row] = []
    query = focused_query()
    for d in config["fig9_d_values"]:
        for length in config["fig9_l_values"]:
            prepared = prepare_store(length, d, runs=1)
            run_id = prepared.run_ids[0]
            naive = NaiveEngine(prepared.store)
            cold = IndexProjEngine(prepared.store, prepared.flow, cache_plans=False)
            warm = IndexProjEngine(prepared.store, prepared.flow, cache_plans=True)
            warm.lineage(run_id, query)  # populate the plan cache
            compiled = IndexProjEngine(prepared.store, prepared.flow)
            # Populate the compiled-plan registry and the per-connection
            # prepared-statement cache before timing.
            compiled.lineage_multirun_compiled([run_id], query)
            strategies = {
                "NI": lambda: naive.lineage(run_id, query),
                "INDEXPROJ": lambda: cold.lineage(run_id, query),
                "INDEXPROJ-cached": lambda: warm.lineage(run_id, query),
                "INDEXPROJ-compiled": lambda: compiled.lineage_multirun_compiled(
                    [run_id], query
                ).per_run[run_id],
            }
            for strategy, action in strategies.items():
                timing, result = best_of(action, config["repeats"])
                rows.append(
                    {
                        "d": d,
                        "l": length,
                        "strategy": strategy,
                        "ms": timing.best_ms,
                        "sql_queries": result.stats.queries,
                    }
                )
    return rows


# ---------------------------------------------------------------------------
# Fig. 10 — INDEXPROJ on partially unfocused queries
# ---------------------------------------------------------------------------


def fig10_partial_focus(scale: str = "quick") -> List[Row]:
    """INDEXPROJ response as the focus set grows toward 50% of processors."""
    config = scale_config(scale)
    length, d = config["fig10_l"], config["fig10_d"]
    prepared = prepare_store(length, d, runs=1)
    run_id = prepared.run_ids[0]
    rows: List[Row] = []
    for fraction in config["fractions"]:
        query = partially_focused_query(prepared.flow, fraction)
        engine = IndexProjEngine(prepared.store, prepared.flow, cache_plans=False)
        timing, result = best_of(
            lambda: engine.lineage(run_id, query), config["repeats"]
        )
        rows.append(
            {
                "l": length,
                "d": d,
                "focus_fraction": fraction,
                "focus_size": len(query.focus),
                "indexproj_ms": timing.best_ms,
                "sql_queries": result.stats.queries,
                "bindings": len(result.bindings),
            }
        )
    return rows


ALL_EXPERIMENTS = {
    "fig4": fig4_multirun,
    "table1": table1_trace_sizes,
    "fig6": fig6_db_size,
    "fig7": fig7_list_size,
    "fig8": fig8_preprocessing,
    "fig9": fig9_strategies,
    "fig10": fig10_partial_focus,
}
