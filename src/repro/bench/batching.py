"""Set-based batched execution experiment (beyond the paper's figures).

``EXPERIMENTS.md`` pins the reproduction's efficiency story to the
hardware-independent ``sql_queries`` round-trip counter.  This driver
quantifies what the batched read path (docs/PERFORMANCE.md) does to that
counter on the paper-scale workloads: the same cold-cache multi-run
lineage query executed per-key (one SQL statement per lookup key per
run) versus set-based (chunked multi-key ``VALUES``-joins), for both
strategies, over growing run scopes.

Every row is checked differentially before its timing is reported — the
batched answer must be binding-identical to the unbatched one — and the
report benchmark asserts the acceptance floor on top: at the largest run
scope the batched path must issue at least ``REDUCTION_THRESHOLD``x
fewer round-trips, and it must never issue more than the unbatched path
anywhere.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Any, Dict, List

from repro.service import ProvenanceService

Row = Dict[str, Any]

SCALES: Dict[str, Dict[str, Any]] = {
    "quick": {"runs": [1, 5, 20], "workloads": ["gk"]},
    "paper": {"runs": [1, 5, 20], "workloads": ["gk", "pd"]},
}

#: minimum round-trip reduction the report benchmark asserts at the
#: largest run scope (ISSUE 5 acceptance floor).
REDUCTION_THRESHOLD = 3.0


def scale_config(scale: str) -> Dict[str, Any]:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r} (use one of {sorted(SCALES)})")
    return SCALES[scale]


def _workload(key: str):
    from repro.testbed.workloads import (
        genes2kegg_workload,
        protein_discovery_workload,
    )

    return {"gk": genes2kegg_workload, "pd": protein_discovery_workload}[key]()


def _best_ms(fn, repeats: int = 3) -> float:
    # Best-of-N (timeit discipline): scheduling and GC spikes only add.
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return 1000.0 * best


def batch_sweep(scale: str = "quick") -> List[Row]:
    """Cold-cache batched vs. unbatched lineage over growing run scopes.

    One row per (workload, query kind, strategy, run count) with the
    round-trip counts of both modes, the reduction factor, best-of-N
    timings, and the differential check outcome.
    """
    config = scale_config(scale)
    rows: List[Row] = []
    for key in config["workloads"]:
        workload = _workload(key)
        with tempfile.TemporaryDirectory() as tmp:
            db = os.path.join(tmp, "traces.db")
            service = ProvenanceService(db, cache=False)
            service.register_workflow(workload.flow, workload.registry)
            all_runs = [
                service.run(workload.flow.name, workload.inputs)
                for _ in range(max(config["runs"]))
            ]
            service.store.create_indexes()
            for kind, query in (
                ("focused", workload.focused_query()),
                ("unfocused", workload.unfocused_query()),
            ):
                for strategy in ("indexproj", "naive"):
                    for count in config["runs"]:
                        scope = all_runs[:count]
                        rows.append(
                            _measure(
                                service, key, kind, strategy, scope, query
                            )
                        )
            service.close()
    return rows


def _measure(
    service: ProvenanceService,
    workload_key: str,
    kind: str,
    strategy: str,
    scope: List[str],
    query,
) -> Row:
    # compiled=False throughout: this sweep measures the *interpreted*
    # per-key baseline against the set-based grid (the compiled path has
    # its own record, BENCH_compiled.json).
    unbatched = service.lineage(
        query, runs=scope, strategy=strategy, compiled=False
    )
    batched = service.lineage(
        query, runs=scope, strategy=strategy, batch=True, compiled=False
    )
    identical = (
        batched.binding_keys_by_run() == unbatched.binding_keys_by_run()
    )
    unbatched_queries = unbatched.sql_queries
    batched_queries = batched.sql_queries
    unbatched_ms = _best_ms(
        lambda: service.lineage(
            query, runs=scope, strategy=strategy, compiled=False
        )
    )
    batched_ms = _best_ms(
        lambda: service.lineage(
            query, runs=scope, strategy=strategy, batch=True, compiled=False
        )
    )
    return {
        "workload": workload_key,
        "query": kind,
        "strategy": strategy,
        "runs": len(scope),
        "unbatched_ms": unbatched_ms,
        "batched_ms": batched_ms,
        "unbatched_queries": unbatched_queries,
        "batched_queries": batched_queries,
        "reduction": (
            unbatched_queries / batched_queries
            if batched_queries
            else float("inf")
        ),
        "batch_keys": batched.aggregate_stats().batch_keys,
        "identical": identical,
    }


def min_reduction_at_max_runs(rows: List[Row]) -> float:
    """Smallest round-trip reduction among the largest-scope rows."""
    top = max(row["runs"] for row in rows)
    return min(row["reduction"] for row in rows if row["runs"] == top)
