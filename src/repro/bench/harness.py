"""Timing protocol and store preparation shared by all experiments.

The paper's measurement protocol (Section 4, footnote 10): "all results
refer to the best response times over a sequence of five identical queries
for all strategies, i.e., assuming the best case of a warm cache".
:func:`best_of` implements exactly that; :func:`prepare_store` builds a
trace database for one synthetic configuration ``(l, d, runs)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from repro.engine.executor import WorkflowRunner
from repro.provenance.store import TraceStore
from repro.testbed.generator import chain_product_workflow
from repro.testbed.runs import populate_store
from repro.workflow.model import Dataflow

#: Identical repetitions per measurement, per the paper's protocol.
DEFAULT_REPEATS = 5


@dataclass
class Timing:
    """Repetition timings of one measurement, in seconds."""

    samples: List[float] = field(default_factory=list)

    @property
    def best(self) -> float:
        return min(self.samples)

    @property
    def median(self) -> float:
        ordered = sorted(self.samples)
        return ordered[len(ordered) // 2]

    @property
    def best_ms(self) -> float:
        return self.best * 1000.0

    def __repr__(self) -> str:
        return f"Timing(best={self.best_ms:.3f}ms, n={len(self.samples)})"


def best_of(
    action: Callable[[], Any], repeats: int = DEFAULT_REPEATS
) -> Tuple[Timing, Any]:
    """Run ``action`` ``repeats`` times; return the timings and last result.

    The first execution warms caches (SQLite page cache, plan cache) and
    is *included* in the samples — ``Timing.best`` then reports the
    warm-cache optimum the paper reports.
    """
    timing = Timing()
    result: Any = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = action()
        timing.samples.append(time.perf_counter() - started)
    return timing, result


class Timer:
    """Context-manager stopwatch for one-off phase timings."""

    def __init__(self) -> None:
        self.seconds = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.seconds = time.perf_counter() - self._started

    @property
    def ms(self) -> float:
        return self.seconds * 1000.0


@dataclass
class PreparedStore:
    """A populated trace store for one synthetic configuration."""

    flow: Dataflow
    store: TraceStore
    run_ids: List[str]
    length: int
    list_size: int

    @property
    def record_count(self) -> int:
        return self.store.record_count()

    def close(self) -> None:
        self.store.close()


_STORE_CACHE: Dict[Tuple[int, int, int], PreparedStore] = {}


def prepare_store(
    length: int,
    list_size: int,
    runs: int = 1,
    cache: bool = True,
    path: str = ":memory:",
) -> PreparedStore:
    """Generate the Fig. 5 dataflow for ``l = length``, execute it ``runs``
    times with ``ListSize = list_size``, and store every trace.

    Population cost dominates benchmark wall time, so identical
    configurations are cached per process unless ``cache=False``.
    """
    key = (length, list_size, runs)
    if cache and path == ":memory:" and key in _STORE_CACHE:
        return _STORE_CACHE[key]
    flow = chain_product_workflow(length)
    store = TraceStore(path)
    runner = WorkflowRunner()
    run_ids = populate_store(
        store,
        flow,
        {"ListSize": list_size},
        runs=runs,
        runner=runner,
        run_prefix=f"l{length}-d{list_size}",
    )
    prepared = PreparedStore(
        flow=flow, store=store, run_ids=run_ids, length=length, list_size=list_size
    )
    if cache and path == ":memory:":
        _STORE_CACHE[key] = prepared
    return prepared


def clear_store_cache() -> None:
    """Close and drop every cached store (test isolation helper)."""
    for prepared in _STORE_CACHE.values():
        prepared.close()
    _STORE_CACHE.clear()
