"""Concurrent multi-run lineage experiment (beyond the paper's figures).

The paper's Section 3.4 observation — one static traversal (s1) serves
every run in scope — makes the per-run lookup step (s2) embarrassingly
parallel: the shared plan fans out over a thread pool, one store
connection per worker.  This driver measures how much of that parallelism
turns into wall-clock speedup, in two regimes:

* ``in-cache`` — the trace database is resident in the OS page cache and
  every lookup is an indexed seek.  Each lookup costs microseconds of
  SQLite C plus microseconds of Python row decoding; the Python share
  holds the GIL, so the achievable speedup is bounded by the machine's
  core count and the off-GIL fraction.  On a single-core host this regime
  cannot exceed 1x — the rows exist to document that honestly.
* ``slow-read`` — every store read is stretched by a deterministic
  per-read latency (the :class:`~repro.provenance.faults.FaultInjector`
  read hook), standing in for cold disks, networked filesystems, or a
  remote database.  Waiting releases the GIL, so workers overlap their
  waits and the speedup approaches the worker count on any machine.
  This is the regime the parallel path is designed for, and the one the
  acceptance threshold (>= 2x) is asserted against.

Every parallel row is differentially checked against the sequential
answer (same binding keys per run) before its timing is reported.
"""

from __future__ import annotations

import os
import tempfile
import time
from typing import Any, Dict, List, Sequence

from repro.provenance.faults import FaultInjector
from repro.provenance.store import TraceStore
from repro.query.indexproj import IndexProjEngine
from repro.testbed.runs import populate_store

Row = Dict[str, Any]

SCALES: Dict[str, Dict[str, Any]] = {
    "quick": {"runs": 500, "read_delay": 0.0005, "workers": [2, 4, 8]},
    "paper": {"runs": 500, "read_delay": 0.001, "workers": [2, 4, 8, 16]},
}


def scale_config(scale: str) -> Dict[str, Any]:
    if scale not in SCALES:
        raise ValueError(f"unknown scale {scale!r} (use one of {sorted(SCALES)})")
    return SCALES[scale]


def concurrent_queries(
    scale: str = "quick",
    workers: Sequence[int] = (),
) -> List[Row]:
    """Sequential vs. parallel multi-run lineage on a >= 500-run store.

    Returns one row per (regime, worker count) with the wall-clock time,
    the speedup over the sequential baseline of the same regime, and the
    differential check outcome.
    """
    from repro.testbed.workloads import genes2kegg_workload

    config = scale_config(scale)
    worker_counts = list(workers) if workers else config["workers"]
    workload = genes2kegg_workload()
    rows: List[Row] = []
    with tempfile.TemporaryDirectory() as tmp:
        faults = FaultInjector()
        store = TraceStore(os.path.join(tmp, "traces.db"), faults=faults)
        run_ids = populate_store(
            store,
            workload.flow,
            workload.inputs,
            runs=config["runs"],
            runner=workload.runner(),
            run_prefix=workload.name,
        )
        store.create_indexes()
        engine = IndexProjEngine(store, workload.flow.flattened())
        query = workload.unfocused_query()
        engine.lineage_multirun(run_ids[:5], query)  # warm plan + caches

        for regime, delay in (("in-cache", 0.0), ("slow-read", config["read_delay"])):
            if delay:
                faults.inject_read_delay(delay)
            started = time.perf_counter()
            sequential = engine.lineage_multirun(run_ids, query)
            seq_seconds = time.perf_counter() - started
            baseline_keys = sequential.binding_keys_by_run()
            rows.append(
                {
                    "regime": regime,
                    "workers": 1,
                    "runs": len(run_ids),
                    "ms": round(seq_seconds * 1000, 1),
                    "speedup": 1.0,
                    "identical": True,
                }
            )
            for count in worker_counts:
                started = time.perf_counter()
                parallel = engine.lineage_multirun_parallel(
                    run_ids, query, max_workers=count
                )
                par_seconds = time.perf_counter() - started
                rows.append(
                    {
                        "regime": regime,
                        "workers": count,
                        "runs": len(run_ids),
                        "ms": round(par_seconds * 1000, 1),
                        "speedup": round(seq_seconds / par_seconds, 2),
                        "identical": parallel.binding_keys_by_run()
                        == baseline_keys,
                    }
                )
            faults.reset()
        store.close()
    return rows


def best_slow_read_speedup(rows: Sequence[Row]) -> float:
    """The headline number: best parallel speedup in the slow-read regime."""
    return max(
        (row["speedup"] for row in rows
         if row["regime"] == "slow-read" and row["workers"] > 1),
        default=0.0,
    )
