"""Multi-tenant HTTP load experiment for the provenance query server.

Drives a real :class:`~repro.server.runtime.ProvenanceServer` (own
asyncio loop, real sockets, stdlib clients) with concurrent closed-loop
clients spread across tenants, in two phases:

``below-limit``
    fewer clients than worker slots.  The serving discipline here is
    *zero* failures: every request must come back 200, no admission
    rejections, and the row records the sustained requests/s plus p50
    and p99 latency — the headline numbers of ``BENCH_server.json``.

``overload``
    more clients than ``max_workers + max_queue``, with every tenant's
    store reads stretched by the fault-injection read hook so requests
    genuinely occupy their slots.  Overload must degrade *cleanly*:
    excess arrivals get an immediate 429 + ``Retry-After`` (never a
    5xx, never unbounded queueing), while admitted requests still
    complete.  The row records the 200/429 split for the acceptance
    assertions in ``benchmarks/bench_server.py``.

Latency percentiles are computed over successful (200) responses only;
a 429 is a control-plane answer, not a served query.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time
from typing import Any, Dict, List, Sequence

from repro.provenance.faults import FaultInjector
from repro.query.parser import format_query
from repro.server import ServerClient, ServerConfig, ServerThread, TenantRegistry
from repro.service import ProvenanceService

Row = Dict[str, Any]

SCALES: Dict[str, Dict[str, Any]] = {
    "quick": {
        "tenants": 2,
        "runs": 2,
        "max_workers": 4,
        "max_queue": 4,
        "below_clients": 3,
        "below_requests": 12,
        "overload_clients": 14,
        "overload_requests": 5,
        "overload_read_delay": 0.04,
    },
    "paper": {
        "tenants": 4,
        "runs": 4,
        "max_workers": 4,
        "max_queue": 4,
        "below_clients": 4,
        "below_requests": 40,
        "overload_clients": 20,
        "overload_requests": 8,
        "overload_read_delay": 0.05,
    },
}


def scale_config(scale: str) -> Dict[str, Any]:
    if scale not in SCALES:
        raise ValueError(
            f"unknown scale {scale!r} (use one of {sorted(SCALES)})"
        )
    return SCALES[scale]


def _percentile(samples: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile of an unsorted sample list."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    position = (len(ordered) - 1) * q
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


def _run_phase(
    url: str,
    tenants: Sequence[str],
    queries: Sequence[str],
    clients: int,
    requests_each: int,
    phase: str,
) -> Row:
    """Closed-loop client herd: every client owns one connection."""
    statuses: List[int] = []
    latencies: List[float] = []
    lock = threading.Lock()
    barrier = threading.Barrier(clients + 1)

    def worker(worker_id: int) -> None:
        tenant = tenants[worker_id % len(tenants)]
        with ServerClient(url, tenant=tenant) as client:
            barrier.wait()
            for i in range(requests_each):
                query = queries[(worker_id + i) % len(queries)]
                started = time.perf_counter()
                response = client.lineage(q=query, cache="false")
                elapsed = time.perf_counter() - started
                with lock:
                    statuses.append(response.status)
                    if response.status == 200:
                        latencies.append(elapsed)

    threads = [
        threading.Thread(target=worker, args=(i,)) for i in range(clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - started

    ok = statuses.count(200)
    return {
        "phase": phase,
        "clients": clients,
        "tenants": len(tenants),
        "requests": len(statuses),
        "ok": ok,
        "rejected_429": statuses.count(429),
        "errors_5xx": sum(1 for s in statuses if s >= 500),
        "seconds": round(wall, 3),
        "rps": round(ok / wall, 1) if wall > 0 else 0.0,
        "p50_ms": round(_percentile(latencies, 0.50) * 1000, 2),
        "p99_ms": round(_percentile(latencies, 0.99) * 1000, 2),
    }


def server_load(scale: str = "quick") -> List[Row]:
    """The two-phase experiment; one row per phase."""
    from repro.testbed.workloads import genes2kegg_workload

    config = scale_config(scale)
    workload = genes2kegg_workload()
    queries = [
        format_query(workload.focused_query()),
        format_query(workload.unfocused_query()),
    ]
    rows: List[Row] = []
    with tempfile.TemporaryDirectory() as tmp:
        tenants: List[str] = []
        services: List[ProvenanceService] = []
        injectors: List[FaultInjector] = []
        registry = TenantRegistry()
        for t in range(config["tenants"]):
            faults = FaultInjector()
            service = ProvenanceService(
                os.path.join(tmp, f"tenant{t}.db"),
                faults=faults,
                cache=False,
            )
            service.register_workflow(workload.flow, workload.registry)
            for _ in range(config["runs"]):
                service.run(workload.name, workload.inputs)
            tenant = f"tenant{t}"
            registry.register_service(tenant, service)
            tenants.append(tenant)
            services.append(service)
            injectors.append(faults)
        server_config = ServerConfig(
            max_workers=config["max_workers"],
            max_queue=config["max_queue"],
        )
        thread = ServerThread(config=server_config, registry=registry)
        try:
            url = thread.start()
            # Warm each tenant once so the first timed request is not a
            # cold plan build.
            for tenant in tenants:
                with ServerClient(url, tenant=tenant) as client:
                    response = client.lineage(q=queries[0], cache="false")
                    assert response.status == 200, response.body
            rows.append(
                _run_phase(
                    url, tenants, queries,
                    clients=config["below_clients"],
                    requests_each=config["below_requests"],
                    phase="below-limit",
                )
            )
            for faults in injectors:
                faults.inject_read_delay(config["overload_read_delay"])
            rows.append(
                _run_phase(
                    url, tenants, queries,
                    clients=config["overload_clients"],
                    requests_each=config["overload_requests"],
                    phase="overload",
                )
            )
            for faults in injectors:
                faults.reset()
        finally:
            thread.stop()
            for service in services:
                service.close()
    return rows


def phase_row(rows: Sequence[Row], phase: str) -> Row:
    for row in rows:
        if row["phase"] == phase:
            return row
    raise KeyError(f"no {phase!r} row in {rows!r}")
