"""Measurement harness for the reproduction of the paper's evaluation.

Each function in :mod:`repro.bench.figures` regenerates the data behind one
table or figure of Section 4 and returns plain row dictionaries;
:mod:`repro.bench.reporting` renders them as the ASCII tables the
benchmark suite and the CLI print.  The timing protocol in
:mod:`repro.bench.harness` follows the paper's footnote 10: the best
response time over a sequence of identical queries, warm cache.
"""

from repro.bench.harness import Timer, best_of, prepare_store
from repro.bench.reporting import format_table, write_report

__all__ = ["Timer", "best_of", "format_table", "prepare_store", "write_report"]
