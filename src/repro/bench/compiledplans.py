"""Compiled-plan experiment: cold compile vs warm plan vs interpreted.

Two regimes, one record (``BENCH_compiled.json``):

``fig9 grid``
    The paper's Fig. 9 configurations (chain length *l* × nesting depth
    *d*, one run, the focused query).  Per grid point three executions
    are timed with :func:`~repro.bench.harness.best_of` and their p50
    reported:

    * ``interpreted`` — the plain INDEXPROJ engine re-planning per call
      (``cache_plans=False``), the committed ``BENCH_strategies.json``
      baseline regime;
    * ``cold-compile`` — the compiled path with the registry cleared
      before every call, so each sample pays (s1) compilation *and*
      prepared execution;
    * ``warm-plan`` — the compiled path against a hot registry: the
      steady state a long-lived service runs in.

``server-load``
    One closed-loop HTTP client against a single-tenant
    :class:`~repro.server.runtime.ProvenanceServer`, the same lineage
    request issued with ``compiled=true`` and ``compiled=false``; the
    row records both p50s as seen through the full service stack.

The acceptance floor — warm-plan at least
:data:`WARM_PLAN_SPEEDUP_FLOOR` times faster than interpreted at every
grid point — is computed here and asserted (and archived) by
``benchmarks/bench_compiled.py``.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Sequence

from repro.bench.figures import scale_config
from repro.bench.harness import best_of, prepare_store
from repro.query.indexproj import IndexProjEngine
from repro.testbed.generator import focused_query

Row = Dict[str, Any]

#: CI floor: warm compiled plans must beat the interpreted re-planning
#: path by at least this factor on every Fig. 9 grid point.
WARM_PLAN_SPEEDUP_FLOOR = 1.3


def _p50_ms(timing: Any) -> float:
    return timing.median * 1000.0


def compiled_grid_sweep(scale: str = "quick") -> List[Row]:
    """One row per Fig. 9 grid point with the three regimes' p50s."""
    config = scale_config(scale)
    rows: List[Row] = []
    query = focused_query()
    for d in config["fig9_d_values"]:
        for length in config["fig9_l_values"]:
            prepared = prepare_store(length, d, runs=1)
            run_id = prepared.run_ids[0]
            scope = [run_id]
            interpreted = IndexProjEngine(
                prepared.store, prepared.flow, cache_plans=False
            )
            compiled = IndexProjEngine(prepared.store, prepared.flow)

            def cold_compile():
                compiled.plan_registry.clear()
                return compiled.lineage_multirun_compiled(scope, query)

            # Prime SQLite's page cache (and create the lazy registry)
            # so every regime sees warm pages.
            interpreted.lineage_multirun(scope, query)
            compiled.lineage_multirun_compiled(scope, query)
            interp_timing, interp_result = best_of(
                lambda: interpreted.lineage_multirun(scope, query),
                config["repeats"],
            )
            cold_timing, _ = best_of(cold_compile, config["repeats"])
            compiled.lineage_multirun_compiled(scope, query)  # warm plan
            warm_timing, warm_result = best_of(
                lambda: compiled.lineage_multirun_compiled(scope, query),
                config["repeats"],
            )
            assert (
                warm_result.binding_keys_by_run()
                == interp_result.binding_keys_by_run()
            )
            interp_p50 = _p50_ms(interp_timing)
            warm_p50 = _p50_ms(warm_timing)
            rows.append(
                {
                    "regime": "fig9",
                    "d": d,
                    "l": length,
                    "interpreted_p50_ms": round(interp_p50, 4),
                    "cold_compile_p50_ms": round(_p50_ms(cold_timing), 4),
                    "warm_plan_p50_ms": round(warm_p50, 4),
                    "warm_speedup": round(
                        interp_p50 / warm_p50 if warm_p50 > 0 else 0.0, 2
                    ),
                    "interpreted_sql": interp_result.sql_queries,
                    "warm_plan_sql": warm_result.sql_queries,
                }
            )
    return rows


def compiled_server_row(requests: int = 30) -> Row:
    """p50 of the same request served compiled vs interpreted over HTTP."""
    import tempfile

    from repro.query.parser import format_query
    from repro.server import (
        ServerClient,
        ServerConfig,
        ServerThread,
        TenantRegistry,
    )
    from repro.service import ProvenanceService
    from repro.testbed.workloads import genes2kegg_workload

    workload = genes2kegg_workload()
    q_text = format_query(workload.focused_query())
    with tempfile.TemporaryDirectory() as tmp:
        service = ProvenanceService(f"{tmp}/traces.db", cache=False)
        registry = TenantRegistry()
        try:
            service.register_workflow(workload.flow, workload.registry)
            for _ in range(3):
                service.run(workload.name, workload.inputs)
            registry.register_service("bench", service)
            thread = ServerThread(
                config=ServerConfig(max_workers=2), registry=registry
            )
            try:
                url = thread.start()
                with ServerClient(url, tenant="bench") as client:
                    latencies: Dict[str, List[float]] = {}
                    for mode in ("true", "false"):
                        # Warm-up request: plan compilation / SQLite
                        # page cache stay out of the timed samples.
                        response = client.lineage(
                            q=q_text, cache="false", compiled=mode
                        )
                        assert response.status == 200, response.body
                        samples = latencies.setdefault(mode, [])
                        for _ in range(requests):
                            started = time.perf_counter()
                            response = client.lineage(
                                q=q_text, cache="false", compiled=mode
                            )
                            elapsed = time.perf_counter() - started
                            assert response.status == 200, response.body
                            samples.append(elapsed)
            finally:
                thread.stop()
        finally:
            service.close()
    return {
        "regime": "server-load",
        "requests": requests,
        "compiled_p50_ms": round(_median_ms(latencies["true"]), 3),
        "interpreted_p50_ms": round(_median_ms(latencies["false"]), 3),
    }


def _median_ms(samples: Sequence[float]) -> float:
    ordered = sorted(samples)
    return ordered[len(ordered) // 2] * 1000.0


def min_warm_speedup(rows: Sequence[Row]) -> float:
    """Smallest interpreted/warm-plan p50 ratio across the grid rows."""
    speedups = [
        row["warm_speedup"] for row in rows if row.get("regime") == "fig9"
    ]
    if not speedups:
        raise ValueError("no fig9 grid rows to take the floor over")
    return min(speedups)
