"""Run-sharded scatter-gather vs. the single-file store under load.

The experiment behind ``BENCH_shard.json``: the same captured runs are
ingested into a single-file :class:`~repro.provenance.store.TraceStore`
and into :class:`~repro.storage.ShardedStore` directories at 1, 4 and 8
shards, then hammered with concurrent closed-loop clients issuing the
workload's canonical multi-run batched lineage query.

Two regimes per backend:

``latency-bound``
    every read statement is stretched by the fault-injection read-delay
    hook (cold cache / networked disk).  A single-file store pays the
    delay once per chunk, serially; the sharded store splits each batch
    grid across shards and pays the chunks of different shards in
    parallel on the reader pool.  This is where the scatter-gather
    fan-out must show its >= 1.5x latency win at 4+ shards.

``fast-path``
    no injected delay, one client, best-of-N — the in-memory regime of
    ``BENCH_batch.json``, recorded informationally per backend.

A 1-shard store is the same SQLite file plus the dispatch layer, so its
overhead over the single-file store is the price of the abstraction and
must stay within 10% (gated on the latency-bound p50, where the ratio
is dominated by real per-statement cost rather than timer noise).

Answers are differentially checked across every backend before any
timing is recorded; a row with ``identical == False`` fails the bench.
"""

from __future__ import annotations

import os
import statistics
import tempfile
import threading
import time
from typing import Any, Dict, List, Optional

from repro.provenance.capture import capture_runs
from repro.provenance.faults import FaultInjector
from repro.provenance.store import TraceStore
from repro.query.indexproj import IndexProjEngine
from repro.storage import ShardedStore

Row = Dict[str, Any]

#: Latency-bound acceptance floor: 4+ shards vs. single-file.
SPEEDUP_THRESHOLD = 1.5
#: Fast-path ceiling: 1-shard overhead over the single-file store.
N1_OVERHEAD_LIMIT = 1.10

SCALES: Dict[str, Dict[str, Any]] = {
    "quick": {
        "workload": "gk",
        "runs": 12,
        "shards": [1, 4, 8],
        "clients": 2,
        "queries_per_client": 2,
        "read_delay": 0.003,
        "chunk_size": 1,
        "fast_repeats": 7,
        "fast_inner": 3,
    },
    "paper": {
        "workload": "gk",
        "runs": 24,
        "shards": [1, 4, 8],
        "clients": 3,
        "queries_per_client": 4,
        "read_delay": 0.003,
        "chunk_size": 1,
        "fast_repeats": 9,
        "fast_inner": 3,
    },
}


def scale_config(scale: str) -> Dict[str, Any]:
    if scale not in SCALES:
        raise ValueError(
            f"unknown scale {scale!r} (use one of {sorted(SCALES)})"
        )
    return SCALES[scale]


def _workload(key: str):
    from repro.testbed.workloads import (
        genes2kegg_workload,
        protein_discovery_workload,
    )

    return {"gk": genes2kegg_workload, "pd": protein_discovery_workload}[key]()


def _canonical_keys(result) -> Dict[str, List]:
    return {
        run_id: sorted(b.key() for b in run_result.bindings)
        for run_id, run_result in result.per_run.items()
    }


def _arm(store, delay: float) -> None:
    """Attach a read-delay injector to a store (every shard of one)."""
    targets = store.shards if isinstance(store, ShardedStore) else [store]
    for target in targets:
        faults = FaultInjector()
        faults.inject_read_delay(delay)
        target.faults = faults


def _disarm(store) -> None:
    targets = store.shards if isinstance(store, ShardedStore) else [store]
    for target in targets:
        target.faults = FaultInjector()


def _concurrent_latencies(
    store, flow, scope, query, clients: int, per_client: int, chunk: int
) -> List[float]:
    """Closed-loop client threads; per-query latencies in milliseconds."""
    latencies: List[List[float]] = [[] for _ in range(clients)]
    errors: List[BaseException] = []
    barrier = threading.Barrier(clients)

    def client(slot: int) -> None:
        engine = IndexProjEngine(store, flow)
        try:
            barrier.wait()
            for _ in range(per_client):
                started = time.perf_counter()
                engine.lineage_multirun_batched(scope, query, chunk_size=chunk)
                latencies[slot].append(
                    1000.0 * (time.perf_counter() - started)
                )
        except BaseException as exc:  # pragma: no cover - diagnostics
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(slot,))
        for slot in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        raise errors[0]
    return [sample for per_slot in latencies for sample in per_slot]


def _best_ms(fn, repeats: int, inner: int = 1) -> float:
    """Best-of-N of an ``inner``-query loop (timeit discipline): the
    fast-path regime runs at ~1 ms per query, so each sample amortizes
    several queries to keep the N=1 overhead ratio out of timer noise."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(inner):
            fn()
        best = min(best, (time.perf_counter() - start) / inner)
    return 1000.0 * best


def shard_sweep(scale: str = "quick") -> List[Row]:
    """One row per backend: identical-answer check + both regimes."""
    config = scale_config(scale)
    workload = _workload(config["workload"])
    chunk = config["chunk_size"]
    captured = capture_runs(
        workload.flow,
        [workload.inputs] * config["runs"],
        registry=workload.registry,
    )
    scope = [cap.run_id for cap in captured]
    query = workload.focused_query()
    rows: List[Row] = []
    with tempfile.TemporaryDirectory() as tmp:
        backends: List[Dict[str, Any]] = [
            {
                "backend": "single",
                "shards": 0,
                "store": TraceStore(os.path.join(tmp, "single.db")),
            }
        ]
        for count in config["shards"]:
            backends.append(
                {
                    "backend": f"sharded-{count}",
                    "shards": count,
                    "store": ShardedStore(
                        os.path.join(tmp, f"shards-{count}"),
                        num_shards=count,
                    ),
                }
            )
        try:
            for entry in backends:
                for cap in captured:
                    entry["store"].insert_trace(cap.trace)
                entry["store"].create_indexes()
            reference: Optional[Dict[str, List]] = None
            for entry in backends:
                store = entry["store"]
                engine = IndexProjEngine(store, workload.flow)
                answer = _canonical_keys(
                    engine.lineage_multirun_batched(
                        scope, query, chunk_size=chunk
                    )
                )
                if reference is None:
                    reference = answer
                fast_ms = _best_ms(
                    lambda engine=engine: engine.lineage_multirun_batched(
                        scope, query, chunk_size=chunk
                    ),
                    config["fast_repeats"],
                    inner=config["fast_inner"],
                )
                _arm(store, config["read_delay"])
                samples = _concurrent_latencies(
                    store, workload.flow, scope, query,
                    config["clients"], config["queries_per_client"], chunk,
                )
                _disarm(store)
                rows.append(
                    {
                        "backend": entry["backend"],
                        "shards": entry["shards"],
                        "runs": len(scope),
                        "clients": config["clients"],
                        "latency_p50_ms": statistics.median(samples),
                        "latency_max_ms": max(samples),
                        "fast_ms": fast_ms,
                        "identical": answer == reference,
                    }
                )
        finally:
            for entry in backends:
                entry["store"].close()
    return rows


def _row(rows: List[Row], backend: str) -> Row:
    return next(row for row in rows if row["backend"] == backend)


def speedup_at(rows: List[Row], shards: int) -> float:
    """Latency-bound p50 speedup of an N-shard store over single-file."""
    single = _row(rows, "single")["latency_p50_ms"]
    sharded = _row(rows, f"sharded-{shards}")["latency_p50_ms"]
    return single / sharded if sharded else float("inf")


def best_speedup(rows: List[Row]) -> float:
    counts = [row["shards"] for row in rows if row["shards"] >= 4]
    return max(speedup_at(rows, count) for count in counts)


def n1_overhead(rows: List[Row]) -> float:
    """p50 latency ratio of the 1-shard store over single-file.

    Measured in the latency-bound regime, where per-statement cost
    dominates and the ratio isolates the dispatch layer's overhead; the
    sub-millisecond fast-path timings (``fast_ms``,
    :func:`fast_n1_ratio`) ride along informationally but are too close
    to timer noise to gate on.
    """
    single = _row(rows, "single")["latency_p50_ms"]
    one = _row(rows, "sharded-1")["latency_p50_ms"]
    return one / single if single else float("inf")


def fast_n1_ratio(rows: List[Row]) -> float:
    """Informational: fast-path best-of-N ratio, 1-shard vs single."""
    single = _row(rows, "single")["fast_ms"]
    one = _row(rows, "sharded-1")["fast_ms"]
    return one / single if single else float("inf")
