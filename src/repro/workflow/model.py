"""Core dataflow graph structures: ports, processors, arcs, dataflows."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.values.types import ValueType


class WorkflowError(ValueError):
    """Raised for structurally invalid workflow constructions or lookups."""


@dataclass(frozen=True)
class PortSpec:
    """A declared port: a name plus a declared type.

    The declared depth ``dd(X)`` (Section 3.1) is the number of ``list``
    constructors in the declared type.
    """

    name: str
    type: ValueType

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkflowError("port name must be non-empty")

    @property
    def declared_depth(self) -> int:
        """``dd(X)``: the depth of the declared type."""
        return self.type.depth


@dataclass(frozen=True, order=True)
class PortRef:
    """A fully-qualified port reference ``node:port``.

    ``node`` is either a processor name or the dataflow's own name (for the
    workflow-level input/output ports, matching the paper's
    ``workflow:paths_per_gene`` notation).
    """

    node: str
    port: str

    def __str__(self) -> str:
        return f"{self.node}:{self.port}"


@dataclass(frozen=True)
class Arc:
    """A data dependency ``source -> sink`` between two ports."""

    source: PortRef
    sink: PortRef

    def __str__(self) -> str:
        return f"{self.source} -> {self.sink}"


class Processor:
    """A workflow node: a named black-box component with ordered ports.

    ``operation`` names the behaviour in the processor registry used by the
    execution engine (:mod:`repro.engine.processors`); ``subflow`` turns the
    processor into a nested dataflow instead.  ``iteration`` selects the list
    combinator applied when several input ports iterate: ``"cross"`` (the
    default, Def. 2), ``"dot"`` (the zip combinator of footnote 7), or a
    full combinator expression over the input ports, e.g.
    ``{"cross": [{"dot": ["x1", "x2"]}, "x3"]}`` (see
    :mod:`repro.strategy`).
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[PortSpec] = (),
        outputs: Sequence[PortSpec] = (),
        operation: Optional[str] = None,
        subflow: Optional["Dataflow"] = None,
        iteration: Any = "cross",
        config: Optional[Dict[str, Any]] = None,
    ) -> None:
        if not name:
            raise WorkflowError("processor name must be non-empty")
        if operation is not None and subflow is not None:
            raise WorkflowError(
                f"processor {name!r}: operation and subflow are mutually exclusive"
            )
        self.name = name
        self.inputs: Tuple[PortSpec, ...] = tuple(inputs)
        self.outputs: Tuple[PortSpec, ...] = tuple(outputs)
        self.operation = operation
        self.subflow = subflow
        self.iteration = iteration
        self.config: Dict[str, Any] = dict(config or {})
        _reject_duplicates(name, self.inputs)
        _reject_duplicates(name, self.outputs)
        # Validate the strategy spec against the declared inputs up front —
        # structural errors should surface at definition time, not mid-run.
        from repro.strategy import StrategyError, parse_strategy

        try:
            parse_strategy(iteration, [p.name for p in self.inputs])
        except StrategyError as exc:
            raise WorkflowError(
                f"processor {name!r}: invalid iteration strategy: {exc}"
            ) from exc

    # -- port lookup -----------------------------------------------------

    def input_port(self, name: str) -> PortSpec:
        return _find_port(self.inputs, name, self.name, "input")

    def output_port(self, name: str) -> PortSpec:
        return _find_port(self.outputs, name, self.name, "output")

    def has_input(self, name: str) -> bool:
        return any(p.name == name for p in self.inputs)

    def has_output(self, name: str) -> bool:
        return any(p.name == name for p in self.outputs)

    def input_position(self, name: str) -> int:
        """0-based position of an input port — port order drives Prop. 1."""
        for position, port in enumerate(self.inputs):
            if port.name == name:
                return position
        raise WorkflowError(f"processor {self.name!r} has no input port {name!r}")

    @property
    def is_subflow(self) -> bool:
        return self.subflow is not None

    def __repr__(self) -> str:
        return (
            f"Processor({self.name!r}, inputs={[p.name for p in self.inputs]}, "
            f"outputs={[p.name for p in self.outputs]})"
        )


def _reject_duplicates(owner: str, ports: Sequence[PortSpec]) -> None:
    seen = set()
    for port in ports:
        if port.name in seen:
            raise WorkflowError(f"processor {owner!r}: duplicate port {port.name!r}")
        seen.add(port.name)


def _find_port(
    ports: Sequence[PortSpec], name: str, owner: str, kind: str
) -> PortSpec:
    for port in ports:
        if port.name == name:
            return port
    raise WorkflowError(f"{owner!r} has no {kind} port {name!r}")


class Dataflow:
    """A dataflow specification ``D = (N, E)`` with workflow-level ports.

    Workflow input ports act as sources (bound to user-supplied values at
    run start); workflow output ports act as sinks.  Both are addressed
    with the dataflow's own name as the node, e.g. ``PortRef("wf", "out")``.
    """

    def __init__(
        self,
        name: str,
        inputs: Sequence[PortSpec] = (),
        outputs: Sequence[PortSpec] = (),
    ) -> None:
        if not name:
            raise WorkflowError("dataflow name must be non-empty")
        self.name = name
        self.inputs: Tuple[PortSpec, ...] = tuple(inputs)
        self.outputs: Tuple[PortSpec, ...] = tuple(outputs)
        _reject_duplicates(name, self.inputs)
        _reject_duplicates(name, self.outputs)
        self._processors: Dict[str, Processor] = {}
        self._arcs: List[Arc] = []

    # -- construction ----------------------------------------------------

    def add_processor(self, processor: Processor) -> Processor:
        if processor.name in self._processors or processor.name == self.name:
            raise WorkflowError(f"duplicate node name {processor.name!r}")
        self._processors[processor.name] = processor
        return processor

    def add_arc(self, source: PortRef, sink: PortRef) -> Arc:
        """Connect ``source`` (an output-side port) to ``sink`` (input-side).

        Valid sources: a processor output port, or a workflow input port.
        Valid sinks: a processor input port, or a workflow output port.
        Each sink may have at most one incoming arc (single-assignment
        dataflow); sources may fan out freely.
        """
        self._check_source(source)
        self._check_sink(sink)
        for arc in self._arcs:
            if arc.sink == sink:
                raise WorkflowError(f"sink {sink} already has an incoming arc")
        arc = Arc(source, sink)
        self._arcs.append(arc)
        return arc

    def _check_source(self, ref: PortRef) -> None:
        if ref.node == self.name:
            _find_port(self.inputs, ref.port, self.name, "workflow input")
            return
        self.processor(ref.node).output_port(ref.port)

    def _check_sink(self, ref: PortRef) -> None:
        if ref.node == self.name:
            _find_port(self.outputs, ref.port, self.name, "workflow output")
            return
        self.processor(ref.node).input_port(ref.port)

    # -- lookup ----------------------------------------------------------

    @property
    def processors(self) -> Tuple[Processor, ...]:
        return tuple(self._processors.values())

    @property
    def processor_names(self) -> Tuple[str, ...]:
        return tuple(self._processors)

    @property
    def arcs(self) -> Tuple[Arc, ...]:
        return tuple(self._arcs)

    def processor(self, name: str) -> Processor:
        try:
            return self._processors[name]
        except KeyError:
            raise WorkflowError(
                f"dataflow {self.name!r} has no processor {name!r}"
            ) from None

    def has_processor(self, name: str) -> bool:
        return name in self._processors

    def workflow_input_ref(self, port: str) -> PortRef:
        _find_port(self.inputs, port, self.name, "workflow input")
        return PortRef(self.name, port)

    def workflow_output_ref(self, port: str) -> PortRef:
        _find_port(self.outputs, port, self.name, "workflow output")
        return PortRef(self.name, port)

    def incoming_arc(self, sink: PortRef) -> Optional[Arc]:
        """The unique arc into ``sink``, or ``None`` for unconnected ports."""
        for arc in self._arcs:
            if arc.sink == sink:
                return arc
        return None

    def outgoing_arcs(self, source: PortRef) -> List[Arc]:
        return [arc for arc in self._arcs if arc.source == source]

    def arcs_into_processor(self, name: str) -> List[Arc]:
        return [arc for arc in self._arcs if arc.sink.node == name]

    def arcs_out_of_processor(self, name: str) -> List[Arc]:
        return [arc for arc in self._arcs if arc.source.node == name]

    def iter_port_refs(self) -> Iterator[PortRef]:
        """Every addressable port in the graph, workflow ports included."""
        for port in self.inputs:
            yield PortRef(self.name, port.name)
        for port in self.outputs:
            yield PortRef(self.name, port.name)
        for processor in self._processors.values():
            for port in processor.inputs:
                yield PortRef(processor.name, port.name)
            for port in processor.outputs:
                yield PortRef(processor.name, port.name)

    def declared_depth(self, ref: PortRef) -> int:
        """``dd`` of any addressable port."""
        if ref.node == self.name:
            for port in self.inputs + self.outputs:
                if port.name == ref.port:
                    return port.declared_depth
            raise WorkflowError(f"{self.name!r} has no workflow port {ref.port!r}")
        processor = self.processor(ref.node)
        for port in processor.inputs + processor.outputs:
            if port.name == ref.port:
                return port.declared_depth
        raise WorkflowError(f"{ref.node!r} has no port {ref.port!r}")

    # -- nested workflow support ------------------------------------------

    def flattened(self, separator: str = "/") -> "Dataflow":
        """A copy with every sub-workflow processor inlined.

        Internal processors of a subflow ``S`` hosted by processor ``P`` are
        renamed ``P<separator><internal name>``; arcs through the subflow
        boundary are re-routed directly.  Iteration over an entire subflow
        instance becomes pipelined iteration over its internal processors,
        which produces identical shapes under the cross-product combinator
        (map of a composition equals composition of maps).
        """
        if not any(p.is_subflow for p in self._processors.values()):
            return self
        flat = Dataflow(self.name, self.inputs, self.outputs)
        # Map from original boundary ports to their flattened replacements.
        source_alias: Dict[PortRef, PortRef] = {}
        sink_targets: Dict[PortRef, List[PortRef]] = {}
        passthrough: Dict[PortRef, PortRef] = {}
        for processor in self._processors.values():
            if not processor.is_subflow:
                flat.add_processor(
                    Processor(
                        processor.name,
                        processor.inputs,
                        processor.outputs,
                        operation=processor.operation,
                        iteration=processor.iteration,
                        config=processor.config,
                    )
                )
                continue
            subflow = processor.subflow.flattened(separator)
            assert subflow is not None
            prefix = processor.name + separator
            for inner in subflow.processors:
                flat.add_processor(
                    Processor(
                        prefix + inner.name,
                        inner.inputs,
                        inner.outputs,
                        operation=inner.operation,
                        iteration=inner.iteration,
                        config=inner.config,
                    )
                )
            # Re-route arcs internal to the subflow.
            for arc in subflow.arcs:
                src, snk = arc.source, arc.sink
                if src.node == subflow.name and snk.node == subflow.name:
                    # Input->output passthrough within the subflow: the
                    # host's output is fed by whatever feeds the host input.
                    passthrough[PortRef(processor.name, snk.port)] = PortRef(
                        processor.name, src.port
                    )
                    continue
                if src.node == subflow.name:
                    # Subflow input port feeds an internal processor: the
                    # host processor's input port becomes the sink's source.
                    sink_targets.setdefault(
                        PortRef(processor.name, src.port), []
                    ).append(PortRef(prefix + snk.node, snk.port))
                elif snk.node == subflow.name:
                    # Internal processor feeds a subflow output port: expose
                    # it as the host processor's output port alias.
                    source_alias[PortRef(processor.name, snk.port)] = PortRef(
                        prefix + src.node, src.port
                    )
                else:
                    flat.add_arc(
                        PortRef(prefix + src.node, src.port),
                        PortRef(prefix + snk.node, snk.port),
                    )
        subflow_hosts = {
            p.name for p in self._processors.values() if p.is_subflow
        }
        feeds = {arc.sink: arc.source for arc in self._arcs}

        def resolve_source(ref: PortRef) -> Optional[PortRef]:
            # Chase subflow-output aliases and passthroughs until a real
            # flat source (or a dead end) is reached.
            seen = set()
            while ref.node in subflow_hosts:
                if ref in seen:
                    return None  # passthrough cycle through dead ends
                seen.add(ref)
                if ref in source_alias:
                    return source_alias[ref]
                if ref in passthrough:
                    host_input = passthrough[ref]
                    outer = feeds.get(host_input)
                    if outer is None:
                        return None  # host input itself is unconnected
                    ref = outer
                    continue
                return None  # subflow output with no internal producer
            return ref

        for arc in self._arcs:
            source = resolve_source(arc.source)
            if source is None:
                continue
            if arc.sink.node in subflow_hosts:
                sinks = sink_targets.get(arc.sink, [])  # drop dead inputs
            else:
                sinks = [arc.sink]
            for sink in sinks:
                flat.add_arc(source, sink)
        return flat

    def __repr__(self) -> str:
        return (
            f"Dataflow({self.name!r}, processors={len(self._processors)}, "
            f"arcs={len(self._arcs)})"
        )
