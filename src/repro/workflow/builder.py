"""Fluent construction API for dataflows.

The raw :class:`~repro.workflow.model.Dataflow` API is deliberately minimal;
this builder removes the boilerplate of spelling out :class:`PortSpec` and
:class:`PortRef` objects when assembling workflows by hand (examples, tests)
or programmatically (the synthetic testbed generator).

Port references are written as ``"node:port"`` strings; types as the compact
text form accepted by :meth:`ValueType.decode` (``"string"``,
``"list(string)"``, ...).

>>> wf = (
...     DataflowBuilder("wf")
...     .input("genes", "list(string)")
...     .processor("upper", inputs=[("x", "string")], outputs=[("y", "string")],
...                operation="uppercase")
...     .output("result", "list(string)")
...     .arc("wf:genes", "upper:x")
...     .arc("upper:y", "wf:result")
...     .build()
... )
>>> [p.name for p in wf.processors]
['upper']
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence, Tuple, Union

from repro.values.types import ValueType
from repro.workflow.model import Dataflow, PortRef, PortSpec, Processor, WorkflowError

#: A port declaration: ``(name, type_text)`` or a ready-made PortSpec.
PortDecl = Union[Tuple[str, str], PortSpec]


def _as_spec(decl: PortDecl) -> PortSpec:
    if isinstance(decl, PortSpec):
        return decl
    name, type_text = decl
    return PortSpec(name, ValueType.decode(type_text))


def parse_ref(text: str) -> PortRef:
    """Parse a ``"node:port"`` reference string."""
    node, sep, port = text.partition(":")
    if not sep or not node or not port:
        raise WorkflowError(f"malformed port reference {text!r}; want 'node:port'")
    return PortRef(node, port)


class DataflowBuilder:
    """Incrementally assemble a :class:`Dataflow`; ``build()`` validates."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._inputs: list[PortSpec] = []
        self._outputs: list[PortSpec] = []
        self._processors: list[Processor] = []
        self._arcs: list[Tuple[str, str]] = []

    def input(self, name: str, type_text: str = "string") -> "DataflowBuilder":
        """Declare a workflow-level input port."""
        self._inputs.append(PortSpec(name, ValueType.decode(type_text)))
        return self

    def output(self, name: str, type_text: str = "string") -> "DataflowBuilder":
        """Declare a workflow-level output port."""
        self._outputs.append(PortSpec(name, ValueType.decode(type_text)))
        return self

    def processor(
        self,
        name: str,
        inputs: Sequence[PortDecl] = (),
        outputs: Sequence[PortDecl] = (),
        operation: Optional[str] = None,
        subflow: Optional[Dataflow] = None,
        iteration: str = "cross",
        config: Optional[Dict[str, Any]] = None,
    ) -> "DataflowBuilder":
        """Add a processor node.  Port order is significant (Prop. 1)."""
        self._processors.append(
            Processor(
                name,
                [_as_spec(d) for d in inputs],
                [_as_spec(d) for d in outputs],
                operation=operation,
                subflow=subflow,
                iteration=iteration,
                config=config,
            )
        )
        return self

    def arc(self, source: str, sink: str) -> "DataflowBuilder":
        """Connect ``"node:port" -> "node:port"``."""
        self._arcs.append((source, sink))
        return self

    def arcs(self, *pairs: Tuple[str, str]) -> "DataflowBuilder":
        """Connect several arcs at once."""
        self._arcs.extend(pairs)
        return self

    def chain(self, *ports: str) -> "DataflowBuilder":
        """Connect consecutive port references pairwise.

        ``chain(a, b, c)`` adds arcs ``a -> b`` and ``b -> c`` — handy for
        linear pipelines, but note that ``b`` is used both as a sink and as
        a source, so it only makes sense for single-port pass-through nodes.
        """
        for source, sink in zip(ports, ports[1:], strict=False):
            self._arcs.append((source, sink))
        return self

    def build(self) -> Dataflow:
        """Materialize and structurally check the dataflow."""
        flow = Dataflow(self._name, self._inputs, self._outputs)
        for processor in self._processors:
            flow.add_processor(processor)
        for source, sink in self._arcs:
            flow.add_arc(parse_ref(source), parse_ref(sink))
        return flow


def linear_chain(
    name: str,
    length: int,
    operation: str,
    port_type: str = "string",
    input_name: str = "in",
    output_name: str = "out",
    prefix: str = "step",
) -> Dataflow:
    """Build a workflow that is a single chain of ``length`` processors.

    Each processor has one input port ``x`` and one output port ``y`` of the
    given declared type and runs ``operation``.  Used by tests and by the
    protein-discovery workload, which is topologically "one long path".
    """
    if length < 1:
        raise WorkflowError("chain length must be >= 1")
    builder = DataflowBuilder(name).input(input_name, port_type)
    builder.output(output_name, port_type)
    previous = f"{name}:{input_name}"
    for i in range(length):
        node = f"{prefix}{i}"
        builder.processor(
            node,
            inputs=[("x", port_type)],
            outputs=[("y", port_type)],
            operation=operation,
        )
        builder.arc(previous, f"{node}:x")
        previous = f"{node}:y"
    builder.arc(previous, f"{name}:{output_name}")
    return builder.build()
