"""GraphViz ``dot`` rendering of workflow specifications.

Purely cosmetic, but invaluable when debugging generated testbed workflows
or presenting reproduction results; mirrors the style of the paper's Fig. 1
and Fig. 5 (processor boxes, labelled port-to-port arcs).
"""

from __future__ import annotations

from typing import Iterable, Optional, Set

from repro.workflow.model import Dataflow


def to_dot(
    flow: Dataflow,
    highlight: Optional[Iterable[str]] = None,
    include_ports: bool = True,
) -> str:
    """Render ``flow`` as GraphViz source.

    ``highlight`` marks a set of processor names (e.g. the focus set of a
    lineage query) with a distinct fill colour.
    """
    marked: Set[str] = set(highlight or ())
    lines = [f'digraph "{flow.name}" {{', "  rankdir=TB;", "  node [shape=box];"]
    for port in flow.inputs:
        lines.append(
            f'  "in:{port.name}" [label="{port.name}\\n{port.type.encode()}" '
            "shape=invhouse style=filled fillcolor=lightblue];"
        )
    for port in flow.outputs:
        lines.append(
            f'  "out:{port.name}" [label="{port.name}\\n{port.type.encode()}" '
            "shape=house style=filled fillcolor=lightblue];"
        )
    for processor in flow.processors:
        style = ' style=filled fillcolor=gold' if processor.name in marked else ""
        lines.append(f'  "{processor.name}" [label="{processor.name}"{style}];')
    for arc in flow.arcs:
        source = (
            f"in:{arc.source.port}" if arc.source.node == flow.name else arc.source.node
        )
        sink = f"out:{arc.sink.port}" if arc.sink.node == flow.name else arc.sink.node
        label = (
            f' [label="{arc.source.port} → {arc.sink.port}"]' if include_ports else ""
        )
        lines.append(f'  "{source}" -> "{sink}"{label};')
    lines.append("}")
    return "\n".join(lines)
