"""Reusable workflow construction patterns.

Real Taverna workflows are assembled from a handful of recurring shapes —
linear per-element pipelines, scatter/gather stages, parameter fan-outs.
These helpers build them on top of the
:class:`~repro.workflow.builder.DataflowBuilder` primitives, with the
depth bookkeeping already worked out, so examples and downstream users
don't re-derive the iteration arithmetic each time.

All helpers return a :class:`DataflowBuilder` (not a built flow) so they
compose: start a builder, apply patterns, keep adding bespoke nodes, then
``build()``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.workflow.builder import DataflowBuilder
from repro.workflow.model import WorkflowError


def pipeline(
    builder: DataflowBuilder,
    source: str,
    stages: Sequence[Tuple[str, str, Optional[Dict]]],
    port_type: str = "string",
) -> str:
    """Append a linear chain of one-to-one stages; return the final port.

    ``stages`` is a sequence of ``(node_name, operation, config)``; each
    stage declares one ``x`` input and one ``y`` output of ``port_type``.
    Feeding the chain a list makes every stage iterate per element — the
    standard per-record pipeline.

    >>> b = DataflowBuilder("wf").input("items", "list(string)")
    >>> end = pipeline(b, "wf:items", [("clean", "tag", {"suffix": "!"})])
    >>> end
    'clean:y'
    """
    previous = source
    for entry in stages:
        name, operation, config = entry
        builder.processor(
            name,
            inputs=[("x", port_type)],
            outputs=[("y", port_type)],
            operation=operation,
            config=config,
        )
        builder.arc(previous, f"{name}:x")
        previous = f"{name}:y"
    return previous


def scatter_gather(
    builder: DataflowBuilder,
    source: str,
    worker: Tuple[str, str, Optional[Dict]],
    gather: Tuple[str, str, Optional[Dict]],
    element_type: str = "string",
) -> str:
    """Per-element worker followed by a whole-list gather; return the
    gathered output port.

    The worker declares an atomic input (depth mismatch 1 against a list
    source → implicit scatter); the gatherer declares ``list(...)`` and
    consumes the reassembled results whole — the provenance granularity
    boundary is exactly where the paper's model says it must be.
    """
    worker_name, worker_op, worker_config = worker
    gather_name, gather_op, gather_config = gather
    builder.processor(
        worker_name,
        inputs=[("x", element_type)],
        outputs=[("y", element_type)],
        operation=worker_op,
        config=worker_config,
    )
    builder.arc(source, f"{worker_name}:x")
    builder.processor(
        gather_name,
        inputs=[("x", f"list({element_type})")],
        outputs=[("y", element_type)],
        operation=gather_op,
        config=gather_config,
    )
    builder.arc(f"{worker_name}:y", f"{gather_name}:x")
    return f"{gather_name}:y"


def fan_out(
    builder: DataflowBuilder,
    source: str,
    branches: Sequence[Tuple[str, str, Optional[Dict]]],
    port_type: str = "string",
) -> List[str]:
    """Feed one source into several independent one-to-one branches.

    Returns the branch output ports in order.  Each branch sees the same
    value; downstream joins (e.g. a cross-product processor) combine them.
    """
    if not branches:
        raise WorkflowError("fan_out needs at least one branch")
    outputs = []
    for name, operation, config in branches:
        builder.processor(
            name,
            inputs=[("x", port_type)],
            outputs=[("y", port_type)],
            operation=operation,
            config=config,
        )
        builder.arc(source, f"{name}:x")
        outputs.append(f"{name}:y")
    return outputs


def join_cross(
    builder: DataflowBuilder,
    name: str,
    sources: Sequence[str],
    operation: str = "concat_all",
    config: Optional[Dict] = None,
    port_type: str = "string",
) -> str:
    """Join n branch outputs with an n-ary cross product; return its port.

    Input ports are named ``b1..bn`` in source order, so the instance
    index of the join concatenates one position per branch (Prop. 1).
    """
    if len(sources) < 2:
        raise WorkflowError("join_cross needs at least two sources")
    ports = [(f"b{i + 1}", port_type) for i in range(len(sources))]
    builder.processor(
        name,
        inputs=ports,
        outputs=[("y", port_type)],
        operation=operation,
        config=config,
    )
    for (port, _), source in zip(ports, sources, strict=False):
        builder.arc(source, f"{name}:{port}")
    return f"{name}:y"
