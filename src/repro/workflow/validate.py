"""Structural validation of dataflow specifications.

``Dataflow.add_arc`` already rejects locally malformed arcs; this module
adds whole-graph checks that need a global view:

* acyclicity (the dataflow model is a DAG);
* type compatibility along arcs — base types must match, and depth
  differences are legal only where the iteration/wrapping model repairs
  them (any difference is technically executable, but a *negative* source
  depth below zero is impossible, so only base-type conflicts are errors;
  depth mismatches are reported as warnings for the designer);
* reachability — processors whose outputs can never influence a workflow
  output are flagged (dead code in the workflow);
* unbound mandatory inputs — inputs with no incoming arc are allowed by the
  model (they take defaults, Section 2.1 footnote 5) but are reported so
  designers can confirm the default is intended.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.workflow.model import Dataflow, PortRef, WorkflowError
from repro.workflow.visit import topological_sort


@dataclass(frozen=True)
class ValidationIssue:
    """One finding: ``severity`` is ``"error"`` or ``"warning"``."""

    severity: str
    code: str
    message: str

    @property
    def is_error(self) -> bool:
        return self.severity == "error"


def validate(flow: Dataflow) -> List[ValidationIssue]:
    """Run every check; return all findings (possibly empty)."""
    issues: List[ValidationIssue] = []
    issues.extend(_check_acyclic(flow))
    if not any(issue.is_error for issue in issues):
        issues.extend(_check_types(flow))
        issues.extend(_check_reachability(flow))
        issues.extend(_check_unbound_inputs(flow))
    return issues


def check_valid(flow: Dataflow) -> None:
    """Raise :class:`WorkflowError` when any error-level issue is present."""
    errors = [issue for issue in validate(flow) if issue.is_error]
    if errors:
        details = "; ".join(issue.message for issue in errors)
        raise WorkflowError(f"dataflow {flow.name!r} is invalid: {details}")


def _check_acyclic(flow: Dataflow) -> List[ValidationIssue]:
    try:
        topological_sort(flow)
    except WorkflowError as exc:
        return [ValidationIssue("error", "cycle", str(exc))]
    return []


def _check_types(flow: Dataflow) -> List[ValidationIssue]:
    issues: List[ValidationIssue] = []
    for arc in flow.arcs:
        source_type = _port_type(flow, arc.source)
        sink_type = _port_type(flow, arc.sink)
        if source_type.base() != sink_type.base():
            issues.append(
                ValidationIssue(
                    "error",
                    "base-type-conflict",
                    f"arc {arc}: base type {source_type.base().name!r} does not "
                    f"match {sink_type.base().name!r}",
                )
            )
    return issues


def _port_type(flow: Dataflow, ref: PortRef):
    if ref.node == flow.name:
        for port in flow.inputs + flow.outputs:
            if port.name == ref.port:
                return port.type
        raise WorkflowError(f"unknown workflow port {ref}")
    processor = flow.processor(ref.node)
    for port in processor.inputs + processor.outputs:
        if port.name == ref.port:
            return port.type
    raise WorkflowError(f"unknown port {ref}")


def _check_reachability(flow: Dataflow) -> List[ValidationIssue]:
    # Walk upstream from every workflow output; processors never touched
    # cannot contribute to any result.
    reaching: Set[str] = set()
    frontier: List[PortRef] = [
        PortRef(flow.name, p.name) for p in flow.outputs
    ]
    visited: Set[PortRef] = set()
    while frontier:
        ref = frontier.pop()
        if ref in visited:
            continue
        visited.add(ref)
        if ref.node != flow.name:
            reaching.add(ref.node)
            processor = flow.processor(ref.node)
            if processor.has_output(ref.port):
                frontier.extend(
                    PortRef(processor.name, p.name) for p in processor.inputs
                )
                continue
        arc = flow.incoming_arc(ref)
        if arc is not None:
            frontier.append(arc.source)
    issues = []
    for processor in flow.processors:
        if processor.name not in reaching:
            issues.append(
                ValidationIssue(
                    "warning",
                    "unreachable",
                    f"processor {processor.name!r} cannot influence any "
                    "workflow output",
                )
            )
    return issues


def _check_unbound_inputs(flow: Dataflow) -> List[ValidationIssue]:
    issues = []
    for processor in flow.processors:
        for port in processor.inputs:
            ref = PortRef(processor.name, port.name)
            if flow.incoming_arc(ref) is None:
                issues.append(
                    ValidationIssue(
                        "warning",
                        "unbound-input",
                        f"input {ref} has no incoming arc and will use its "
                        "default value",
                    )
                )
    return issues
