"""Structural validation of dataflow specifications.

``Dataflow.add_arc`` already rejects locally malformed arcs; this module
adds whole-graph checks that need a global view:

* acyclicity (the dataflow model is a DAG);
* type compatibility along arcs — base types must match, and depth
  differences are legal only where the iteration/wrapping model repairs
  them (any difference is technically executable, but a *negative*
  mismatch means values shallower than declared reach the port and are
  repaired by singleton wrapping, so only base-type conflicts are errors;
  negative depth mismatches are reported as warnings for the designer);
* iteration-strategy consistency — a ``dot`` combinator whose ports
  disagree on their positive mismatch can never execute (Def. 3);
* reachability — processors whose outputs can never influence a workflow
  output are flagged (dead code in the workflow);
* unbound mandatory inputs — inputs with no incoming arc are allowed by the
  model (they take defaults, Section 2.1 footnote 5) but are reported so
  designers can confirm the default is intended.

The checks themselves are rules of the :mod:`repro.analysis.lint` engine;
this module is the stable legacy façade over the subset above, keeping the
historical issue codes (``cycle``, ``base-type-conflict``, ``unreachable``,
``unbound-input``, ``depth-mismatch``, ``dot-mismatch-conflict``).  Because
the lint engine is *total*, a cycle no longer short-circuits the remaining
checks: every cycle-independent finding is reported alongside it.  The
full rule catalogue (fan-out estimates, shadowed arcs, unused outputs,
severity configuration, SARIF export) is available through
:func:`repro.analysis.lint.run_lint` and ``repro-prov lint``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.workflow.model import Dataflow, WorkflowError


@dataclass(frozen=True)
class ValidationIssue:
    """One finding: ``severity`` is ``"error"`` or ``"warning"``."""

    severity: str
    code: str
    message: str

    @property
    def is_error(self) -> bool:
        return self.severity == "error"


def validate(flow: Dataflow) -> List[ValidationIssue]:
    """Run every check; return all findings (possibly empty)."""
    from repro.analysis.lint import LEGACY_CODES, run_lint

    issues: List[ValidationIssue] = []
    for finding in run_lint(flow, only=LEGACY_CODES.keys()):
        issues.append(
            ValidationIssue(
                finding.severity, LEGACY_CODES[finding.code], finding.message
            )
        )
    return issues


def check_valid(flow: Dataflow) -> None:
    """Raise :class:`WorkflowError` when any error-level issue is present."""
    errors = [issue for issue in validate(flow) if issue.is_error]
    if errors:
        details = "; ".join(issue.message for issue in errors)
        raise WorkflowError(f"dataflow {flow.name!r} is invalid: {details}")
