"""Dataflow (workflow) specification model.

A dataflow is a directed graph of *processors* with ordered, typed input and
output ports, connected by *arcs* (Section 2.1).  The workflow itself also
exposes input and output ports; bindings on those appear in traces under the
workflow's own name (e.g. ``<workflow:paths_per_gene[1], z>`` in Fig. 2).

The static structure built here is consumed by three clients:

* the execution engine (:mod:`repro.engine`), which fires processors
  data-driven and applies the implicit iteration semantics;
* the static depth analysis (:mod:`repro.workflow.depths`, Alg. 1), which
  annotates every port with its propagated depth and mismatch; and
* the INDEXPROJ query engine (:mod:`repro.query.indexproj`), which traverses
  this graph *instead of* the provenance graph.

Nested dataflows (a processor whose behaviour is itself a dataflow) are
supported through :meth:`Dataflow.flattened`, which inlines sub-workflows
with qualified processor names before analysis and execution.
"""

from repro.workflow.builder import DataflowBuilder
from repro.workflow.depths import DepthAnalysis, propagate_depths
from repro.workflow.model import (
    Arc,
    Dataflow,
    PortRef,
    PortSpec,
    Processor,
    WorkflowError,
)
from repro.workflow.patterns import fan_out, join_cross, pipeline, scatter_gather
from repro.workflow.validate import ValidationIssue, validate
from repro.workflow.visit import topological_sort, upstream_ports

__all__ = [
    "Arc",
    "Dataflow",
    "DataflowBuilder",
    "DepthAnalysis",
    "PortRef",
    "PortSpec",
    "Processor",
    "ValidationIssue",
    "WorkflowError",
    "fan_out",
    "join_cross",
    "pipeline",
    "propagate_depths",
    "scatter_gather",
    "topological_sort",
    "upstream_ports",
    "validate",
]
