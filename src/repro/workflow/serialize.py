"""JSON (de)serialization of dataflow specifications.

Workflows are plain declarative structures, so a stable JSON form makes them
portable between the CLI, stored experiment configurations, and tests.  The
format is versioned; nested subflows serialize recursively.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.values.types import ValueType
from repro.workflow.model import Dataflow, PortRef, PortSpec, Processor, WorkflowError

FORMAT_VERSION = 1


def dataflow_to_dict(flow: Dataflow) -> Dict[str, Any]:
    """Encode a dataflow as JSON-ready plain data."""
    return {
        "format": FORMAT_VERSION,
        "name": flow.name,
        "inputs": [_port_to_dict(p) for p in flow.inputs],
        "outputs": [_port_to_dict(p) for p in flow.outputs],
        "processors": [_processor_to_dict(p) for p in flow.processors],
        "arcs": [
            {"source": str(arc.source), "sink": str(arc.sink)}
            for arc in flow.arcs
        ],
    }


def dataflow_from_dict(data: Dict[str, Any]) -> Dataflow:
    """Decode a dataflow from the :func:`dataflow_to_dict` form."""
    version = data.get("format")
    if version != FORMAT_VERSION:
        raise WorkflowError(f"unsupported workflow format version {version!r}")
    flow = Dataflow(
        data["name"],
        [_port_from_dict(p) for p in data.get("inputs", [])],
        [_port_from_dict(p) for p in data.get("outputs", [])],
    )
    for entry in data.get("processors", []):
        flow.add_processor(_processor_from_dict(entry))
    for entry in data.get("arcs", []):
        flow.add_arc(_parse_ref(entry["source"]), _parse_ref(entry["sink"]))
    return flow


def dumps(flow: Dataflow, indent: int = 2) -> str:
    """Serialize to a JSON string."""
    return json.dumps(dataflow_to_dict(flow), indent=indent, sort_keys=True)


def loads(text: str) -> Dataflow:
    """Deserialize from a JSON string."""
    return dataflow_from_dict(json.loads(text))


def save(flow: Dataflow, path: str) -> None:
    """Write a workflow definition file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(dumps(flow))


def load(path: str) -> Dataflow:
    """Read a workflow definition file."""
    with open(path, "r", encoding="utf-8") as handle:
        return loads(handle.read())


def _port_to_dict(port: PortSpec) -> Dict[str, Any]:
    return {"name": port.name, "type": port.type.encode()}


def _port_from_dict(data: Dict[str, Any]) -> PortSpec:
    return PortSpec(data["name"], ValueType.decode(data["type"]))


def _processor_to_dict(processor: Processor) -> Dict[str, Any]:
    entry: Dict[str, Any] = {
        "name": processor.name,
        "inputs": [_port_to_dict(p) for p in processor.inputs],
        "outputs": [_port_to_dict(p) for p in processor.outputs],
        "iteration": processor.iteration,
    }
    if processor.operation is not None:
        entry["operation"] = processor.operation
    if processor.config:
        entry["config"] = processor.config
    if processor.subflow is not None:
        entry["subflow"] = dataflow_to_dict(processor.subflow)
    return entry


def _processor_from_dict(data: Dict[str, Any]) -> Processor:
    subflow = None
    if "subflow" in data:
        subflow = dataflow_from_dict(data["subflow"])
    return Processor(
        data["name"],
        [_port_from_dict(p) for p in data.get("inputs", [])],
        [_port_from_dict(p) for p in data.get("outputs", [])],
        operation=data.get("operation"),
        subflow=subflow,
        iteration=data.get("iteration", "cross"),
        config=data.get("config"),
    )


def _parse_ref(text: str) -> PortRef:
    node, sep, port = text.partition(":")
    if not sep:
        raise WorkflowError(f"malformed port reference {text!r}")
    return PortRef(node, port)
