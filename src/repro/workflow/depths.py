"""Static depth propagation over the workflow graph (Alg. 1, Section 3.1).

Every port ``X`` has a *declared* depth ``dd(X)`` (from its declared type)
and an *actual* depth ``depth(X)`` of the values that reach it at run time.
Under the paper's two assumptions —

1. every processor assigns values of the declared type to its outputs, and
2. top-level workflow inputs are bound to values of the declared type —

the mismatch ``delta_s(X) = depth(X) - dd(X)`` is independent of the values
and can be computed once per workflow, on the static graph, by propagating
depths in topological order:

* ``depth(P:X) = dd(P:X)`` when ``P:X`` has no incoming arc, else the depth
  of the arc's source port;
* ``depth(P:Y) = dd(P:Y) + sum_i max(delta_s(X_i), 0)`` over ``P``'s inputs
  (only *positive* mismatches iterate; negative ones are repaired by
  singleton wrapping and contribute no index positions).

For processors using the *dot* (zip) combinator (footnote 7), all iterated
inputs advance in lockstep and share one index fragment, so the output gains
only ``max_i delta_s(X_i)`` levels and all iterated ports must agree on the
mismatch.

The resulting :class:`DepthAnalysis` is the entire static knowledge that the
INDEXPROJ query engine needs: per-port depths, per-port mismatches, and the
per-processor layout of output-index fragments (Prop. 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.strategy import StrategyError, fragment_offsets, node_level, parse_strategy
from repro.workflow.model import Dataflow, PortRef, Processor, WorkflowError
from repro.workflow.visit import topological_sort


@dataclass(frozen=True)
class FragmentLayout:
    """Where one input port's index fragment sits inside an output index.

    Prop. 1: an output index ``q`` is the concatenation ``p_1 ... p_n`` of
    per-input fragments with ``|p_i| = delta_s(X_i)``.  ``offset`` is the
    position of this port's fragment inside ``q`` (the corrected form of
    Def. 4 — see DESIGN.md, "Known erratum handled"); ``length`` is
    ``max(delta_s, 0)``.  Dot-combinator ports all carry ``offset == 0`` and
    the shared iteration length.
    """

    port: str
    offset: int
    length: int


class DepthAnalysis:
    """Static depth/mismatch annotation of one dataflow.

    Computed once per workflow definition (the paper: "the algorithm is
    executed only once for every new workflow definition graph").
    """

    def __init__(
        self,
        flow: Dataflow,
        depths: Dict[PortRef, int],
        mismatches: Dict[PortRef, int],
        levels: Dict[str, int],
        layouts: Dict[str, Tuple[FragmentLayout, ...]],
    ) -> None:
        self.flow = flow
        self._depths = depths
        self._mismatches = mismatches
        self._levels = levels
        self._layouts = layouts

    def depth_of(self, ref: PortRef) -> int:
        """Propagated actual depth ``depth(P:X)`` of any addressable port."""
        try:
            return self._depths[ref]
        except KeyError:
            raise WorkflowError(f"no propagated depth for port {ref}") from None

    def mismatch(self, ref: PortRef) -> int:
        """``delta_s(X)`` for a processor input port (may be negative)."""
        try:
            return self._mismatches[ref]
        except KeyError:
            raise WorkflowError(f"no mismatch recorded for input port {ref}") from None

    def iteration_level(self, processor: str) -> int:
        """Total iteration level ``l`` for one processor (Def. 3)."""
        try:
            return self._levels[processor]
        except KeyError:
            raise WorkflowError(f"unknown processor {processor!r}") from None

    def fragment_layout(self, processor: str) -> Tuple[FragmentLayout, ...]:
        """Per-input index-fragment layout for one processor, in port order."""
        try:
            return self._layouts[processor]
        except KeyError:
            raise WorkflowError(f"unknown processor {processor!r}") from None

    def as_table(self) -> List[Tuple[str, int, int]]:
        """``(port, dd, depth)`` rows for debugging and documentation."""
        rows = []
        for ref in self.flow.iter_port_refs():
            rows.append((str(ref), self.flow.declared_depth(ref), self._depths[ref]))
        return rows


def propagate_depths(flow: Dataflow) -> DepthAnalysis:
    """Run Alg. 1 over ``flow`` and return the static annotation.

    The workflow must be acyclic; nested dataflows must be flattened first
    (:meth:`Dataflow.flattened`) — a subflow processor has no registered
    iteration behaviour of its own.
    """
    if any(p.is_subflow for p in flow.processors):
        raise WorkflowError(
            f"dataflow {flow.name!r} contains nested subflows; "
            "call flattened() before depth propagation"
        )
    depths: Dict[PortRef, int] = {}
    mismatches: Dict[PortRef, int] = {}
    levels: Dict[str, int] = {}
    layouts: Dict[str, Tuple[FragmentLayout, ...]] = {}

    # Assumption 2: workflow inputs carry exactly their declared depth.
    for port in flow.inputs:
        ref = PortRef(flow.name, port.name)
        depths[ref] = port.declared_depth

    for processor in topological_sort(flow):
        _propagate_processor(flow, processor, depths, mismatches, levels, layouts)

    # Workflow outputs inherit the depth of whatever feeds them.
    for port in flow.outputs:
        ref = PortRef(flow.name, port.name)
        arc = flow.incoming_arc(ref)
        depths[ref] = depths[arc.source] if arc else port.declared_depth

    return DepthAnalysis(flow, depths, mismatches, levels, layouts)


def _propagate_processor(
    flow: Dataflow,
    processor: Processor,
    depths: Dict[PortRef, int],
    mismatches: Dict[PortRef, int],
    levels: Dict[str, int],
    layouts: Dict[str, Tuple[FragmentLayout, ...]],
) -> None:
    deltas: Dict[str, int] = {}
    for port in processor.inputs:
        ref = PortRef(processor.name, port.name)
        arc = flow.incoming_arc(ref)
        if arc is None:
            # Unconnected input: bound to a default value of declared type.
            depths[ref] = port.declared_depth
        else:
            depths[ref] = depths[arc.source]
        delta = depths[ref] - port.declared_depth
        mismatches[ref] = delta
        deltas[port.name] = max(delta, 0)
    # The iteration strategy tree (flat cross/dot sugar or a combinator
    # expression) determines both the total level and where each port's
    # index fragment sits inside the instance index q.
    try:
        node = parse_strategy(
            processor.iteration, [p.name for p in processor.inputs]
        )
        level = node_level(node, deltas)
        offsets = fragment_offsets(node, deltas)
    except StrategyError as exc:
        raise WorkflowError(f"processor {processor.name!r}: {exc}") from exc
    fragments = [
        FragmentLayout(port.name, *offsets[port.name])
        for port in processor.inputs
    ]
    levels[processor.name] = level
    layouts[processor.name] = tuple(fragments)
    for port in processor.outputs:
        ref = PortRef(processor.name, port.name)
        # Assumption 1 plus the wrapping performed by the iteration
        # structure: outputs sit `level` lists above their declared depth.
        depths[ref] = port.declared_depth + level
