"""Graph traversal utilities over dataflow specifications.

Alg. 1 requires processors sorted by data dependency before depths can be
propagated; lineage traversal needs upstream navigation from ports.  Both
live here so the model module stays free of algorithms.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List, Set, Tuple

from repro.workflow.model import Dataflow, PortRef, Processor, WorkflowError


def processor_dependencies(flow: Dataflow) -> Dict[str, Set[str]]:
    """Map each processor to the set of processors it depends on.

    Workflow-level input ports are not processors and are excluded; an arc
    from a workflow input contributes no dependency edge.
    """
    deps: Dict[str, Set[str]] = {p.name: set() for p in flow.processors}
    for arc in flow.arcs:
        if arc.sink.node in deps and arc.source.node in deps:
            deps[arc.sink.node].add(arc.source.node)
    return deps


def topological_sort(flow: Dataflow) -> List[Processor]:
    """Processors in dependency order (Kahn's algorithm, stable).

    Ties are broken by insertion order so results are deterministic, which
    keeps trace event ordering and test output reproducible.  Raises
    :class:`WorkflowError` on cyclic dataflows — the model is acyclic by
    definition (Section 2.4 calls the provenance graph a DAG).
    """
    deps = processor_dependencies(flow)
    remaining_in = {name: len(d) for name, d in deps.items()}
    dependents: Dict[str, List[str]] = {name: [] for name in deps}
    for name, d in deps.items():
        for upstream in d:
            dependents[upstream].append(name)
    ready = deque(name for name in flow.processor_names if remaining_in[name] == 0)
    ordered: List[Processor] = []
    while ready:
        name = ready.popleft()
        ordered.append(flow.processor(name))
        for downstream in dependents[name]:
            remaining_in[downstream] -= 1
            if remaining_in[downstream] == 0:
                ready.append(downstream)
    if len(ordered) != len(flow.processors):
        cyclic = sorted(n for n, k in remaining_in.items() if k > 0)
        raise WorkflowError(f"dataflow {flow.name!r} has a cycle through {cyclic}")
    return ordered


def upstream_ports(flow: Dataflow, ref: PortRef) -> List[PortRef]:
    """Ports one step upstream of ``ref`` in the specification graph.

    * For a processor *output* port (or a workflow output port): the
      processor's input ports (resp. the port feeding the workflow output).
    * For a processor *input* port: the source of its incoming arc, if any.
    """
    if ref.node == flow.name:
        # Workflow output port: follow its incoming arc.
        arc = flow.incoming_arc(ref)
        return [arc.source] if arc else []
    processor = flow.processor(ref.node)
    if processor.has_output(ref.port):
        return [PortRef(processor.name, p.name) for p in processor.inputs]
    arc = flow.incoming_arc(ref)
    return [arc.source] if arc else []


def reachable_upstream(flow: Dataflow, start: PortRef) -> Set[PortRef]:
    """All ports reachable by repeated upstream steps from ``start``."""
    seen: Set[PortRef] = set()
    frontier = [start]
    while frontier:
        ref = frontier.pop()
        if ref in seen:
            continue
        seen.add(ref)
        frontier.extend(upstream_ports(flow, ref))
    return seen


def paths_between(
    flow: Dataflow, source_node: str, sink_node: str
) -> List[List[str]]:
    """All processor-level simple paths from ``source_node`` to ``sink_node``.

    Used by the benchmark harness to confirm the synthetic testbed's two
    chains have the intended length.
    """
    adjacency: Dict[str, Set[str]] = {p.name: set() for p in flow.processors}
    for arc in flow.arcs:
        if arc.source.node in adjacency and arc.sink.node in adjacency:
            adjacency[arc.source.node].add(arc.sink.node)
    results: List[List[str]] = []

    def walk(node: str, path: List[str]) -> None:
        if node == sink_node:
            results.append(path + [node])
            return
        for nxt in sorted(adjacency.get(node, ())):
            if nxt not in path:
                walk(nxt, path + [node])

    walk(source_node, [])
    return results


def arc_count_into(flow: Dataflow, node: str) -> int:
    """Number of arcs whose sink belongs to ``node``."""
    return len(flow.arcs_into_processor(node))


def graph_size(flow: Dataflow) -> Tuple[int, int]:
    """``(nodes, arcs)`` — the figure the paper reports on the x-axis of Fig. 8."""
    return len(flow.processors), len(flow.arcs)
