"""StorageBackend — the protocol every trace storage engine satisfies.

The paper remarks that its relational provenance store is
backend-substitutable (the implementation "currently uses MySQL" but
nothing depends on it); this module makes that substitutability explicit
for the reproduction.  :class:`StorageBackend` enumerates the complete
read/write surface the rest of the system is written against — the query
strategies (:mod:`repro.query`), the cache stack (:mod:`repro.cache`),
the service façade (:mod:`repro.service`) and the HTTP server all
consume *only* these members, so any object satisfying the protocol can
be dropped in via ``ProvenanceService(store=...)``.

Two implementations ship:

* :class:`~repro.provenance.store.TraceStore` — the single-file SQLite
  reference backend (re-exported here as :data:`SqliteStore`).
* :class:`~repro.storage.sharded.ShardedStore` — runs hash-partitioned
  across N SQLite shard files, answering multi-run queries by
  scatter-gather over a parallel reader pool (docs/STORAGE.md).

The surface splits into five groups:

==================  ====================================================
group               members
==================  ====================================================
lifecycle           ``close``, ``__enter__``/``__exit__``, ``path``,
                    ``obs``, ``intern_values``
ingest/metadata     ``insert_trace``, ``delete_run``, ``has_run``,
                    ``load_trace``, ``run_ids``, ``record_count``,
                    ``statistics``
coherence tokens    ``generation``, ``global_generation``,
                    ``membership_generation``, ``generation_vector``,
                    ``add_invalidation_listener``,
                    ``bump_run_generation``, ``bump_global_generation``
lookup primitives   ``find_xform_by_output(_many)``,
                    ``xform_inputs(_many)``,
                    ``find_xform_inputs_matching(_many)``,
                    ``find_xform_inputs_matching_multi``,
                    ``find_xform_inputs_matching_compiled``,
                    ``find_xfer_into(_many)``, ``find_xform_by_input``,
                    ``xform_outputs``, ``find_xfer_from``,
                    ``find_xform_outputs_matching_pattern``,
                    ``has_binding``
maintenance seams   ``drop_indexes``, ``create_indexes``,
                    ``has_indexes``, ``set_statement_audit``,
                    ``statement_cache_stats``
==================  ====================================================

Not part of the protocol: the private SQL seams (``_conn``, ``_read``,
``_read_guard``) that :mod:`repro.provenance.maintenance`,
:mod:`repro.provenance.streaming` and :mod:`repro.analysis.planlint`
use.  Those callers operate on one SQLite database by design — against a
sharded backend they are applied per shard (``store.shards[i]``).
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
    runtime_checkable,
)

from repro.engine.events import Binding
from repro.provenance.store import (
    BatchKey,
    BatchKeyId,
    CompiledPair,
    StoreStats,
    TraceStore,
    XformMatch,
)
from repro.provenance.trace import Trace
from repro.values.index import Index

#: The single-file SQLite reference backend, under its protocol-era name.
SqliteStore = TraceStore


@runtime_checkable
class StorageBackend(Protocol):
    """Everything the query/cache/service layers ask of a trace store."""

    path: str
    obs: Any
    intern_values: bool

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None: ...

    def __enter__(self) -> "StorageBackend": ...

    def __exit__(self, *exc_info: Any) -> None: ...

    # -- ingest and metadata ----------------------------------------------

    def insert_trace(self, trace: Trace) -> None: ...

    def delete_run(self, run_id: str) -> None: ...

    def has_run(self, run_id: str) -> bool: ...

    def load_trace(self, run_id: str) -> Trace: ...

    def run_ids(self, workflow: Optional[str] = None) -> List[str]: ...

    def record_count(self, run_id: Optional[str] = None) -> int: ...

    def statistics(self) -> Dict[str, Any]: ...

    # -- write-generation coherence tokens (repro.cache) ------------------

    def generation(self, run_id: str) -> int: ...

    @property
    def global_generation(self) -> int: ...

    @property
    def membership_generation(self) -> int: ...

    def generation_vector(
        self, run_ids: Sequence[str]
    ) -> Tuple[int, Tuple[int, ...]]: ...

    def add_invalidation_listener(
        self, listener: Callable[[Optional[str]], None]
    ) -> None: ...

    def bump_run_generation(
        self, run_id: str, membership: bool = False
    ) -> None: ...

    def bump_global_generation(self) -> None: ...

    # -- lookup primitives (backward traversal) ---------------------------

    def find_xform_by_output(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[XformMatch]: ...

    def xform_inputs(
        self,
        event_ids: Sequence[int],
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]: ...

    def find_xform_inputs_matching(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]: ...

    def find_xform_inputs_matching_multi(
        self,
        run_ids: Sequence[str],
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> Dict[str, List[Binding]]: ...

    def find_xfer_into(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Tuple[Binding, Index]]: ...

    # -- lookup primitives (forward / impact traversal) -------------------

    def find_xform_by_input(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[XformMatch]: ...

    def xform_outputs(
        self,
        event_ids: Sequence[int],
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]: ...

    def find_xfer_from(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Tuple[Binding, Index]]: ...

    def find_xform_outputs_matching_pattern(
        self,
        run_id: str,
        node: str,
        port: str,
        pattern: Any,
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]: ...

    # -- set-based (batched) lookup primitives ----------------------------

    def find_xform_inputs_matching_many(
        self,
        keys: Sequence[BatchKey],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[BatchKeyId, List[Binding]]: ...

    def find_xform_inputs_matching_compiled(
        self,
        pairs: Sequence[CompiledPair],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[BatchKeyId, List[Binding]]: ...

    def find_xform_by_output_many(
        self,
        keys: Sequence[BatchKey],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[BatchKeyId, List[XformMatch]]: ...

    def xform_inputs_many(
        self,
        groups: Sequence[Tuple[str, Sequence[int]]],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[Tuple[str, Tuple[int, ...]], List[Binding]]: ...

    def find_xfer_into_many(
        self,
        keys: Sequence[BatchKey],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[BatchKeyId, List[Tuple[Binding, Index]]]: ...

    def has_binding(self, run_id: str, node: str, port: str) -> bool: ...

    # -- index management and audit seams ---------------------------------

    def drop_indexes(self) -> None: ...

    def create_indexes(self) -> None: ...

    def has_indexes(self) -> bool: ...

    def set_statement_audit(
        self, callback: Optional[Callable[[str], Any]]
    ) -> None: ...

    def statement_cache_stats(self) -> Dict[str, int]: ...
