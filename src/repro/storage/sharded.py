"""ShardedStore — runs hash-partitioned across N SQLite shard files.

The scale-out storage backend (docs/STORAGE.md): every run lives wholly
in one shard (a plain :class:`~repro.provenance.store.TraceStore` file),
placed by a stable hash of its ``run_id``.  Single-run primitives route
to the owning shard; multi-run and set-based (``*_many``) primitives
**scatter-gather** — the key grid is partitioned per shard, each
partition resolved with the shard's own batched VALUES-join statements,
fanned out over a bounded reader pool, and the keyed results merged.
Because every partial answer is keyed (by run id or batch key), the
merge is order-free and the combined answer is byte-identical to the
single-file backend's — the property suite
``tests/properties/test_prop_shard.py`` proves exactly that.

Layout on disk::

    <path>/                     (the store "path" is a directory)
      manifest.json             shard count, run -> shard map, run order
      shard-000.db ... shard-(N-1).db

The manifest is tiny and advisory: shard placement is re-derivable from
the hash, and on open the manifest is *reconciled* against the shards'
actual run inventories (the ``shard_run_inventory`` SQL primitive), so a
crash between a shard commit and the manifest rewrite self-heals.  Its
real job is recording global ingest order — ``run_ids()`` must report
runs in the order they were inserted across all shards, exactly like the
single-file store's ``ORDER BY rowid``.

Event ids are shard-local SQLite rowids, so the sharded store re-encodes
them before they leave: ``global = local * num_shards + shard_index``.
The id space stays disjoint across shards and ``divmod`` recovers the
owning shard when ``xform_inputs``/``xform_outputs`` (which carry no run
scope) come back with a frontier of event ids.

Write generations compose per shard: the sharded store's global and
membership generations are the *sums* of its shards', per-run
generations delegate to the owning shard, and invalidation listeners are
relayed from every shard — so the PR-4 cache machinery
(:mod:`repro.cache`) works unchanged on top of either backend.

Failure semantics: each shard store retries transient ``SQLITE_BUSY``
under its own bounded :class:`~repro.provenance.store.RetryPolicy`;
once a shard's budget is exhausted (or the shard is closed/missing) the
whole query fails with a :class:`ShardError` naming the shard — never a
partial answer.  The gather loop awaits every outstanding per-shard
future before raising, so no reader-pool slot leaks.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import zlib
from concurrent.futures import ThreadPoolExecutor
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.engine.events import Binding
from repro.obs.core import NO_OBS, Observability
from repro.provenance.faults import FaultInjector
from repro.provenance.store import (
    BatchKey,
    BatchKeyId,
    BindShape,
    CompiledPair,
    RetryPolicy,
    StoreBusyError,
    StoreStats,
    TraceStore,
    XformMatch,
    register_sql_primitive,
)
from repro.provenance.trace import Trace
from repro.values.index import Index

MANIFEST_NAME = "manifest.json"
MANIFEST_SCHEMA = "repro.storage/1"
DEFAULT_NUM_SHARDS = 4
#: Upper bound on concurrent per-shard readers in one scatter-gather.
DEFAULT_MAX_READERS = 8

#: The manifest-reconciliation scan (see :meth:`ShardedStore._reconcile`).
#: ``ORDER BY rowid`` is the table's natural scan order, so this is a
#: sort-free full scan — registered so plan lint covers the sharded
#: backend's one piece of SQL that is not already a store primitive.
_INVENTORY_SQL = "SELECT run_id, workflow FROM runs ORDER BY rowid"

register_sql_primitive(
    "shard_run_inventory",
    "Sharded-backend manifest reconciliation: one shard's full run "
    "inventory in ingest (rowid) order.",
    (
        BindShape("all", lambda s: s._read(_INVENTORY_SQL)),
    ),
    scan_ok=True,
)


def shard_index_of(run_id: str, num_shards: int) -> int:
    """Stable hash placement of a run (crc32 — never ``hash()``, which
    is salted per process and would scatter re-opened stores)."""
    return zlib.crc32(run_id.encode("utf-8")) % num_shards


class ShardError(RuntimeError):
    """One shard failed mid-operation; the whole answer is withheld.

    Structured: ``shard`` (index), ``path`` (the shard's database file),
    ``op`` (the primitive that failed) and ``cause`` (the underlying
    exception — a :class:`StoreBusyError` after the bounded retry budget,
    or the SQLite error for a closed/missing shard).
    """

    def __init__(
        self, shard: int, path: str, op: str, cause: BaseException
    ) -> None:
        self.shard = shard
        self.path = path
        self.op = op
        self.cause = cause
        super().__init__(
            f"shard {shard} ({path}) failed during {op}: "
            f"{type(cause).__name__}: {cause}"
        )


#: Errors that identify a sick *shard* (as opposed to a semantic error
#: like an unknown run id, which passes through unchanged).
_SHARD_FAULTS = (StoreBusyError, sqlite3.OperationalError, sqlite3.ProgrammingError)


class ShardedStore:
    """A :class:`~repro.storage.backend.StorageBackend` over N shards.

    ``path=":memory:"`` builds ephemeral in-memory shards (tests);
    any other path names a shard *directory*.  ``num_shards`` is fixed
    at creation and recorded in the manifest — reopening an existing
    directory infers it (passing a conflicting count raises).
    """

    def __init__(
        self,
        path: str = ":memory:",
        num_shards: Optional[int] = None,
        intern_values: bool = False,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultInjector] = None,
        obs: Optional[Observability] = None,
        max_readers: int = DEFAULT_MAX_READERS,
    ) -> None:
        self.path = path
        self.obs = obs if obs is not None else NO_OBS
        self.intern_values = intern_values
        self.retry = retry
        self.faults = faults
        self._is_memory = path == ":memory:"
        self._closed = False
        self._manifest_lock = threading.RLock()
        #: run_id -> shard index (authoritative routing map).
        self._placement: Dict[str, int] = {}
        #: run ids in global ingest order (what run_ids() reports).
        self._order: List[str] = []
        if self._is_memory:
            self.num_shards = num_shards or DEFAULT_NUM_SHARDS
        else:
            self.num_shards = self._load_or_create_manifest(num_shards)
        if self.num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        #: The per-shard reference stores, public on purpose: fault
        #: injection, plan lint and maintenance operate per shard.
        self.shards: List[TraceStore] = [
            TraceStore(
                self._shard_path(i),
                intern_values=intern_values,
                retry=retry,
                faults=faults,
                obs=self.obs,
            )
            for i in range(self.num_shards)
        ]
        self._listeners: List[Callable[[Optional[str]], None]] = []
        for shard in self.shards:
            shard.add_invalidation_listener(self._relay_invalidation)
        if not self._is_memory:
            self._reconcile()
        self._pool: Optional[ThreadPoolExecutor] = None
        if self.num_shards > 1:
            self._pool = ThreadPoolExecutor(
                max_workers=min(self.num_shards, max_readers),
                thread_name_prefix="shard-reader",
            )

    # -- manifest ----------------------------------------------------------

    def _shard_path(self, index: int) -> str:
        if self._is_memory:
            return ":memory:"
        return os.path.join(self.path, f"shard-{index:03d}.db")

    def _manifest_path(self) -> str:
        return os.path.join(self.path, MANIFEST_NAME)

    def _load_or_create_manifest(self, num_shards: Optional[int]) -> int:
        os.makedirs(self.path, exist_ok=True)
        manifest_path = self._manifest_path()
        if os.path.exists(manifest_path):
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
            if manifest.get("schema") != MANIFEST_SCHEMA:
                raise ValueError(
                    f"unsupported shard manifest schema "
                    f"{manifest.get('schema')!r} at {manifest_path}"
                )
            stored = int(manifest["num_shards"])
            if num_shards is not None and num_shards != stored:
                raise ValueError(
                    f"shard directory {self.path} holds {stored} shard(s); "
                    f"requested {num_shards}"
                )
            self._placement = {
                run: int(idx) for run, idx in manifest.get("runs", {}).items()
            }
            self._order = [
                run for run in manifest.get("order", [])
                if run in self._placement
            ]
            return stored
        resolved = num_shards or DEFAULT_NUM_SHARDS
        self._save_manifest_locked(resolved)
        return resolved

    def _save_manifest_locked(self, num_shards: Optional[int] = None) -> None:
        """Atomically rewrite the manifest (caller holds the lock)."""
        if self._is_memory:
            return
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "num_shards": num_shards or self.num_shards,
            "runs": dict(self._placement),
            "order": list(self._order),
        }
        # The tmp name must be unique per writer: concurrent processes
        # share the directory (WAL-style multi-process ingest is part of
        # the store contract), and a shared ".tmp" would let one
        # writer's rename race another's open.  Last manifest wins;
        # reconcile-on-open heals any gap from the shards themselves.
        tmp = f"{self._manifest_path()}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=1, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, self._manifest_path())

    def _reconcile(self) -> None:
        """Sync the manifest with the shards' actual run inventories.

        A crash between a shard commit and the manifest rewrite leaves
        the two out of step; the shards are the ground truth.  Runs
        present in a shard but missing from the manifest are appended
        (in shard order), manifest entries whose run vanished are
        dropped.
        """
        with self._manifest_lock:
            live: Dict[str, int] = {}
            for index, shard in enumerate(self.shards):
                rows = self._guard(
                    index, "shard_run_inventory",
                    lambda s=shard: s._read(_INVENTORY_SQL),
                )
                for run_id, _workflow in rows:
                    live[run_id] = index
            dirty = set(self._placement) != set(live)
            self._placement = live
            self._order = [r for r in self._order if r in live]
            known = set(self._order)
            for run_id in live:
                if run_id not in known:
                    self._order.append(run_id)
            if dirty or len(self._order) != len(live):
                self._save_manifest_locked()

    # -- routing -----------------------------------------------------------

    def shard_of(self, run_id: str) -> int:
        """The index of the shard holding (or destined to hold) a run."""
        with self._manifest_lock:
            placed = self._placement.get(run_id)
        if placed is not None:
            return placed
        return shard_index_of(run_id, self.num_shards)

    def _shard(self, run_id: str) -> Tuple[int, TraceStore]:
        index = self.shard_of(run_id)
        return index, self.shards[index]

    def _guard(self, index: int, op: str, thunk: Callable[[], Any]) -> Any:
        try:
            return thunk()
        except _SHARD_FAULTS as exc:
            raise ShardError(
                index, self._shard_path(index), op, exc
            ) from exc

    def _scatter(
        self, op: str, calls: Sequence[Tuple[int, Callable[[], Any]]]
    ) -> List[Any]:
        """Run per-shard thunks, returning results in submission order.

        One shard: inline, no pool.  Many: fan out, then **drain every
        future** before surfacing the first failure — no partial answers
        escape and no pool slot is left running unobserved.
        """
        if not calls:
            return []
        if len(calls) == 1 or self._pool is None:
            return [
                self._guard(index, op, thunk) for index, thunk in calls
            ]
        with self.obs.span(
            "store.shard_fanout", op=op, shards=len(calls)
        ) as span:
            futures = [
                (index, self._pool.submit(self._guard, index, op, thunk))
                for index, thunk in calls
            ]
            results: List[Any] = []
            first_error: Optional[BaseException] = None
            for _index, future in futures:
                try:
                    results.append(future.result())
                except ShardError as exc:
                    if first_error is None:
                        first_error = exc
            if first_error is not None:
                raise first_error
            span.set(merged=len(results))
            return results

    # -- event-id translation ----------------------------------------------

    def _encode_event(self, shard: int, local_id: int) -> int:
        return local_id * self.num_shards + shard

    def _decode_events(
        self, event_ids: Sequence[int]
    ) -> List[Tuple[int, List[int]]]:
        """Group global event ids by owning shard, preserving order."""
        grouped: Dict[int, List[int]] = {}
        order: List[int] = []
        for event_id in event_ids:
            local, shard = divmod(event_id, self.num_shards)
            if shard not in grouped:
                grouped[shard] = []
                order.append(shard)
            grouped[shard].append(local)
        return [(shard, grouped[shard]) for shard in order]

    @staticmethod
    def _merge_bindings(parts: Sequence[List[Binding]]) -> List[Binding]:
        """Concatenate per-shard binding lists, re-deduplicating on the
        same ``(node, port, index)`` key order the single-file path uses."""
        if len(parts) == 1:
            return parts[0]
        seen: Set[Tuple[str, str, str]] = set()
        merged: List[Binding] = []
        for part in parts:
            for binding in part:
                key = binding.key()
                if key in seen:
                    continue
                seen.add(key)
                merged.append(binding)
        return merged

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "ShardedStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- write-generation coherence tokens ----------------------------------

    def _relay_invalidation(self, run_id: Optional[str]) -> None:
        with self._manifest_lock:
            listeners = list(self._listeners)
        for listener in listeners:
            listener(run_id)

    def add_invalidation_listener(
        self, listener: Callable[[Optional[str]], None]
    ) -> None:
        with self._manifest_lock:
            self._listeners.append(listener)

    def generation(self, run_id: str) -> int:
        _index, shard = self._shard(run_id)
        return shard.generation(run_id)

    @property
    def global_generation(self) -> int:
        # Sums of monotonic per-shard counters are themselves monotonic,
        # which is all the cache's compare-for-equality protocol needs.
        return sum(shard.global_generation for shard in self.shards)

    @property
    def membership_generation(self) -> int:
        return sum(shard.membership_generation for shard in self.shards)

    def generation_vector(
        self, run_ids: Sequence[str]
    ) -> Tuple[int, Tuple[int, ...]]:
        return (
            self.global_generation,
            tuple(self.generation(run_id) for run_id in run_ids),
        )

    def bump_run_generation(
        self, run_id: str, membership: bool = False
    ) -> None:
        _index, shard = self._shard(run_id)
        shard.bump_run_generation(run_id, membership=membership)

    def bump_global_generation(self) -> None:
        self.shards[0].bump_global_generation()

    # -- ingest and metadata -------------------------------------------------

    def has_run(self, run_id: str) -> bool:
        index, shard = self._shard(run_id)
        return self._guard(index, "has_run", lambda: shard.has_run(run_id))

    def insert_trace(self, trace: Trace) -> None:
        index, shard = self._shard(trace.run_id)
        self._guard(
            index, "insert_trace", lambda: shard.insert_trace(trace)
        )
        with self._manifest_lock:
            self._placement[trace.run_id] = index
            if trace.run_id not in self._order:
                self._order.append(trace.run_id)
            self._save_manifest_locked()

    def delete_run(self, run_id: str) -> None:
        index, shard = self._shard(run_id)
        self._guard(index, "delete_run", lambda: shard.delete_run(run_id))
        with self._manifest_lock:
            self._placement.pop(run_id, None)
            if run_id in self._order:
                self._order.remove(run_id)
            self._save_manifest_locked()

    def load_trace(self, run_id: str) -> Trace:
        index, shard = self._shard(run_id)
        return self._guard(
            index, "load_trace", lambda: shard.load_trace(run_id)
        )

    def run_ids(self, workflow: Optional[str] = None) -> List[str]:
        """All stored run ids in global ingest order (manifest order)."""
        parts = self._scatter(
            "run_ids",
            [
                (index, lambda s=shard: s.run_ids(workflow))
                for index, shard in enumerate(self.shards)
            ],
        )
        with self._manifest_lock:
            position = {run: i for i, run in enumerate(self._order)}
        runs = [run for part in parts for run in part]
        runs.sort(key=lambda run: position.get(run, len(position)))
        return runs

    def record_count(self, run_id: Optional[str] = None) -> int:
        if run_id is not None:
            index, shard = self._shard(run_id)
            return self._guard(
                index, "record_count", lambda: shard.record_count(run_id)
            )
        parts = self._scatter(
            "record_count",
            [
                (index, lambda s=shard: s.record_count())
                for index, shard in enumerate(self.shards)
            ],
        )
        return sum(parts)

    def statistics(self) -> Dict[str, Any]:
        """Single-file totals plus the per-shard rollup.

        The flat keys (``runs`` .. ``records``) sum across shards so
        existing consumers read the same shape either way; ``shards``
        carries each shard's own counts and ``num_shards`` the fan-out.
        """
        parts = self._scatter(
            "statistics",
            [
                (index, lambda s=shard: s.statistics())
                for index, shard in enumerate(self.shards)
            ],
        )
        totals: Dict[str, Any] = {}
        per_shard = []
        for index, stats in enumerate(parts):
            per_shard.append(
                {"shard": index, "path": self._shard_path(index), **stats}
            )
            for name, value in stats.items():
                totals[name] = totals.get(name, 0) + value
        totals["num_shards"] = self.num_shards
        totals["shards"] = per_shard
        return totals

    # -- index management and audit seams ------------------------------------

    def drop_indexes(self) -> None:
        for index, shard in enumerate(self.shards):
            self._guard(index, "drop_indexes", shard.drop_indexes)

    def create_indexes(self) -> None:
        for index, shard in enumerate(self.shards):
            self._guard(index, "create_indexes", shard.create_indexes)

    def has_indexes(self) -> bool:
        return all(
            self._guard(index, "has_indexes", shard.has_indexes)
            for index, shard in enumerate(self.shards)
        )

    def set_statement_audit(
        self, callback: Optional[Callable[[str], Any]]
    ) -> None:
        for shard in self.shards:
            shard.set_statement_audit(callback)

    def statement_cache_stats(self) -> Dict[str, int]:
        """Prepared-statement reuse summed across shards (epoch = max)."""
        merged = {"hits": 0, "misses": 0, "epoch": 0}
        for shard in self.shards:
            stats = shard.statement_cache_stats()
            merged["hits"] += stats["hits"]
            merged["misses"] += stats["misses"]
            merged["epoch"] = max(merged["epoch"], stats["epoch"])
        return merged

    # -- lookup primitives (single-run: route to the owning shard) -----------

    def find_xform_by_output(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[XformMatch]:
        shard_index, shard = self._shard(run_id)
        matches = self._guard(
            shard_index, "find_xform_by_output",
            lambda: shard.find_xform_by_output(
                run_id, node, port, index, stats=stats
            ),
        )
        return [
            XformMatch(
                event_id=self._encode_event(shard_index, m.event_id),
                output_index=m.output_index,
            )
            for m in matches
        ]

    def find_xform_by_input(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[XformMatch]:
        shard_index, shard = self._shard(run_id)
        matches = self._guard(
            shard_index, "find_xform_by_input",
            lambda: shard.find_xform_by_input(
                run_id, node, port, index, stats=stats
            ),
        )
        return [
            XformMatch(
                event_id=self._encode_event(shard_index, m.event_id),
                output_index=m.output_index,
            )
            for m in matches
        ]

    def xform_inputs(
        self,
        event_ids: Sequence[int],
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        if not event_ids:
            return []
        calls = [
            (shard, lambda s=self.shards[shard], ids=locals_: s.xform_inputs(
                ids, stats=stats
            ))
            for shard, locals_ in self._decode_events(event_ids)
        ]
        return self._merge_bindings(self._scatter("xform_inputs", calls))

    def xform_outputs(
        self,
        event_ids: Sequence[int],
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        if not event_ids:
            return []
        calls = [
            (shard, lambda s=self.shards[shard], ids=locals_: s.xform_outputs(
                ids, stats=stats
            ))
            for shard, locals_ in self._decode_events(event_ids)
        ]
        return self._merge_bindings(self._scatter("xform_outputs", calls))

    def find_xform_inputs_matching(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        shard_index, shard = self._shard(run_id)
        return self._guard(
            shard_index, "find_xform_inputs_matching",
            lambda: shard.find_xform_inputs_matching(
                run_id, node, port, index, stats=stats
            ),
        )

    def find_xfer_into(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Tuple[Binding, Index]]:
        shard_index, shard = self._shard(run_id)
        return self._guard(
            shard_index, "find_xfer_into",
            lambda: shard.find_xfer_into(
                run_id, node, port, index, stats=stats
            ),
        )

    def find_xfer_from(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Tuple[Binding, Index]]:
        shard_index, shard = self._shard(run_id)
        return self._guard(
            shard_index, "find_xfer_from",
            lambda: shard.find_xfer_from(
                run_id, node, port, index, stats=stats
            ),
        )

    def find_xform_outputs_matching_pattern(
        self,
        run_id: str,
        node: str,
        port: str,
        pattern: Any,
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        shard_index, shard = self._shard(run_id)
        return self._guard(
            shard_index, "find_xform_outputs_matching_pattern",
            lambda: shard.find_xform_outputs_matching_pattern(
                run_id, node, port, pattern, stats=stats
            ),
        )

    def has_binding(self, run_id: str, node: str, port: str) -> bool:
        shard_index, shard = self._shard(run_id)
        return self._guard(
            shard_index, "has_binding",
            lambda: shard.has_binding(run_id, node, port),
        )

    # -- multi-run and set-based primitives (scatter-gather) -----------------

    def _partition_runs(
        self, run_ids: Sequence[str]
    ) -> List[Tuple[int, List[str]]]:
        grouped: Dict[int, List[str]] = {}
        order: List[int] = []
        for run_id in run_ids:
            index = self.shard_of(run_id)
            if index not in grouped:
                grouped[index] = []
                order.append(index)
            grouped[index].append(run_id)
        return [(index, grouped[index]) for index in order]

    def _partition_keys(
        self, keys: Sequence[BatchKey]
    ) -> List[Tuple[int, List[BatchKey]]]:
        grouped: Dict[int, List[BatchKey]] = {}
        order: List[int] = []
        for key in keys:
            index = self.shard_of(key[0])
            if index not in grouped:
                grouped[index] = []
                order.append(index)
            grouped[index].append(key)
        return [(index, grouped[index]) for index in order]

    def find_xform_inputs_matching_multi(
        self,
        run_ids: Sequence[str],
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> Dict[str, List[Binding]]:
        if not run_ids:
            return {}
        calls = [
            (
                shard_index,
                lambda s=self.shards[shard_index], runs=runs:
                s.find_xform_inputs_matching_multi(
                    runs, node, port, index, stats=stats
                ),
            )
            for shard_index, runs in self._partition_runs(run_ids)
        ]
        merged: Dict[str, List[Binding]] = {}
        for part in self._scatter("find_xform_inputs_matching_multi", calls):
            merged.update(part)
        return merged

    def find_xform_inputs_matching_many(
        self,
        keys: Sequence[BatchKey],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[BatchKeyId, List[Binding]]:
        if not keys:
            return {}
        calls = [
            (
                shard_index,
                lambda s=self.shards[shard_index], part=part:
                s.find_xform_inputs_matching_many(
                    part, stats=stats, chunk_size=chunk_size
                ),
            )
            for shard_index, part in self._partition_keys(keys)
        ]
        merged: Dict[BatchKeyId, List[Binding]] = {}
        for part in self._scatter("find_xform_inputs_matching_many", calls):
            merged.update(part)
        return merged

    def find_xform_inputs_matching_compiled(
        self,
        pairs: Sequence[CompiledPair],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[BatchKeyId, List[Binding]]:
        """Compiled grid, sharded: the run id (the only late-bound value
        of a compiled pair) routes each key to its shard; each shard
        executes its sub-grid against its own prepared statements."""
        if not pairs:
            return {}
        grouped: Dict[int, List[CompiledPair]] = {}
        order: List[int] = []
        for pair in pairs:
            index = self.shard_of(pair[0])
            if index not in grouped:
                grouped[index] = []
                order.append(index)
            grouped[index].append(pair)
        calls = [
            (
                shard_index,
                lambda s=self.shards[shard_index], part=grouped[shard_index]:
                s.find_xform_inputs_matching_compiled(
                    part, stats=stats, chunk_size=chunk_size
                ),
            )
            for shard_index in order
        ]
        merged: Dict[BatchKeyId, List[Binding]] = {}
        for part in self._scatter("find_xform_inputs_matching_compiled", calls):
            merged.update(part)
        return merged

    def find_xform_by_output_many(
        self,
        keys: Sequence[BatchKey],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[BatchKeyId, List[XformMatch]]:
        if not keys:
            return {}
        partitions = self._partition_keys(keys)
        calls = [
            (
                shard_index,
                lambda s=self.shards[shard_index], part=part:
                s.find_xform_by_output_many(
                    part, stats=stats, chunk_size=chunk_size
                ),
            )
            for shard_index, part in partitions
        ]
        merged: Dict[BatchKeyId, List[XformMatch]] = {}
        for (shard_index, _part), result in zip(
            partitions, self._scatter("find_xform_by_output_many", calls)
        ):
            for key_id, matches in result.items():
                merged[key_id] = [
                    XformMatch(
                        event_id=self._encode_event(shard_index, m.event_id),
                        output_index=m.output_index,
                    )
                    for m in matches
                ]
        return merged

    def xform_inputs_many(
        self,
        groups: Sequence[Tuple[str, Sequence[int]]],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[Tuple[str, Tuple[int, ...]], List[Binding]]:
        if not groups:
            return {}
        # Decompose each (run, events) group into per-shard sub-groups of
        # local ids.  Runs live wholly in one shard, so in practice each
        # group maps to exactly one sub-group; the general path below
        # still merges correctly if ids ever straddle shards.
        per_shard: Dict[int, List[Tuple[str, Tuple[int, ...]]]] = {}
        shard_order: List[int] = []
        decomposed: List[
            Tuple[str, Tuple[int, ...], List[Tuple[int, Tuple[int, ...]]]]
        ] = []
        for run_id, event_ids in groups:
            subs = [
                (shard, tuple(locals_))
                for shard, locals_ in self._decode_events(event_ids)
            ]
            decomposed.append((run_id, tuple(event_ids), subs))
            for shard, locals_ in subs:
                if shard not in per_shard:
                    per_shard[shard] = []
                    shard_order.append(shard)
                per_shard[shard].append((run_id, locals_))
        calls = [
            (
                shard,
                lambda s=self.shards[shard], gs=per_shard[shard]:
                s.xform_inputs_many(gs, stats=stats, chunk_size=chunk_size),
            )
            for shard in shard_order
        ]
        shard_results = dict(
            zip(shard_order, self._scatter("xform_inputs_many", calls))
        )
        result: Dict[Tuple[str, Tuple[int, ...]], List[Binding]] = {}
        for run_id, original_ids, subs in decomposed:
            parts = [
                shard_results[shard][(run_id, locals_)]
                for shard, locals_ in subs
            ]
            result[(run_id, original_ids)] = (
                self._merge_bindings(parts) if parts else []
            )
        return result

    def find_xfer_into_many(
        self,
        keys: Sequence[BatchKey],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[BatchKeyId, List[Tuple[Binding, Index]]]:
        if not keys:
            return {}
        calls = [
            (
                shard_index,
                lambda s=self.shards[shard_index], part=part:
                s.find_xfer_into_many(
                    part, stats=stats, chunk_size=chunk_size
                ),
            )
            for shard_index, part in self._partition_keys(keys)
        ]
        merged: Dict[BatchKeyId, List[Tuple[Binding, Index]]] = {}
        for part in self._scatter("find_xfer_into_many", calls):
            merged.update(part)
        return merged


def open_store(
    path: str,
    shards: Optional[int] = None,
    intern_values: bool = False,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultInjector] = None,
    obs: Optional[Observability] = None,
) -> Any:
    """Open the right backend for ``path``.

    ``shards`` forces a :class:`ShardedStore`; without it, an existing
    shard directory (one holding a ``manifest.json``) reopens sharded
    and anything else opens the single-file reference backend.
    """
    if shards is not None:
        return ShardedStore(
            path, num_shards=shards, intern_values=intern_values,
            retry=retry, faults=faults, obs=obs,
        )
    if path != ":memory:" and os.path.isdir(path) and os.path.exists(
        os.path.join(path, MANIFEST_NAME)
    ):
        return ShardedStore(
            path, intern_values=intern_values, retry=retry,
            faults=faults, obs=obs,
        )
    return TraceStore(
        path, intern_values=intern_values, retry=retry,
        faults=faults, obs=obs,
    )
