"""Pluggable trace storage backends (docs/STORAGE.md).

:class:`StorageBackend` is the protocol the query, cache, service and
server layers are written against; :data:`SqliteStore` (the single-file
:class:`~repro.provenance.store.TraceStore`) is the reference
implementation and :class:`ShardedStore` the run-sharded scatter-gather
backend.  :func:`open_store` picks the right one for a path.
"""

from repro.storage.backend import SqliteStore, StorageBackend
from repro.storage.sharded import (
    DEFAULT_NUM_SHARDS,
    MANIFEST_NAME,
    ShardedStore,
    ShardError,
    open_store,
    shard_index_of,
)

__all__ = [
    "DEFAULT_NUM_SHARDS",
    "MANIFEST_NAME",
    "ShardError",
    "ShardedStore",
    "SqliteStore",
    "StorageBackend",
    "open_store",
    "shard_index_of",
]
