"""Deterministic synthetic stand-ins for the paper's external services.

The paper's workloads call two families of remote services that this
offline reproduction cannot reach:

* **KEGG** (genes2Kegg): pathways-by-genes and pathway-description
  lookups over the KEGG metabolic pathway database;
* **PubMed** (BioAID protein discovery): abstract retrieval and text
  analysis over article abstracts.

Both are replaced by deterministic synthetic catalogs.  Lineage querying
never inspects payload *content* — only the list structure and event
indices matter — so any deterministic function with the same input/output
list shapes exercises exactly the same provenance code paths (see
DESIGN.md, "Substitutions").  Determinism matters: repeated runs must
produce identical traces for the multi-run experiments to be meaningful.

The synthetic KEGG catalog gives every gene three pathways: one shared by
*all* genes (so the GK workflow's ``commonPathways`` intersection is never
empty) and two gene-specific ones derived from a stable hash.
"""

from __future__ import annotations

import hashlib
from typing import Any, Dict, List

#: The pathway every synthetic gene participates in.
COMMON_PATHWAY = "path:04010"

_PATHWAY_NAMES = [
    "MAPK signaling",
    "Apoptosis",
    "VEGF signaling",
    "Toll-like receptor",
    "Cell cycle",
    "Wnt signaling",
    "p53 signaling",
    "Calcium signaling",
    "Jak-STAT signaling",
    "mTOR signaling",
]


def _stable_hash(text: str) -> int:
    """A process-independent hash (``hash()`` is salted per process)."""
    return int.from_bytes(hashlib.sha256(text.encode()).digest()[:4], "big")


def pathways_for_gene(gene: str) -> List[str]:
    """The synthetic pathway IDs a gene participates in (deterministic)."""
    seed = _stable_hash(str(gene))
    specific = sorted({f"path:{4100 + seed % 37:05d}", f"path:{4200 + seed % 53:05d}"})
    return [COMMON_PATHWAY] + specific

def pathway_description(pathway_id: str) -> str:
    """Human-readable description of a synthetic pathway ID."""
    if pathway_id == COMMON_PATHWAY:
        return f"{pathway_id} {_PATHWAY_NAMES[0]}"
    seed = _stable_hash(pathway_id)
    return f"{pathway_id} {_PATHWAY_NAMES[seed % len(_PATHWAY_NAMES)]}"


# ---------------------------------------------------------------------------
# KEGG-style processor operations (genes2Kegg workload)
# ---------------------------------------------------------------------------


def op_kegg_pathways_by_genes(
    inputs: Dict[str, Any], config: Dict[str, Any]
) -> Dict[str, Any]:
    """Pathways involving the genes of one ID list.

    ``config['mode']``: ``"union"`` (default) returns every pathway any of
    the genes participates in — the per-sublist branch of GK; ``"common"``
    returns only pathways involving *all* genes — the ``commonPathways``
    branch.
    """
    genes = inputs.get("genes_id_list") or []
    mode = config.get("mode", "union")
    per_gene = [pathways_for_gene(g) for g in genes]
    if not per_gene:
        return {config.get("out", "return"): []}
    if mode == "common":
        survivors = [p for p in per_gene[0] if all(p in rest for rest in per_gene[1:])]
        result = survivors
    else:
        seen: Dict[str, None] = {}
        for pathways in per_gene:
            for pathway in pathways:
                seen.setdefault(pathway)
        result = list(seen)
    return {config.get("out", "return"): result}


def op_kegg_pathway_descriptions(
    inputs: Dict[str, Any], config: Dict[str, Any]
) -> Dict[str, Any]:
    """Map a list of pathway IDs to their human-readable descriptions."""
    pathway_ids = inputs.get("string") or []
    return {
        config.get("out", "return"): [pathway_description(p) for p in pathway_ids]
    }


# ---------------------------------------------------------------------------
# PubMed-style processor operations (protein-discovery workload)
# ---------------------------------------------------------------------------

_PROTEIN_LEXICON = [
    "BRCA1", "TP53", "EGFR", "KRAS", "MYC", "AKT1", "PTEN", "VEGFA",
]


def synthetic_abstract(article_id: str) -> str:
    """A deterministic pseudo-abstract mentioning 2-3 lexicon proteins."""
    seed = _stable_hash(str(article_id))
    mentioned = [
        _PROTEIN_LEXICON[seed % len(_PROTEIN_LEXICON)],
        _PROTEIN_LEXICON[(seed // 7) % len(_PROTEIN_LEXICON)],
    ]
    return (
        f"Abstract {article_id}: we study {mentioned[0]} regulation and its "
        f"interaction with {mentioned[1]} in tumour samples."
    )


def op_pubmed_fetch_abstract(
    inputs: Dict[str, Any], config: Dict[str, Any]
) -> Dict[str, Any]:
    """Retrieve the abstract text for one article ID."""
    article_id = inputs.get("id")
    return {config.get("out", "abstract"): synthetic_abstract(article_id)}


def op_extract_protein_terms(
    inputs: Dict[str, Any], config: Dict[str, Any]
) -> Dict[str, Any]:
    """Extract known protein names from one abstract (one-to-many)."""
    text = str(inputs.get("text", ""))
    found: Dict[str, None] = {}
    for token in text.replace(",", " ").replace(".", " ").split():
        if token in _PROTEIN_LEXICON:
            found.setdefault(token)
    return {config.get("out", "terms"): list(found)}


# ---------------------------------------------------------------------------
# File-loading operations (provenance-challenge workload)
# ---------------------------------------------------------------------------


def synthetic_file_content(file_name: str) -> str:
    """Deterministic pseudo-content for a named input file.

    Files whose name contains ``corrupt`` yield content that fails the
    validation check — giving the workload a deterministic mix of accepted
    and rejected records.
    """
    if "corrupt" in str(file_name):
        return f"content({file_name}):MALFORMED"
    seed = _stable_hash(str(file_name))
    return f"content({file_name}):{seed % 9973}"


def op_read_file(inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, Any]:
    """Load one named file's content (one-to-one per file)."""
    return {config.get("out", "content"): synthetic_file_content(inputs.get("name"))}


def op_validate_record(
    inputs: Dict[str, Any], config: Dict[str, Any]
) -> Dict[str, Any]:
    """Check one record; emits ``"ok"`` or ``"reject:<reason>"``."""
    content = str(inputs.get("record", ""))
    status = "reject:malformed" if content.endswith("MALFORMED") else "ok"
    return {config.get("out", "status"): status}


def op_load_database(
    inputs: Dict[str, Any], config: Dict[str, Any]
) -> Dict[str, Any]:
    """Load validated records into the 'database' (whole-list consumer).

    Consumes the full record and status lists together — a many-to-many
    step, so provenance through it is intrinsically coarse: every loaded
    row depends on all records and all statuses (the workflow cannot know
    which status gated which record without opening the black box).
    """
    records = inputs.get("records") or []
    statuses = inputs.get("statuses") or []
    loaded = [
        f"row[{i}]={record}"
        for i, (record, status) in enumerate(zip(records, statuses, strict=False))
        if status == "ok"
    ]
    return {config.get("out", "table"): loaded}


def op_process_row(
    inputs: Dict[str, Any], config: Dict[str, Any]
) -> Dict[str, Any]:
    """Post-load processing of one database row (one-to-one per row)."""
    return {config.get("out", "result"): f"processed({inputs.get('row')})"}


def register_services(registry) -> None:
    """Install all synthetic service operations into a registry."""
    registry.register("kegg_pathways_by_genes", op_kegg_pathways_by_genes)
    registry.register("kegg_pathway_descriptions", op_kegg_pathway_descriptions)
    registry.register("pubmed_fetch_abstract", op_pubmed_fetch_abstract)
    registry.register("extract_protein_terms", op_extract_protein_terms)
    registry.register("read_file", op_read_file)
    registry.register("validate_record", op_validate_record)
    registry.register("load_database", op_load_database)
    registry.register("process_row", op_process_row)
