"""Synthetic experimental testbed (Section 4.1) and real-life workloads.

``generator``
    The paper's parametric workflow family (Fig. 5): a ``LISTGEN_1``
    source that emits a ``d``-element list, two parallel linear chains of
    ``l`` one-to-one processors, and a final ``2TO1_FINAL`` processor that
    joins the chains with a binary cross product.  Parameter ``l`` is fixed
    at generation time; ``d`` is the run-time ``ListSize`` input.

``services``
    Deterministic synthetic stand-ins for the external services the
    paper's real workflows call (KEGG pathway lookups, PubMed abstract
    retrieval) — see DESIGN.md, "Substitutions".

``workloads``
    The two real-life workflows of Section 4: ``genes2kegg`` (GK, short
    paths, collection-heavy) and ``protein_discovery`` (PD, one long
    path), rebuilt over the synthetic services.

``runs``
    Helpers to execute workloads repeatedly and accumulate their traces in
    a store — the multi-run sweeps of Fig. 4 and Fig. 6.
"""

from repro.testbed.generator import (
    FINAL_PROCESSOR,
    LISTGEN_PROCESSOR,
    chain_processor_names,
    chain_product_workflow,
    focused_query,
    multi_chain_workflow,
    unfocused_query,
)
from repro.testbed.runs import Workload, populate_store
from repro.testbed.workloads import (
    file_loading_workload,
    genes2kegg_workload,
    protein_discovery_workload,
)

__all__ = [
    "FINAL_PROCESSOR",
    "LISTGEN_PROCESSOR",
    "Workload",
    "chain_processor_names",
    "chain_product_workflow",
    "file_loading_workload",
    "focused_query",
    "genes2kegg_workload",
    "multi_chain_workflow",
    "populate_store",
    "protein_discovery_workload",
    "unfocused_query",
]
