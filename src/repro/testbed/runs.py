"""Workload bundles and multi-run store population helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.engine.executor import WorkflowRunner
from repro.engine.processors import ProcessorRegistry
from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.values.index import Index
from repro.workflow.model import Dataflow


@dataclass
class Workload:
    """A runnable experiment unit: workflow + services + canonical queries.

    ``query_target`` names the output binding whose lineage the workload's
    canonical queries ask about; ``focused_processors`` is the small 𝒫 of
    the *focused* variant (the unfocused variant uses every processor).
    """

    name: str
    flow: Dataflow
    registry: ProcessorRegistry
    inputs: Dict[str, Any]
    query_target: Tuple[str, str, Tuple[int, ...]]
    focused_processors: Tuple[str, ...]
    description: str = ""

    def runner(self) -> WorkflowRunner:
        return WorkflowRunner(self.registry)

    def focused_query(self) -> LineageQuery:
        node, port, index = self.query_target
        return LineageQuery.create(node, port, Index.of(index), self.focused_processors)

    def unfocused_query(self) -> LineageQuery:
        node, port, index = self.query_target
        return LineageQuery.create(
            node, port, Index.of(index), list(self.flow.flattened().processor_names)
        )


def populate_store(
    store: TraceStore,
    flow: Dataflow,
    inputs: Dict[str, Any],
    runs: int = 1,
    runner: Optional[WorkflowRunner] = None,
    registry: Optional[ProcessorRegistry] = None,
    run_prefix: str = "run",
) -> List[str]:
    """Execute ``flow`` ``runs`` times and insert every trace into ``store``.

    Returns the run ids, in execution order.  A shared runner keeps the
    depth analysis cached across the sweep; inputs are identical for all
    runs (the paper's multi-run experiments accumulate identical runs to
    scale the database, Fig. 6).
    """
    if runner is None:
        runner = WorkflowRunner(registry)
    run_ids: List[str] = []
    for i in range(runs):
        captured = capture_run(
            flow, inputs, runner=runner, run_id=f"{run_prefix}-{i + 1}-{id(store):x}"
        )
        store.insert_trace(captured.trace)
        run_ids.append(captured.run_id)
    return run_ids
