"""The paper's two real-life workloads, rebuilt over synthetic services.

``genes2kegg`` (GK, Fig. 1)
    A short, collection-heavy bioinformatics workflow: a nested list of
    gene-ID lists flows through a per-sublist pathway lookup (left branch,
    implicit iteration preserves sublist boundaries) and, in parallel,
    through a flatten + common-pathway lookup (right branch, granularity
    intentionally destroyed).  The canonical lineage question is the
    paper's own: "which of the input lists of genes is involved in this
    pathway?" — asked against ``paths_per_gene[i]``.

``protein_discovery`` (PD, Section 4)
    The BioAID-style long-path workflow: PubMed IDs → abstracts → a long
    chain of per-abstract text-normalization steps → protein-term
    extraction.  Topologically "the other end of the spectrum" from GK —
    one long path — which is exactly the contrast Fig. 4 draws.
"""

from __future__ import annotations

from repro.engine.processors import default_registry
from repro.testbed.runs import Workload
from repro.testbed.services import register_services
from repro.workflow.builder import DataflowBuilder
from repro.workflow.model import Dataflow

GK_NAME = "genes2kegg"
PD_NAME = "protein_discovery"

#: Default input of the GK workload — two gene lists, as in Section 2.2.
GK_DEFAULT_INPUT = [["mmu:20816", "mmu:26416"], ["mmu:328788"]]

#: Default input of the PD workload — a batch of synthetic PubMed IDs.
PD_DEFAULT_INPUT = [f"pmid:{1000 + i}" for i in range(8)]


def build_genes2kegg() -> Dataflow:
    """The GK dataflow (Fig. 1), structurally faithful to the paper.

    Left branch: ``get_pathways_by_genes`` declares ``list(string)`` on
    ``genes_id_list`` but receives ``list(list(string))`` — mismatch 1 —
    so one instance runs per input sublist (Section 2.2); likewise
    ``getPathwayDescriptions``.  Right branch: ``flatten_gene_lists``
    consumes the whole nested value (mismatch 0), after which the common
    pathways depend on *all* input genes.
    """
    return (
        DataflowBuilder(GK_NAME)
        .input("list_of_geneIDList", "list(list(string))")
        .output("paths_per_gene", "list(list(string))")
        .output("commonPathways", "list(string)")
        # -- left branch: per-sublist pathways (fine-grained) -------------
        .processor(
            "get_pathways_by_genes",
            inputs=[("genes_id_list", "list(string)")],
            outputs=[("return", "list(string)")],
            operation="kegg_pathways_by_genes",
            config={"mode": "union", "out": "return"},
        )
        .processor(
            "getPathwayDescriptions",
            inputs=[("string", "list(string)")],
            outputs=[("return", "list(string)")],
            operation="kegg_pathway_descriptions",
            config={"out": "return"},
        )
        # -- right branch: flatten + common pathways (coarse) -------------
        .processor(
            "flatten_gene_lists",
            inputs=[("x", "list(list(string))")],
            outputs=[("y", "list(string)")],
            operation="flatten",
            config={"out": "y"},
        )
        .processor(
            "get_pathways_common",
            inputs=[("genes_id_list", "list(string)")],
            outputs=[("return", "list(string)")],
            operation="kegg_pathways_by_genes",
            config={"mode": "common", "out": "return"},
        )
        .processor(
            "getPathwayDescriptions_common",
            inputs=[("string", "list(string)")],
            outputs=[("return", "list(string)")],
            operation="kegg_pathway_descriptions",
            config={"out": "return"},
        )
        .arcs(
            (f"{GK_NAME}:list_of_geneIDList", "get_pathways_by_genes:genes_id_list"),
            ("get_pathways_by_genes:return", "getPathwayDescriptions:string"),
            ("getPathwayDescriptions:return", f"{GK_NAME}:paths_per_gene"),
            (f"{GK_NAME}:list_of_geneIDList", "flatten_gene_lists:x"),
            ("flatten_gene_lists:y", "get_pathways_common:genes_id_list"),
            ("get_pathways_common:return", "getPathwayDescriptions_common:string"),
            ("getPathwayDescriptions_common:return", f"{GK_NAME}:commonPathways"),
        )
        .build()
    )


def build_protein_discovery(chain_length: int = 30) -> Dataflow:
    """The PD dataflow: one long per-abstract processing path.

    ``chain_length`` text-normalization steps sit between abstract
    retrieval and term extraction; every step is one-to-one per abstract,
    so the path is long *and* fine-grained — the configuration in which
    the unfocused naive strategy is slowest (Fig. 4, "unfocused-PD").
    """
    builder = (
        DataflowBuilder(PD_NAME)
        .input("pubmed_ids", "list(string)")
        .output("protein_terms", "list(list(string))")
        .processor(
            "fetch_abstract",
            inputs=[("id", "string")],
            outputs=[("abstract", "string")],
            operation="pubmed_fetch_abstract",
            config={"out": "abstract"},
        )
    )
    builder.arc(f"{PD_NAME}:pubmed_ids", "fetch_abstract:id")
    previous = "fetch_abstract:abstract"
    for i in range(chain_length):
        node = f"normalize_{i}"
        builder.processor(
            node,
            inputs=[("x", "string")],
            outputs=[("y", "string")],
            operation="identity",
        )
        builder.arc(previous, f"{node}:x")
        previous = f"{node}:y"
    builder.processor(
        "extract_proteins",
        inputs=[("text", "string")],
        outputs=[("terms", "list(string)")],
        operation="extract_protein_terms",
        config={"out": "terms"},
    )
    builder.arc(previous, "extract_proteins:text")
    builder.arc("extract_proteins:terms", f"{PD_NAME}:protein_terms")
    return builder.build()


PC_NAME = "file_loading"

#: Default input of the provenance-challenge workload — one file is
#: deliberately corrupt, so validation rejects it.
PC_DEFAULT_INPUT = ["data_a.csv", "data_b.csv", "corrupt_c.csv", "data_d.csv"]


def build_file_loading() -> Dataflow:
    """The provenance-challenge scenario from the paper's introduction.

    "A workflow loads data from files into a database, and then performs
    some processing on the data.  It turns out that the database contains
    unexpected values.  Provenance questions include, among others,
    whether the appropriate checks were performed by the workflow, what
    results they produced, and which input files were used for the
    loading."

    Structure: per-file reading and validation (fine-grained, mismatch 1),
    a whole-list database load (coarse — the granularity boundary), then
    per-row post-processing (fine-grained again below the boundary).
    """
    return (
        DataflowBuilder(PC_NAME)
        .input("file_names", "list(string)")
        .output("validation_report", "list(string)")
        .output("report", "list(string)")
        .processor(
            "read_file",
            inputs=[("name", "string")],
            outputs=[("content", "string")],
            operation="read_file",
        )
        .processor(
            "check_record",
            inputs=[("record", "string")],
            outputs=[("status", "string")],
            operation="validate_record",
        )
        .processor(
            "load_db",
            inputs=[
                ("records", "list(string)"),
                ("statuses", "list(string)"),
            ],
            outputs=[("table", "list(string)")],
            operation="load_database",
        )
        .processor(
            "process",
            inputs=[("row", "string")],
            outputs=[("result", "string")],
            operation="process_row",
        )
        .arcs(
            (f"{PC_NAME}:file_names", "read_file:name"),
            ("read_file:content", "check_record:record"),
            ("read_file:content", "load_db:records"),
            ("check_record:status", "load_db:statuses"),
            ("check_record:status", f"{PC_NAME}:validation_report"),
            ("load_db:table", "process:row"),
            ("process:result", f"{PC_NAME}:report"),
        )
        .build()
    )


def file_loading_workload() -> Workload:
    """The provenance-challenge workload, bundled for the harness."""
    registry = default_registry().extended()
    register_services(registry)
    return Workload(
        name=PC_NAME,
        flow=build_file_loading(),
        registry=registry,
        inputs={"file_names": list(PC_DEFAULT_INPUT)},
        # "which input files were used for the loading?"
        query_target=(PC_NAME, "report", (0,)),
        focused_processors=("read_file",),
        description="file loading with validation and a coarse DB-load step",
    )


def genes2kegg_workload() -> Workload:
    """GK bundled with its registry, default input, and canonical query."""
    registry = default_registry().extended()
    register_services(registry)
    return Workload(
        name=GK_NAME,
        flow=build_genes2kegg(),
        registry=registry,
        inputs={"list_of_geneIDList": GK_DEFAULT_INPUT},
        # "why is this particular pathway in the output?" — lineage of one
        # per-sublist pathway set, focused on the pathway lookup's inputs.
        query_target=(GK_NAME, "paths_per_gene", (0,)),
        focused_processors=("get_pathways_by_genes",),
        description="short-path, collection-heavy bioinformatics workflow",
    )


def protein_discovery_workload(chain_length: int = 30, batch: int = 8) -> Workload:
    """PD bundled with its registry, default input, and canonical query."""
    registry = default_registry().extended()
    register_services(registry)
    inputs = {"pubmed_ids": [f"pmid:{1000 + i}" for i in range(batch)]}
    return Workload(
        name=PD_NAME,
        flow=build_protein_discovery(chain_length),
        registry=registry,
        inputs=inputs,
        query_target=(PD_NAME, "protein_terms", (0,)),
        focused_processors=("fetch_abstract",),
        description="long-path text-mining workflow",
    )
