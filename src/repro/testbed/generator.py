"""Generator for the paper's synthetic dataflow family (Fig. 5).

Each generated dataflow has the fixed topology::

                         wf:ListSize
                              |
                          LISTGEN_1          (emits a d-element list)
                          /        \\
                    CHAIN1_0      CHAIN2_0   (delta = 1: per-element
                       |             |        iteration, fine-grained)
                      ...           ...       l processors per chain
                       |             |
                  CHAIN1_{l-1}  CHAIN2_{l-1}
                          \\        /
                         2TO1_FINAL          (binary cross product)
                              |
                           wf:out            (depth-2 list, d x d)

All chain processors are one-to-one, so "lineage precision is maintained
throughout, making it possible to test fine-grained lineage queries of the
form ``lin(<2TO1_FINAL:Y[p], v>, {LISTGEN_1})`` while at the same time
requiring a full traversal of each of the paths" (Section 4.1).

``l`` (chain length) is fixed at generation time; ``d`` (list size) is the
run-time ``ListSize`` input, exactly as in the paper.
"""

from __future__ import annotations

from typing import List

from repro.query.base import LineageQuery
from repro.values.index import Index
from repro.workflow.builder import DataflowBuilder
from repro.workflow.model import Dataflow, WorkflowError

LISTGEN_PROCESSOR = "LISTGEN_1"
FINAL_PROCESSOR = "2TO1_FINAL"
LIST_SIZE_INPUT = "ListSize"
OUTPUT_PORT = "out"


def chain_processor_names(length: int, chain: int) -> List[str]:
    """The processor names of one chain (``chain`` is 1 or 2)."""
    if chain not in (1, 2):
        raise ValueError("chain must be 1 or 2")
    return [f"CHAIN{chain}_{i}" for i in range(length)]


def chain_product_workflow(length: int, name: str | None = None) -> Dataflow:
    """Build the Fig. 5 dataflow with two chains of ``length`` processors.

    The graph has ``2 * length + 2`` processors and ``2 * length + 4``
    arcs.  Chain processors run the ``identity`` operation (the paper:
    "copies of the initial list simply propagate through each of the
    linear chains"); the final processor concatenates each cross-product
    pair so the run output visibly records which elements met.
    """
    if length < 1:
        raise WorkflowError("chain length l must be >= 1")
    builder = (
        DataflowBuilder(name or f"synthetic_l{length}")
        .input(LIST_SIZE_INPUT, "integer")
        .output(OUTPUT_PORT, "list(list(string))")
        .processor(
            LISTGEN_PROCESSOR,
            inputs=[("size", "integer")],
            outputs=[("list", "list(string)")],
            operation="list_generator",
            config={"out": "list", "prefix": "e"},
        )
    )
    wf_name = name or f"synthetic_l{length}"
    builder.arc(f"{wf_name}:{LIST_SIZE_INPUT}", f"{LISTGEN_PROCESSOR}:size")
    for chain in (1, 2):
        previous = f"{LISTGEN_PROCESSOR}:list"
        for node in chain_processor_names(length, chain):
            builder.processor(
                node,
                inputs=[("x", "string")],
                outputs=[("y", "string")],
                operation="identity",
            )
            builder.arc(previous, f"{node}:x")
            previous = f"{node}:y"
    builder.processor(
        FINAL_PROCESSOR,
        inputs=[("a", "string"), ("b", "string")],
        outputs=[("y", "string")],
        operation="concat_pair",
    )
    builder.arc(f"CHAIN1_{length - 1}:y", f"{FINAL_PROCESSOR}:a")
    builder.arc(f"CHAIN2_{length - 1}:y", f"{FINAL_PROCESSOR}:b")
    builder.arc(f"{FINAL_PROCESSOR}:y", f"{wf_name}:{OUTPUT_PORT}")
    return builder.build()


def multi_chain_workflow(
    length: int, branches: int, name: str | None = None
) -> Dataflow:
    """The n-ary generalization of Fig. 5 the paper sketches.

    "While this workflow pattern can be extended to multiple input
    processors and thus n-ary products, this family is adequate ..."
    (Section 4.1).  ``branches`` parallel chains of ``length`` processors
    feed one final processor whose n-ary cross product yields a depth-
    ``branches`` output.  Used by the breadth ablation: graph *breadth*
    affects only the traversal phase, "equally for all approaches".
    """
    if length < 1 or branches < 2:
        raise WorkflowError("need length >= 1 and branches >= 2")
    wf_name = name or f"synthetic_l{length}_b{branches}"
    out_type = "string"
    for _ in range(branches):
        out_type = f"list({out_type})"
    builder = (
        DataflowBuilder(wf_name)
        .input(LIST_SIZE_INPUT, "integer")
        .output(OUTPUT_PORT, out_type)
        .processor(
            LISTGEN_PROCESSOR,
            inputs=[("size", "integer")],
            outputs=[("list", "list(string)")],
            operation="list_generator",
            config={"out": "list", "prefix": "e"},
        )
    )
    builder.arc(f"{wf_name}:{LIST_SIZE_INPUT}", f"{LISTGEN_PROCESSOR}:size")
    final_inputs = []
    for branch in range(1, branches + 1):
        previous = f"{LISTGEN_PROCESSOR}:list"
        for i in range(length):
            node = f"CHAIN{branch}_{i}"
            builder.processor(
                node,
                inputs=[("x", "string")],
                outputs=[("y", "string")],
                operation="identity",
            )
            builder.arc(previous, f"{node}:x")
            previous = f"{node}:y"
        final_inputs.append((f"b{branch}", previous))
    builder.processor(
        FINAL_PROCESSOR,
        inputs=[(port, "string") for port, _ in final_inputs],
        outputs=[("y", "string")],
        operation="concat_all",
    )
    for port, source in final_inputs:
        builder.arc(source, f"{FINAL_PROCESSOR}:{port}")
    builder.arc(f"{FINAL_PROCESSOR}:y", f"{wf_name}:{OUTPUT_PORT}")
    return builder.build()


def focused_query(index: Index = Index(0, 0)) -> LineageQuery:
    """The paper's canonical focused query on a generated dataflow:
    ``lin(<2TO1_FINAL:Y[p], v>, {LISTGEN_1})``."""
    return LineageQuery.create(
        FINAL_PROCESSOR, "y", index, focus=[LISTGEN_PROCESSOR]
    )


def unfocused_query(flow: Dataflow, index: Index = Index(0, 0)) -> LineageQuery:
    """The fully unfocused variant: every processor is interesting."""
    return LineageQuery.create(
        FINAL_PROCESSOR, "y", index, focus=list(flow.processor_names)
    )


def partially_focused_query(
    flow: Dataflow, fraction: float, index: Index = Index(0, 0)
) -> LineageQuery:
    """A query whose focus set covers ``fraction`` of the processors.

    Used by the Fig. 10 reproduction (|P| up to ~50% of the total).  Focus
    processors are taken evenly from both chains, generator first, so the
    set always includes the chain sources the query must reach anyway.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    names = list(flow.processor_names)
    count = max(1, round(fraction * len(names)))
    focus = [LISTGEN_PROCESSOR]
    chain1 = [n for n in names if n.startswith("CHAIN1_")]
    chain2 = [n for n in names if n.startswith("CHAIN2_")]
    interleaved = [n for pair in zip(chain1, chain2, strict=False) for n in pair]
    focus.extend(interleaved[: max(0, count - 1)])
    return LineageQuery.create(FINAL_PROCESSOR, "y", index, focus=focus)
