"""Iteration strategy trees — Taverna's full combinator expressions.

The paper formalizes the default behaviour (every mismatched port combined
with the n-ary cross product) and notes in footnote 7 that Taverna also
offers a *dot* ("zip") combinator "as well as constructors that allow
these operators to be combined into complex expressions".  This module
implements those expressions: a strategy is a tree whose leaves are input
ports and whose internal nodes are ``cross`` or ``dot`` combinators, e.g.

    {"cross": [{"dot": ["x1", "x2"]}, "x3"]}

meaning: zip ``x1`` with ``x2`` element-wise, then cross the zipped stream
with ``x3``.  The strings ``"cross"`` and ``"dot"`` remain available as
sugar for a flat tree over all ports in declared order.

Two structural facts make strategy trees compose cleanly with the paper's
index machinery:

* the *iteration level* of a node is the sum of child levels under
  ``cross`` and the (shared) maximum under ``dot``; and
* every leaf port's index fragment is a **contiguous slice** of the
  instance index ``q`` — ``cross`` partitions ``q`` among its children in
  order, ``dot`` hands all of its children the same slice.  So the static
  ``(offset, length)`` layout that drives the index projection rule
  (Prop. 1 / Def. 4) extends verbatim to arbitrary trees, and INDEXPROJ
  works unchanged over workflows that use them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple, Union

from repro.values import nested
from repro.values.index import Index


class StrategyError(ValueError):
    """Raised for malformed strategy specifications."""


@dataclass(frozen=True)
class PortLeaf:
    """A leaf: one input port."""

    port: str


@dataclass(frozen=True)
class Combinator:
    """An internal node: ``kind`` is ``"cross"`` or ``"dot"``."""

    kind: str
    children: Tuple["StrategyNode", ...]


StrategyNode = Union[PortLeaf, Combinator]

#: What a processor may declare as its ``iteration``: the sugar strings or
#: a nested dict/list expression.
StrategySpec = Union[str, Mapping[str, Any]]


def parse_strategy(spec: StrategySpec, ports: Sequence[str]) -> StrategyNode:
    """Parse a strategy specification against the declared input ports.

    Every input port must appear exactly once in the tree.  The sugar
    strings expand to a single flat combinator over all ports in declared
    order; a processor with no inputs parses to an empty combinator.

    >>> parse_strategy("cross", ["a", "b"])
    Combinator(kind='cross', children=(PortLeaf(port='a'), PortLeaf(port='b')))
    """
    if isinstance(spec, str):
        if spec not in ("cross", "dot"):
            raise StrategyError(f"unknown iteration strategy {spec!r}")
        return Combinator(spec, tuple(PortLeaf(p) for p in ports))
    node = _parse_node(spec)
    mentioned = _collect_ports(node)
    duplicates = {p for p in mentioned if mentioned.count(p) > 1}
    if duplicates:
        raise StrategyError(f"port(s) {sorted(duplicates)} appear more than once")
    missing = set(ports) - set(mentioned)
    unknown = set(mentioned) - set(ports)
    if missing:
        raise StrategyError(f"strategy does not mention input port(s) {sorted(missing)}")
    if unknown:
        raise StrategyError(f"strategy mentions unknown port(s) {sorted(unknown)}")
    return node


def _parse_node(spec: Any) -> StrategyNode:
    if isinstance(spec, str):
        return PortLeaf(spec)
    if isinstance(spec, Mapping):
        if len(spec) != 1:
            raise StrategyError(
                f"combinator node must have exactly one key, got {sorted(spec)}"
            )
        kind, children = next(iter(spec.items()))
        if kind not in ("cross", "dot"):
            raise StrategyError(f"unknown combinator {kind!r}")
        if not isinstance(children, Sequence) or isinstance(children, str):
            raise StrategyError(f"combinator {kind!r} needs a list of children")
        if not children:
            raise StrategyError(f"combinator {kind!r} has no children")
        return Combinator(kind, tuple(_parse_node(child) for child in children))
    raise StrategyError(f"malformed strategy node {spec!r}")


def _collect_ports(node: StrategyNode) -> List[str]:
    if isinstance(node, PortLeaf):
        return [node.port]
    ports: List[str] = []
    for child in node.children:
        ports.extend(_collect_ports(child))
    return ports


def strategy_to_spec(node: StrategyNode) -> Any:
    """Inverse of :func:`parse_strategy` (canonical dict form)."""
    if isinstance(node, PortLeaf):
        return node.port
    return {node.kind: [strategy_to_spec(child) for child in node.children]}


# ---------------------------------------------------------------------------
# Static analysis: levels and fragment layouts
# ---------------------------------------------------------------------------


def node_level(node: StrategyNode, deltas: Mapping[str, int]) -> int:
    """The number of index positions this subtree contributes.

    ``dot`` requires its *iterating* children (level > 0) to agree on a
    single level; children with level 0 are broadcast.
    """
    if isinstance(node, PortLeaf):
        return max(deltas[node.port], 0)
    child_levels = [node_level(child, deltas) for child in node.children]
    if node.kind == "cross":
        return sum(child_levels)
    iterating = [level for level in child_levels if level > 0]
    if iterating and len(set(iterating)) > 1:
        raise StrategyError(
            f"dot iteration requires equal positive mismatches, got {child_levels}"
        )
    return max(child_levels, default=0)


def fragment_offsets(
    node: StrategyNode, deltas: Mapping[str, int], offset: int = 0
) -> Dict[str, Tuple[int, int]]:
    """Per-port ``(offset, length)`` slices of the instance index ``q``.

    ``cross`` advances the offset by each child's level; ``dot`` gives all
    children the same starting offset (broadcast children keep length 0).
    """
    if isinstance(node, PortLeaf):
        return {node.port: (offset, max(deltas[node.port], 0))}
    layout: Dict[str, Tuple[int, int]] = {}
    if node.kind == "cross":
        cursor = offset
        for child in node.children:
            layout.update(fragment_offsets(child, deltas, cursor))
            cursor += node_level(child, deltas)
    else:
        for child in node.children:
            layout.update(fragment_offsets(child, deltas, offset))
    return layout


# ---------------------------------------------------------------------------
# Evaluation structures
# ---------------------------------------------------------------------------
#
# A strategy node evaluates to a *struct*: a nested list, `level` deep,
# whose leaves are dicts mapping each port in the subtree to the
# (sub-value, fragment) pair one processor instance will consume.  Structs
# compose: cross grafts the right struct under every leaf of the left;
# dot zips shape-identical structs together.


_Leaf = Dict[str, Tuple[Any, Index]]


def build_struct(
    node: StrategyNode, bindings: Mapping[str, Tuple[Any, int]]
) -> Any:
    """Evaluate the strategy tree over bound values.

    ``bindings`` maps each port to ``(value, delta)`` with delta already
    clamped to >= 0 (negative mismatches are repaired by wrapping before
    evaluation).  Returns the struct described above.
    """
    if isinstance(node, PortLeaf):
        value, delta = bindings[node.port]
        return _leaf_struct(node.port, value, delta, Index())
    if node.kind == "cross":
        struct: Any = {}
        first = True
        for child in node.children:
            child_struct = build_struct(child, bindings)
            struct = child_struct if first else _graft(struct, child_struct)
            first = False
        return struct
    # dot: zip shape-identical children; broadcast level-0 children.
    child_structs = [build_struct(child, bindings) for child in node.children]
    iterating = [s for s in child_structs if isinstance(s, list)]
    broadcast = [s for s in child_structs if not isinstance(s, list)]
    if not iterating:
        merged: _Leaf = {}
        for leaf in child_structs:
            merged.update(leaf)
        return merged
    zipped = iterating[0]
    for other in iterating[1:]:
        zipped = _zip_structs(zipped, other)
    for leaf in broadcast:
        zipped = _merge_broadcast(zipped, leaf)
    return zipped


def _leaf_struct(port: str, value: Any, delta: int, prefix: Index) -> Any:
    if delta == 0:
        return {port: (value, prefix)}
    if not nested.is_collection(value):
        raise StrategyError(
            f"port {port!r} needs {delta} more iteration level(s) but holds "
            f"atomic value {value!r}"
        )
    return [
        _leaf_struct(port, element, delta - 1, prefix.extended(position))
        for position, element in enumerate(value)
    ]


def _graft(left: Any, right: Any) -> Any:
    """Replace every leaf of ``left`` with ``right`` merged into it."""
    if isinstance(left, list):
        return [_graft(element, right) for element in left]
    return _merge_into(right, left)


def _merge_into(struct: Any, leaf: _Leaf) -> Any:
    if isinstance(struct, list):
        return [_merge_into(element, leaf) for element in struct]
    merged = dict(leaf)
    merged.update(struct)
    return merged


def _zip_structs(left: Any, right: Any) -> Any:
    if isinstance(left, list) != isinstance(right, list):
        raise StrategyError("dot iteration over structurally unequal values")
    if not isinstance(left, list):
        merged = dict(left)
        merged.update(right)
        return merged
    if len(left) != len(right):
        raise StrategyError(
            f"dot iteration requires equal list lengths, got "
            f"{sorted({len(left), len(right)})}"
        )
    return [_zip_structs(a, b) for a, b in zip(left, right, strict=True)]


def _merge_broadcast(struct: Any, leaf: _Leaf) -> Any:
    if isinstance(struct, list):
        return [_merge_broadcast(element, leaf) for element in struct]
    merged = dict(leaf)
    merged.update(struct)
    return merged


def iterate_struct(struct: Any):
    """Yield ``(q, leaf)`` for every leaf, in document order."""
    yield from _iterate(struct, Index())


def _iterate(struct: Any, q: Index):
    if isinstance(struct, list):
        for position, element in enumerate(struct):
            yield from _iterate(element, q.extended(position))
    else:
        yield q, struct


def map_struct(struct: Any, function):
    """Apply ``function`` to every leaf, preserving nesting."""
    if isinstance(struct, list):
        return [map_struct(element, function) for element in struct]
    return function(struct)
