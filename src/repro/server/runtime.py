"""Asyncio runtime of the provenance query server.

:class:`ProvenanceServer` binds a :class:`~repro.server.app.ServerApp`
to a TCP listener and runs the per-connection HTTP loop: parse one
request, dispatch to the app, write the response, repeat while the
client keeps the connection alive.  One slow *store* cannot stall the
loop — query work runs on the admission-controlled worker pool — and
one misbehaving *connection* only costs its own task.

Two entry points:

* :func:`ProvenanceServer.serve_forever` — the CLI path
  (``repro-prov serve``): bind, log the URL, run until cancelled.
* :class:`ServerThread` — a context manager that runs the whole server
  (loop included) on a daemon thread and hands back the base URL; the
  conformance/backpressure tests and ``bench_server`` drive real
  sockets through it without an event loop of their own.
"""

from __future__ import annotations

import asyncio
import logging
import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.obs.core import Observability
from repro.obs.sink import SpanSink
from repro.server.admission import (
    DEFAULT_MAX_QUEUE,
    DEFAULT_MAX_WORKERS,
    DEFAULT_TIMEOUT,
    AdmissionController,
)
from repro.server.app import ServerApp
from repro.server.http import ProtocolError, Response, read_request
from repro.server.registry import TenantRegistry

logger = logging.getLogger("repro")


@dataclass
class ServerConfig:
    """Knobs of one server instance (see docs/SERVER.md)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0: pick a free port, read it back via .port
    max_workers: int = DEFAULT_MAX_WORKERS
    max_queue: int = DEFAULT_MAX_QUEUE
    request_timeout: float = DEFAULT_TIMEOUT
    max_open_tenants: int = 8
    #: Directory of per-tenant trace databases (path mode); ``None``
    #: for registries populated explicitly.
    tenant_root: Optional[str] = None
    #: Create missing tenant databases on first touch (path mode).
    create_tenants: bool = False
    obs: Observability = field(default_factory=Observability)
    #: Head-based sampling rate for request traces (1.0: keep all).
    trace_sample: float = 1.0
    #: Capacity of the in-memory ring behind ``/v1/traces/...``.
    trace_ring: int = 512
    #: Optional JSONL file every finished trace is appended to.
    trace_log: Optional[str] = None
    #: Record queries slower than this into the per-tenant slow-query
    #: journal; ``None`` disables the journal entirely.
    slowlog_threshold_ms: Optional[float] = None
    #: Slow-query records kept in memory per tenant.
    slowlog_ring: int = 256
    #: Open tenant stores run-sharded across this many SQLite shard
    #: files (docs/STORAGE.md); ``None`` keeps single-file stores.
    shards: Optional[int] = None


class ProvenanceServer:
    """Own the listener, the app, and their shared lifecycles."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        registry: Optional[TenantRegistry] = None,
        app: Optional[ServerApp] = None,
    ) -> None:
        self.config = config if config is not None else ServerConfig()
        obs = self.config.obs
        if obs.enabled:
            obs.tracer.set_sampling(self.config.trace_sample)
            if obs.tracer.sink is None:
                obs.tracer.sink = SpanSink(
                    capacity=self.config.trace_ring,
                    path=self.config.trace_log,
                )
        self.registry = registry if registry is not None else TenantRegistry(
            root=self.config.tenant_root,
            max_open=self.config.max_open_tenants,
            create=self.config.create_tenants,
            obs=obs,
            slowlog_threshold_ms=self.config.slowlog_threshold_ms,
            slowlog_ring=self.config.slowlog_ring,
            shards=self.config.shards,
        )
        self.admission = AdmissionController(
            max_workers=self.config.max_workers,
            max_queue=self.config.max_queue,
            timeout=self.config.request_timeout,
            obs=obs,
        )
        self.app = app if app is not None else ServerApp(
            self.registry, admission=self.admission, obs=obs
        )
        self._server: Optional[asyncio.base_events.Server] = None

    # -- lifecycle --------------------------------------------------------

    @property
    def port(self) -> int:
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not listening")
        return self._server.sockets[0].getsockname()[1]

    @property
    def url(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        logger.info("repro-prov server listening on %s", self.url)

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.admission.close()
        self.registry.close()

    async def serve_forever(self) -> None:
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await self.stop()

    # -- connection loop --------------------------------------------------

    async def _serve_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader, writer)
                except ProtocolError as exc:
                    writer.write(
                        Response.json(
                            {"error": {"code": "protocol-error",
                                       "message": exc.message}},
                            status=exc.status,
                        ).serialize(keep_alive=False)
                    )
                    await writer.drain()
                    return
                except (asyncio.IncompleteReadError, ConnectionError):
                    return
                if request is None:
                    return
                response = await self.app.handle(request)
                keep_alive = request.keep_alive and response.status < 500
                writer.write(response.serialize(keep_alive=keep_alive))
                await writer.drain()
                if not keep_alive:
                    return
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError, asyncio.CancelledError):
                # CancelledError: shutdown raced the close handshake; the
                # transport is torn down either way.
                pass


class ServerThread:
    """Run a :class:`ProvenanceServer` on a daemon thread (tests/bench).

    ::

        with ServerThread(registry=my_registry) as url:
            client = ServerClient(url)
            ...

    The event loop lives entirely on the background thread; entering the
    context blocks until the listener is bound (so ``url`` is final) and
    exiting cancels the loop and joins the thread.
    """

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        registry: Optional[TenantRegistry] = None,
        app: Optional[ServerApp] = None,
    ) -> None:
        self.server = ProvenanceServer(
            config=config, registry=registry, app=app
        )
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def main() -> None:
            try:
                await self.server.start()
            except BaseException as exc:  # noqa: BLE001 - report to starter
                self._startup_error = exc
                self._started.set()
                return
            self._started.set()
            assert self.server._server is not None
            try:
                await self.server._server.serve_forever()
            except asyncio.CancelledError:
                pass
            finally:
                await self.server.stop()

        try:
            loop.run_until_complete(main())
            # Let cancelled connection tasks unwind before closing the
            # loop (else: "Task was destroyed but it is pending").
            pending = asyncio.all_tasks(loop)
            if pending:
                for task in pending:
                    task.cancel()
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
        finally:
            loop.close()

    def start(self) -> str:
        self._thread = threading.Thread(
            target=self._run, name="repro-server", daemon=True
        )
        self._thread.start()
        self._started.wait(timeout=10)
        if self._startup_error is not None:
            raise RuntimeError(
                f"server failed to start: {self._startup_error}"
            ) from self._startup_error
        if not self._started.is_set():
            raise RuntimeError("server did not start within 10s")
        return self.server.url

    def stop(self) -> None:
        loop, thread = self._loop, self._thread
        if loop is not None and thread is not None and thread.is_alive():
            def _cancel_all() -> None:
                for task in asyncio.all_tasks(loop):
                    task.cancel()

            try:
                loop.call_soon_threadsafe(_cancel_all)
            except RuntimeError:
                pass  # loop already closed (clean shutdown race)
            thread.join(timeout=10)

    def __enter__(self) -> str:
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
