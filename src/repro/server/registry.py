"""Multi-tenant store registry: lazily opened, LRU-bounded services.

Each tenant is one :class:`~repro.service.ProvenanceService` — its own
trace database, caches, and registered workflows.  The server resolves a
tenant per request (path prefix ``/t/{tenant}/...`` or the
``X-Repro-Tenant`` header) and the registry owns the service lifecycle:

* **path mode** — tenants map to ``<root>/<tenant>.db``; a database is
  opened on first touch and a ``setup`` hook registers the workflows it
  will answer for.  Unknown tenants (no database file) 404 unless the
  registry was built with ``create=True``.
* **explicit mode** — tests and embedded deployments register factories
  (or live service instances) per tenant; no filesystem involved.

Open handles are LRU-bounded: touching a tenant moves it to the front,
and opening one beyond ``max_open`` closes the least recently used
*lazily-opened* service (explicitly registered instances are pinned —
the registry did not create them, so it never closes them on eviction).
A closed tenant transparently re-opens on its next request; SQLite plus
the write-generation machinery make that safe, if cold.

The registry is thread-safe; eviction counters (``server.tenant_opens``,
``server.tenant_evictions``) land in the shared server metrics.
"""

from __future__ import annotations

import os
import re
import threading
from collections import OrderedDict
from typing import Callable, Dict, List, Optional

from repro.obs.core import NO_OBS, Observability
from repro.obs.slowlog import SlowQueryJournal, slowlog_sidecar_path
from repro.query.views import UserView
from repro.server.errors import BadRequest, NotFound
from repro.service import ProvenanceService

#: Tenant names are path segments and file stems — keep them boring.
_TENANT_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]{0,63}$")

DEFAULT_TENANT = "default"
DEFAULT_MAX_OPEN = 8

SetupHook = Callable[[ProvenanceService, str], None]


def validate_tenant(name: str) -> str:
    if not _TENANT_RE.match(name) or ".." in name:
        raise BadRequest(
            "bad-tenant",
            f"invalid tenant name {name!r} (want [A-Za-z0-9][A-Za-z0-9_.-]*)",
        )
    return name


class TenantRegistry:
    """Resolve tenant names to (lazily opened) provenance services."""

    def __init__(
        self,
        root: Optional[str] = None,
        setup: Optional[SetupHook] = None,
        max_open: int = DEFAULT_MAX_OPEN,
        create: bool = False,
        obs: Optional[Observability] = None,
        slowlog_threshold_ms: Optional[float] = None,
        slowlog_ring: int = 256,
        shards: Optional[int] = None,
    ) -> None:
        if max_open < 1:
            raise ValueError(f"max_open must be >= 1, got {max_open}")
        self.root = root
        self.setup = setup
        self.max_open = max_open
        self.create = create
        self.obs = obs if obs is not None else NO_OBS
        #: Lazily opened tenants use the run-sharded backend with this
        #: many shards (``None``: single-file; existing shard
        #: directories reopen sharded either way — see
        #: :func:`repro.storage.open_store`).
        self.shards = shards
        #: Lazily opened tenants get a slow-query journal at this
        #: threshold (``None``: no journal).
        self.slowlog_threshold_ms = slowlog_threshold_ms
        self.slowlog_ring = slowlog_ring
        self._lock = threading.RLock()
        #: LRU of open services, most recently used last.
        self._open: "OrderedDict[str, ProvenanceService]" = OrderedDict()
        #: Tenants the registry opened itself (evictable + closeable).
        self._owned: set = set()
        self._factories: Dict[str, Callable[[], ProvenanceService]] = {}
        self._views: Dict[str, Dict[str, UserView]] = {}
        #: Views available to *every* tenant (CLI ``--views`` file);
        #: per-tenant registrations shadow them by name.
        self._shared_views: Dict[str, UserView] = {}
        self._opens = 0
        self._evictions = 0

    # -- registration -----------------------------------------------------

    def register_service(
        self, tenant: str, service: ProvenanceService
    ) -> None:
        """Pin a live service for ``tenant`` (never evicted or closed)."""
        validate_tenant(tenant)
        with self._lock:
            self._open[tenant] = service
            self._open.move_to_end(tenant)

    def register_factory(
        self, tenant: str, factory: Callable[[], ProvenanceService]
    ) -> None:
        """Register a lazy constructor for ``tenant`` (evictable)."""
        validate_tenant(tenant)
        with self._lock:
            self._factories[tenant] = factory

    def register_view(self, tenant: str, view: UserView) -> None:
        """Attach a named :class:`UserView` usable via ``?view=``."""
        validate_tenant(tenant)
        with self._lock:
            self._views.setdefault(tenant, {})[view.name] = view

    def register_shared_view(self, view: UserView) -> None:
        """Attach a named view visible to every tenant."""
        with self._lock:
            self._shared_views[view.name] = view

    def view(self, tenant: str, name: str) -> UserView:
        with self._lock:
            views = self._views.get(tenant, {})
            if name in views:
                return views[name]
            if name in self._shared_views:
                return self._shared_views[name]
            raise NotFound(
                "unknown-view",
                f"tenant {tenant!r} has no view {name!r}",
                {"known": sorted(set(views) | set(self._shared_views))},
            )

    # -- resolution -------------------------------------------------------

    def _db_path(self, tenant: str) -> str:
        assert self.root is not None
        return os.path.join(self.root, f"{tenant}.db")

    def get(self, tenant: str) -> ProvenanceService:
        """The tenant's service, opening (and possibly evicting) as needed."""
        validate_tenant(tenant)
        with self._lock:
            if tenant in self._open:
                self._open.move_to_end(tenant)
                return self._open[tenant]
            if tenant in self._factories:
                service = self._factories[tenant]()
            elif self.root is not None:
                path = self._db_path(tenant)
                if not self.create and not os.path.exists(path):
                    raise NotFound(
                        "unknown-tenant",
                        f"no trace database for tenant {tenant!r}",
                    )
                # Lazily opened tenants share the server's obs handle, so
                # their store/query counters land in ``/v1/metrics``.
                service = ProvenanceService(
                    path, obs=self.obs if self.obs.enabled else None,
                    shards=self.shards,
                )
                if self.slowlog_threshold_ms is not None:
                    service.slowlog = SlowQueryJournal(
                        threshold_ms=self.slowlog_threshold_ms,
                        capacity=self.slowlog_ring,
                        path=slowlog_sidecar_path(path),
                    )
            else:
                raise NotFound(
                    "unknown-tenant", f"tenant {tenant!r} is not registered"
                )
            if self.setup is not None:
                self.setup(service, tenant)
            self._open[tenant] = service
            self._open.move_to_end(tenant)
            self._owned.add(tenant)
            self._opens += 1
            if self.obs.enabled:
                self.obs.inc("server.tenant_opens")
            self._evict_locked()
            return service

    def _evict_locked(self) -> None:
        evictable = [t for t in self._open if t in self._owned]
        while len(evictable) > self.max_open:
            victim = evictable.pop(0)
            service = self._open.pop(victim)
            self._owned.discard(victim)
            service.close()
            self._evictions += 1
            if self.obs.enabled:
                self.obs.inc("server.tenant_evictions")

    # -- introspection ----------------------------------------------------

    def open_tenants(self) -> List[str]:
        with self._lock:
            return list(self._open)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "open": len(self._open),
                "pinned": len(self._open) - len(
                    self._owned & set(self._open)
                ),
                "max_open": self.max_open,
                "opens": self._opens,
                "evictions": self._evictions,
            }

    def close(self) -> None:
        """Close every service the registry itself opened."""
        with self._lock:
            for tenant in list(self._open):
                if tenant in self._owned:
                    self._open.pop(tenant).close()
            self._owned.clear()
