"""Small blocking HTTP/JSON client for the provenance query server.

Built on stdlib :mod:`http.client` so the conformance suite, the
backpressure tests, and ``bench_server`` all talk to the server over
real sockets without third-party dependencies.  One
:class:`ServerClient` wraps one keep-alive connection and is therefore
*not* thread-safe — load generators create one client per worker
thread, which also matches how independent HTTP clients behave.
"""

from __future__ import annotations

import http.client
import json
from dataclasses import dataclass
from typing import Any, Dict, Optional
from urllib.parse import quote, urlencode, urlsplit


@dataclass
class ApiResponse:
    """Status + parsed body + the response's trace identifiers."""

    status: int
    headers: Dict[str, str]
    body: Any

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300

    @property
    def trace_id(self) -> Optional[str]:
        """The request's trace id (``X-Repro-Trace``), if tracing is on.

        Feed it to ``GET /v1/traces/{trace_id}`` to retrieve the full
        rooted span tree for this request.
        """
        return self.headers.get("x-repro-trace")

    @property
    def traceparent(self) -> Optional[str]:
        """The W3C ``traceparent`` the server emitted, if tracing is on."""
        return self.headers.get("traceparent")

    @property
    def retry_after(self) -> Optional[int]:
        value = self.headers.get("retry-after")
        return int(value) if value is not None else None

    @property
    def error_code(self) -> Optional[str]:
        if isinstance(self.body, dict) and "error" in self.body:
            return self.body["error"].get("code")
        return None


class ServerClient:
    """One keep-alive connection to a repro-prov server."""

    def __init__(
        self,
        base_url: str,
        tenant: Optional[str] = None,
        timeout: float = 60.0,
    ) -> None:
        split = urlsplit(base_url)
        if split.scheme != "http" or split.hostname is None:
            raise ValueError(f"expected an http:// base URL, got {base_url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.tenant = tenant
        self.timeout = timeout
        self._conn: Optional[http.client.HTTPConnection] = None

    # -- plumbing ---------------------------------------------------------

    def _connection(self) -> http.client.HTTPConnection:
        if self._conn is None:
            self._conn = http.client.HTTPConnection(
                self.host, self.port, timeout=self.timeout
            )
        return self._conn

    def close(self) -> None:
        if self._conn is not None:
            self._conn.close()
            self._conn = None

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def request(
        self,
        method: str,
        path: str,
        params: Optional[Dict[str, Any]] = None,
        body: Any = None,
    ) -> ApiResponse:
        target = path
        if params:
            rendered = {
                name: str(value)
                for name, value in params.items()
                if value is not None
            }
            if rendered:
                target = f"{path}?{urlencode(rendered)}"
        headers = {"Accept": "application/json"}
        if self.tenant is not None:
            headers["X-Repro-Tenant"] = self.tenant
        payload = None
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = self._connection()
        try:
            connection.request(method, target, body=payload, headers=headers)
            raw = connection.getresponse()
            data = raw.read()
        except (http.client.HTTPException, ConnectionError, OSError):
            # One reconnect: the server may have closed an idle keep-alive
            # connection between requests.
            self.close()
            connection = self._connection()
            connection.request(method, target, body=payload, headers=headers)
            raw = connection.getresponse()
            data = raw.read()
        content_type = raw.headers.get("Content-Type", "")
        parsed: Any = data.decode("utf-8", "replace")
        if "application/json" in content_type and data:
            parsed = json.loads(parsed)
        if raw.headers.get("Connection", "").lower() == "close":
            self.close()
        return ApiResponse(
            status=raw.status,
            headers={k.lower(): v for k, v in raw.headers.items()},
            body=parsed,
        )

    def get(
        self, path: str, params: Optional[Dict[str, Any]] = None
    ) -> ApiResponse:
        return self.request("GET", path, params=params)

    def post(
        self,
        path: str,
        body: Any,
        params: Optional[Dict[str, Any]] = None,
    ) -> ApiResponse:
        return self.request("POST", path, params=params, body=body)

    # -- endpoint helpers -------------------------------------------------

    def healthz(self) -> ApiResponse:
        return self.get("/healthz")

    def lineage(
        self,
        run: Optional[str] = None,
        node: Optional[str] = None,
        port: Optional[str] = None,
        q: Optional[str] = None,
        **params: Any,
    ) -> ApiResponse:
        run_segment = quote(run if run is not None else "-", safe="")
        if q is not None:
            return self.get(
                f"/v1/lineage/{run_segment}", params={"q": q, **params}
            )
        if node is None or port is None:
            raise ValueError("need either q= or node+port")
        return self.get(
            f"/v1/lineage/{run_segment}/{quote(node, safe='')}/"
            f"{quote(port, safe='')}",
            params=params or None,
        )

    def lineage_batch(self, body: Dict[str, Any]) -> ApiResponse:
        return self.post("/v1/lineage:batch", body)

    def trace(self, trace_id: str) -> ApiResponse:
        return self.get(f"/v1/traces/{quote(trace_id, safe='')}")

    def traces_recent(self, limit: Optional[int] = None) -> ApiResponse:
        return self.get("/v1/traces/recent", params={"limit": limit})

    def slowlog(self, limit: Optional[int] = None) -> ApiResponse:
        return self.get("/v1/slowlog", params={"limit": limit})

    def metrics_window(self, last: Optional[str] = None) -> ApiResponse:
        return self.get("/v1/metrics/window", params={"last": last})
