"""Deterministic JSON encodings of query answers.

The conformance contract (tests/server/test_conformance.py) is that an
HTTP lineage response is **byte-identical** to the in-process answer for
the same query — modulo timings, which genuinely differ per execution.
That only works if both sides share one canonical encoder, so it lives
here and is imported by the server app *and* by tests/benchmarks that
compare against :class:`~repro.service.ProvenanceService` directly.

The encoding splits each response into:

``answer``
    fully deterministic — the canonical query text, the run scope in
    scope order, and per-run bindings sorted by their identity key.
    ``json.dumps(answer, sort_keys=True)`` is the conformance byte
    string.
``meta``
    volatile — wall-clock, SQL round-trip counters, cache provenance.
    Useful to clients, excluded from equality.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.engine.events import Binding
from repro.query.base import MultiRunResult
from repro.query.parser import format_query
from repro.query.views import UserView, group_summary, rollup


def _jsonable(value: Any) -> Any:
    """Round-trip a binding value through the store's own JSON convention."""
    try:
        return json.loads(json.dumps(value, default=repr))
    except (TypeError, ValueError):
        return repr(value)


def encode_binding(binding: Binding) -> Dict[str, Any]:
    return {
        "node": binding.node,
        "port": binding.port,
        "index": binding.index.encode(),
        "value": _jsonable(binding.value),
    }


def encode_answer(
    result: MultiRunResult, view: Optional[UserView] = None
) -> Dict[str, Any]:
    """The deterministic half of a lineage response."""
    bindings: Dict[str, List[Dict[str, Any]]] = {}
    for run_id, per_run in result.per_run.items():
        bindings[run_id] = [
            encode_binding(b)
            for b in sorted(per_run.bindings, key=lambda b: b.key())
        ]
    answer: Dict[str, Any] = {
        "query": format_query(result.query),
        "runs": list(result.per_run),
        "bindings": bindings,
    }
    if view is not None:
        answer["view"] = view.name
        answer["groups"] = {
            run_id: {
                group: [encode_binding(b) for b in group_bindings]
                for group, group_bindings in group_summary(
                    rollup(per_run.bindings, view)
                ).items()
            }
            for run_id, per_run in result.per_run.items()
        }
    return answer


def encode_meta(result: MultiRunResult) -> Dict[str, Any]:
    """The volatile half: timings, round-trips, cache provenance."""
    stats = result.aggregate_stats()
    return {
        "wall_seconds": result.wall_seconds
        if result.wall_seconds is not None
        else result.total_seconds,
        "sql_queries": stats.queries,
        "rows": stats.rows,
        "from_cache": result.from_cache,
    }


def encode_result(
    result: MultiRunResult, view: Optional[UserView] = None
) -> Dict[str, Any]:
    return {
        "answer": encode_answer(result, view=view),
        "meta": encode_meta(result),
    }


def canonical_bytes(answer: Dict[str, Any]) -> bytes:
    """The conformance byte string for one ``answer`` document."""
    return json.dumps(answer, sort_keys=True).encode("utf-8")
