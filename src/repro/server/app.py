"""Route table and request handlers of the provenance query server.

The app is transport-independent: it consumes parsed
:class:`~repro.server.http.Request` objects and produces
:class:`~repro.server.http.Response` objects, so tests can drive it
without sockets and the asyncio runtime (:mod:`repro.server.runtime`)
stays a thin connection loop.

Endpoints (all JSON; ``{tenant}`` optional via ``/t/{tenant}/...`` or
the ``X-Repro-Tenant`` header, defaulting to ``default``):

=====================================  =====================================
``GET /healthz``                       liveness — never enters the worker
                                       pool, so it answers even when the
                                       admission queue is saturated
``GET /v1/metrics``                    Prometheus text exposition of the
                                       server + store + query metrics
``GET /v1/lineage/{run}/{node}/{port}``  one lineage query; ``run`` may be
                                       ``-`` for every stored run
``GET /v1/lineage/{run}?q=lin(...)``   same, query given in the paper's
                                       notation (:mod:`repro.query.parser`)
``POST /v1/lineage:batch``             many queries at once, mapped onto
                                       :meth:`ProvenanceService.lineage_many`
``GET /v1/lint``                       workflow lint findings
``GET /v1/check-query``                static query triage (no trace reads)
``GET /v1/stats``                      store statistics + server occupancy
``GET /v1/cache-stats``                lineage cache stack counters
``GET /v1/traces/recent``              recently finished request traces
``GET /v1/traces/{trace_id}``          one full rooted span tree
``GET /v1/slowlog``                    the tenant's slow-query journal
``GET /v1/metrics/window?last=60s``    recent rps / status mix / p50-p99
=====================================  =====================================

Every request is wrapped in a ``server.request`` span whose context
propagates through admission, the service, the query strategies, and the
store — one trace id for the whole request.  Responses carry that id in
``X-Repro-Trace`` plus a W3C ``traceparent`` header; an incoming
``traceparent`` is adopted, so the server joins a caller's distributed
trace.  The full tree is retrievable afterwards from ``/v1/traces/...``
(backed by the tracer's :class:`~repro.obs.sink.SpanSink`).  The
trace/slowlog/window endpoints answer *outside* the worker pool, like
``/healthz`` — they stay readable while the admission queue is
saturated, which is exactly when they matter.

Query parameters of the lineage endpoints: ``index`` (dotted path),
``focus`` (comma-separated processors), ``view`` + ``groups`` (expand a
registered :class:`~repro.query.views.UserView` into the focus set and
roll the answer up to groups), ``strategy`` (``indexproj`` | ``naive`` |
``auto``), ``cache`` / ``batch`` / ``precheck`` (booleans; ``batch`` also
accepts a chunk size), and ``workers`` (parallel per-run fan-out).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro import __version__
from repro.analysis.lint import run_lint
from repro.obs.core import NO_OBS, NULL_SPAN, Observability
from repro.obs.export import to_prometheus
from repro.obs.sink import SpanSink
from repro.obs.tracer import format_traceparent, parse_traceparent
from repro.obs.window import TimeWindow, parse_window
from repro.provenance.store import BatchConfig
from repro.query.base import LineageQuery
from repro.query.parser import parse_query
from repro.query.views import UserView, focus_for_groups
from repro.server.admission import AdmissionController
from repro.server.codec import encode_result
from repro.server.errors import ApiError, BadRequest, NotFound, map_exception
from repro.server.http import Request, Response
from repro.server.registry import DEFAULT_TENANT, TenantRegistry, validate_tenant
from repro.service import ProvenanceService
from repro.values.index import Index
from repro.workflow.model import WorkflowError

_TRUE = {"1", "true", "yes", "on"}
_FALSE = {"0", "false", "no", "off"}

#: Upper bound on queries in one ``lineage:batch`` request.
MAX_BATCH_QUERIES = 256


def _parse_bool(name: str, text: Optional[str]) -> Optional[bool]:
    if text is None:
        return None
    lowered = text.strip().lower()
    if lowered in _TRUE:
        return True
    if lowered in _FALSE:
        return False
    raise BadRequest(
        "bad-argument", f"parameter {name!r} wants a boolean, got {text!r}"
    )


def _parse_int(name: str, text: Optional[str]) -> Optional[int]:
    if text is None:
        return None
    try:
        return int(text)
    except ValueError:
        raise BadRequest(
            "bad-argument", f"parameter {name!r} wants an integer, got {text!r}"
        ) from None


class ServerApp:
    """The provenance query API over a tenant registry."""

    def __init__(
        self,
        registry: TenantRegistry,
        admission: Optional[AdmissionController] = None,
        obs: Optional[Observability] = None,
        window: Optional[TimeWindow] = None,
    ) -> None:
        self.obs = obs if obs is not None else NO_OBS
        self.registry = registry
        self.admission = (
            admission if admission is not None
            else AdmissionController(obs=self.obs)
        )
        #: Recent-traffic aggregation behind ``/v1/metrics/window``.
        self.window = window if window is not None else TimeWindow()
        # /v1/traces needs somewhere to read finished traces from; give
        # the tracer a default sink unless the runtime configured one.
        if self.obs.enabled and self.obs.tracer.sink is None:
            self.obs.tracer.sink = SpanSink()
        self._started_at = time.time()

    # -- plumbing ---------------------------------------------------------

    def _resolve_tenant(self, request: Request) -> Tuple[str, str]:
        """(tenant, path with any ``/t/{tenant}`` prefix stripped)."""
        path = request.path
        if path == "/t" or path.startswith("/t/"):
            parts = path.split("/", 3)
            if len(parts) < 3 or not parts[2]:
                raise BadRequest(
                    "bad-tenant", "expected /t/{tenant}/<endpoint>"
                )
            rest = "/" + parts[3] if len(parts) > 3 else "/"
            return validate_tenant(parts[2]), rest
        tenant = request.headers.get("x-repro-tenant", DEFAULT_TENANT)
        return validate_tenant(tenant), path

    def _request_span(self, request: Request):
        """The ``server.request`` root span (adopting ``traceparent``)."""
        if not self.obs.enabled:
            return NULL_SPAN
        header = request.headers.get("traceparent")
        if header:
            remote = parse_traceparent(header)
            if remote is not None:
                trace_id, parent_id, sampled = remote
                return self.obs.tracer.remote_span(
                    "server.request", trace_id, parent_id, sampled
                )
        return self.obs.span("server.request")

    async def handle(self, request: Request) -> Response:
        """Route one request inside one ``server.request`` span.

        Every path — success, API error, 429 rejection, 504 deadline —
        closes the span, so even a rejected or truncated request leaves
        a retrievable trace.  The span's attributes carry the request
        envelope (method, path, tenant, status, admission occupancy,
        per-endpoint extras like the parsed query), and the response
        advertises the trace via ``X-Repro-Trace`` + ``traceparent``.
        """
        started = time.perf_counter()
        with self._request_span(request) as span:
            trace: Dict[str, Any] = {}
            try:
                tenant, path = self._resolve_tenant(request)
                trace["tenant"] = tenant
                response = await self._route(request, tenant, path, trace)
            except Exception as exc:  # noqa: BLE001 - single error surface
                error = map_exception(exc)
                trace["error"] = error.code
                headers: List[Tuple[str, str]] = []
                if error.retry_after is not None:
                    headers.append(("Retry-After", str(error.retry_after)))
                response = Response.json(
                    error.to_json(), status=error.status, headers=headers
                )
            elapsed = time.perf_counter() - started
            trace["status"] = response.status
            if span.sampled:
                trace["admission"] = self.admission.depth()
                span.set(method=request.method, path=request.path, **trace)
        if self.obs.enabled:
            response.headers.append(("X-Repro-Trace", span.trace_id))
            response.headers.append(
                ("traceparent",
                 format_traceparent(span.trace_id, span.span_id,
                                    span.sampled)),
            )
            self.obs.inc("server.requests")
            self.obs.inc(f"server.responses_{response.status}")
            self.obs.observe("server.request_seconds", elapsed)
            self.window.record(response.status, elapsed)
        return response

    async def _route(
        self, request: Request, tenant: str, path: str, trace: Dict[str, Any]
    ) -> Response:
        if path in ("/healthz", "/livez"):
            return self._healthz(request)
        if path == "/v1/metrics":
            return self._metrics(request)
        segments = [s for s in path.split("/") if s]
        if len(segments) >= 2 and segments[0] == "v1":
            endpoint = segments[1]
            # Introspection endpoints answer outside the worker pool, so
            # they stay readable while the admission queue is saturated.
            if endpoint in ("traces", "slowlog") or (
                endpoint == "metrics" and segments[2:] == ["window"]
            ):
                if request.method != "GET":
                    raise ApiError(
                        405, "method-not-allowed",
                        f"{request.method} not supported on {path}",
                    )
                if endpoint == "traces":
                    return self._traces(request, segments[2:])
                if endpoint == "slowlog":
                    return self._slowlog(request, tenant)
                return self._metrics_window(request)
            if endpoint == "lineage" and request.method == "GET":
                return await self._lineage(request, tenant, segments[2:], trace)
            if endpoint == "lineage:batch" and request.method == "POST":
                return await self._lineage_batch(request, tenant, trace)
            if len(segments) == 2 and request.method == "GET":
                flat: Dict[str, Callable] = {
                    "lint": self._lint,
                    "check-query": self._check_query,
                    "stats": self._stats,
                    "cache-stats": self._cache_stats,
                }
                if endpoint in flat:
                    return await flat[endpoint](request, tenant)
            if endpoint in ("lineage", "lineage:batch", "lint", "check-query",
                            "stats", "cache-stats"):
                raise ApiError(
                    405, "method-not-allowed",
                    f"{request.method} not supported on {path}",
                )
        raise NotFound("unknown-endpoint", f"no endpoint at {path}")

    async def _admit(self, fn: Callable[[], Any]) -> Any:
        return await self.admission.run(fn)

    # -- liveness + metrics (never pooled) --------------------------------

    def _healthz(self, _request: Request) -> Response:
        return Response.json(
            {
                "status": "ok",
                "version": __version__,
                "uptime_seconds": round(time.time() - self._started_at, 3),
                "admission": self.admission.depth(),
                "tenants_open": len(self.registry.open_tenants()),
            }
        )

    def _metrics(self, _request: Request) -> Response:
        if not self.obs.enabled:
            return Response.text("# metrics disabled\n")
        return Response.text(
            to_prometheus(self.obs),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    def _metrics_window(self, request: Request) -> Response:
        try:
            seconds = parse_window(
                request.param("last"),
                default_seconds=60,
                max_seconds=int(self.window.span_seconds),
            )
        except ValueError as exc:
            raise BadRequest("bad-argument", str(exc)) from None
        report = self.window.report(seconds)
        report["enabled"] = self.obs.enabled
        return Response.json(report)

    def _traces(self, request: Request, segments: List[str]) -> Response:
        sink = self.obs.tracer.sink if self.obs.enabled else None
        if not segments or segments == ["recent"]:
            limit = _parse_int("limit", request.param("limit")) or 50
            traces = sink.recent_dicts(limit) if sink is not None else []
            return Response.json(
                {
                    "enabled": self.obs.enabled,
                    "count": len(traces),
                    "traces": traces,
                }
            )
        if len(segments) != 1:
            raise NotFound(
                "unknown-endpoint",
                "expected /v1/traces/recent or /v1/traces/{trace_id}",
            )
        trace_id = segments[0]
        root = sink.get(trace_id) if sink is not None else None
        if root is None:
            raise NotFound(
                "unknown-trace",
                f"no finished trace {trace_id!r} in the sink "
                "(it may have been evicted, sampled out, or tracing is off)",
            )
        return Response.json({"trace_id": trace_id, "root": root.to_dict()})

    def _slowlog(self, request: Request, tenant: str) -> Response:
        limit = _parse_int("limit", request.param("limit")) or 50
        service = self.registry.get(tenant)
        journal = getattr(service, "slowlog", None)
        if journal is None:
            return Response.json(
                {"enabled": False, "count": 0, "records": []}
            )
        records = journal.recent(limit)
        return Response.json(
            {
                "enabled": True,
                "threshold_ms": journal.threshold_ms,
                "recorded": journal.recorded,
                "count": len(records),
                "records": records,
            }
        )

    # -- lineage ----------------------------------------------------------

    def _lineage_options(
        self, request: Request
    ) -> Dict[str, Any]:
        """Shared query-parameter parsing for the lineage endpoints."""
        strategy = request.param("strategy", "indexproj")
        if strategy not in ("indexproj", "naive", "auto"):
            raise BadRequest(
                "bad-argument",
                f"unknown strategy {strategy!r} "
                "(want indexproj | naive | auto)",
            )
        batch_text = request.param("batch")
        batch: Any = None
        if batch_text is not None:
            lowered = batch_text.strip().lower()
            if lowered in _TRUE or lowered in _FALSE:
                batch = lowered in _TRUE
            else:
                batch = BatchConfig(
                    chunk_size=_parse_int("batch", batch_text)
                )
        precheck = _parse_bool("precheck", request.param("precheck"))
        return {
            "strategy": strategy,
            "cache": _parse_bool("cache", request.param("cache")),
            "batch": batch,
            "workers": _parse_int("workers", request.param("workers")),
            "precheck": True if precheck is None else precheck,
            "compiled": _parse_bool("compiled", request.param("compiled")),
        }

    def _resolve_view(
        self, request: Request, tenant: str
    ) -> Tuple[Optional[UserView], Optional[List[str]]]:
        view_name = request.param("view")
        groups_text = request.param("groups")
        if view_name is None:
            if groups_text is not None:
                raise BadRequest(
                    "bad-argument", "parameter 'groups' requires 'view'"
                )
            return None, None
        view = self.registry.view(tenant, view_name)
        groups = (
            [g for g in groups_text.split(",") if g]
            if groups_text is not None
            else None
        )
        return view, groups

    def _parse_lineage_target(
        self, request: Request, segments: List[str]
    ) -> Tuple[Optional[List[str]], LineageQuery]:
        """(run scope, parsed query) from path segments + parameters."""
        if not segments:
            raise NotFound(
                "unknown-endpoint",
                "expected /v1/lineage/{run}/{node}/{port} or "
                "/v1/lineage/{run}?q=lin(...)",
            )
        run = segments[0]
        runs = None if run in ("-", "_all") else [run]
        q_text = request.param("q")
        if q_text is not None:
            if len(segments) > 1:
                raise BadRequest(
                    "conflicting-query",
                    "give the binding either in the path or via ?q=, not both",
                )
            return runs, parse_query(q_text)
        if len(segments) != 3:
            raise NotFound(
                "unknown-endpoint",
                "expected /v1/lineage/{run}/{node}/{port} "
                "(or pass ?q=lin(...))",
            )
        node, port = segments[1], segments[2]
        index_text = request.param("index", "") or ""
        try:
            index = Index.decode(index_text.strip())
        except ValueError as exc:
            raise BadRequest("bad-argument", str(exc)) from None
        focus_text = request.param("focus", "") or ""
        focus = [name for name in focus_text.split(",") if name]
        return runs, LineageQuery.create(node, port, index, focus)

    async def _lineage(
        self,
        request: Request,
        tenant: str,
        segments: List[str],
        trace: Dict[str, Any],
    ) -> Response:
        runs, query = self._parse_lineage_target(request, segments)
        options = self._lineage_options(request)
        view, groups = self._resolve_view(request, tenant)
        if view is not None:
            if query.focus:
                raise BadRequest(
                    "bad-argument",
                    "'view' expands to the focus set; do not also pass "
                    "'focus' (or a focused ?q=)",
                )
            group_names = (
                groups if groups is not None else list(view.group_names)
            )
            try:
                focus = focus_for_groups(view, group_names)
            except WorkflowError as exc:
                raise NotFound(
                    "unknown-group", str(exc),
                    {"known": list(view.group_names)},
                ) from None
            query = LineageQuery.create(
                query.node, query.port, query.index, focus
            )
        trace["query"] = str(query)

        def work() -> Dict[str, Any]:
            service = self.registry.get(tenant)
            result = service.lineage(
                query,
                runs=runs,
                strategy=options["strategy"],
                batch=options["batch"],
                workers=options["workers"],
                precheck=options["precheck"],
                cache=options["cache"],
                compiled=options["compiled"],
            )
            return encode_result(result, view=view)

        payload = await self._admit(work)
        trace["sql_queries"] = payload["meta"]["sql_queries"]
        return Response.json(payload)

    async def _lineage_batch(
        self, request: Request, tenant: str, trace: Dict[str, Any]
    ) -> Response:
        body = request.json()
        if not isinstance(body, dict):
            raise BadRequest(
                "bad-argument", "expected a JSON object request body"
            )
        raw_queries = body.get("queries")
        if not isinstance(raw_queries, list) or not raw_queries:
            raise BadRequest(
                "bad-argument", "'queries' must be a non-empty array"
            )
        if len(raw_queries) > MAX_BATCH_QUERIES:
            raise ApiError(
                413, "batch-too-large",
                f"at most {MAX_BATCH_QUERIES} queries per batch "
                f"(got {len(raw_queries)})",
            )
        queries: List[LineageQuery] = []
        for position, entry in enumerate(raw_queries):
            if isinstance(entry, str):
                queries.append(parse_query(entry))
            elif isinstance(entry, dict):
                try:
                    queries.append(
                        LineageQuery.create(
                            entry["node"],
                            entry["port"],
                            Index.decode(str(entry.get("index", ""))),
                            entry.get("focus", ()),
                        )
                    )
                except KeyError as exc:
                    raise BadRequest(
                        "bad-argument",
                        f"queries[{position}] is missing field {exc}",
                    ) from None
            else:
                raise BadRequest(
                    "bad-argument",
                    f"queries[{position}] must be a string or an object",
                )
        runs = body.get("runs")
        if runs is not None and (
            not isinstance(runs, list)
            or not all(isinstance(r, str) for r in runs)
        ):
            raise BadRequest("bad-argument", "'runs' must be an array of ids")
        strategy = body.get("strategy", "indexproj")
        if strategy not in ("indexproj", "naive", "auto"):
            raise BadRequest(
                "bad-argument", f"unknown strategy {strategy!r}"
            )
        batch_opt = body.get("batch")
        if isinstance(batch_opt, int) and not isinstance(batch_opt, bool):
            batch_opt = BatchConfig(chunk_size=batch_opt)
        cache = body.get("cache")
        compiled = body.get("compiled")
        if compiled is not None and not isinstance(compiled, bool):
            raise BadRequest(
                "bad-argument", "'compiled' must be a boolean"
            )
        precheck = body.get("precheck", True)
        max_workers = body.get("max_workers", 4)
        if not isinstance(max_workers, int) or max_workers < 1:
            raise BadRequest(
                "bad-argument", "'max_workers' must be a positive integer"
            )
        trace["queries"] = len(queries)

        def work() -> Dict[str, Any]:
            service = self.registry.get(tenant)
            results = service.lineage_many(
                queries,
                max_workers=max_workers,
                runs=runs,
                strategy=strategy,
                batch=batch_opt,
                precheck=bool(precheck),
                cache=cache,
                compiled=compiled,
            )
            return {
                "count": len(results),
                "results": [encode_result(result) for result in results],
            }

        payload = await self._admit(work)
        return Response.json(payload)

    # -- analysis + introspection -----------------------------------------

    async def _lint(self, request: Request, tenant: str) -> Response:
        workflow = request.param("workflow")

        def work() -> Dict[str, Any]:
            service = self.registry.get(tenant)
            names = (
                [workflow] if workflow
                else service.registered_workflows()
            )
            findings: Dict[str, List[Dict[str, Any]]] = {}
            for name in names:
                flow = service.workflow(name)  # NotFound via WorkflowError
                findings[name] = [
                    {
                        "code": f.code,
                        "rule": f.rule,
                        "severity": f.severity,
                        "message": f.message,
                        "location": f.location,
                    }
                    for f in run_lint(flow)
                ]
            return {
                "findings": findings,
                "count": sum(len(v) for v in findings.values()),
            }

        return Response.json(await self._admit(work))

    async def _check_query(self, request: Request, tenant: str) -> Response:
        q_text = request.param("q")
        if q_text is None:
            raise BadRequest("bad-argument", "parameter 'q' is required")
        query = parse_query(q_text)
        runs = _parse_int("runs", request.param("runs"))

        def work() -> Dict[str, Any]:
            service = self.registry.get(tenant)
            plan = service.explain_plan(query, runs=runs)
            report = plan.report
            payload: Dict[str, Any] = {
                "query": str(query),
                "verdict": report.verdict,
                "issues": [
                    {
                        "kind": issue.kind,
                        "message": issue.message,
                        "suggestions": list(issue.suggestions),
                    }
                    for issue in report.issues
                ],
                "reasons": list(report.reasons),
                "chosen_strategy": plan.chosen_strategy,
                "cache_state": plan.cache_state,
                "execution": plan.execution,
                "plan_state": plan.plan_state,
                "stmt_cache_hits": plan.stmt_cache_hits,
                "round_trips": {
                    "unbatched": plan.unbatched_round_trips,
                    "batched": plan.batched_round_trips,
                    "chunk_size": plan.batch_chunk_size,
                },
                "summary": plan.summary(),
            }
            if plan.cost is not None:
                payload["cost"] = {
                    "indexproj_lookups": plan.cost.indexproj_lookups,
                    "naive_lookups": plan.cost.naive_lookups,
                    "recommendation": plan.cost.recommendation,
                }
            return payload

        return Response.json(await self._admit(work))

    async def _stats(self, _request: Request, tenant: str) -> Response:
        def work() -> Dict[str, Any]:
            service = self.registry.get(tenant)
            return {
                "store": service.statistics(),
                "registry": self.registry.stats(),
                "admission": self.admission.depth(),
            }

        return Response.json(await self._admit(work))

    async def _cache_stats(self, _request: Request, tenant: str) -> Response:
        def work() -> Dict[str, Any]:
            service = self.registry.get(tenant)
            return service.cache_stats()

        return Response.json(await self._admit(work))


def default_setup(*registrations) -> Callable[[ProvenanceService, str], None]:
    """Build a registry ``setup`` hook from (flow, registry) pairs.

    Every lazily opened tenant gets the same workflow definitions — the
    deployment shape of one API serving many per-tenant trace databases
    of the same pipelines.
    """

    def setup(service: ProvenanceService, _tenant: str) -> None:
        for flow, processor_registry in registrations:
            service.register_workflow(flow, processor_registry)

    return setup
