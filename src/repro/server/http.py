"""Minimal asyncio HTTP/1.1 framing for the provenance query server.

The runtime environment is stdlib-only, so the server speaks HTTP
directly over :mod:`asyncio` streams rather than through a framework.
The subset implemented here is deliberately small but correct for JSON
APIs: request-line + header parsing with hard limits, ``Content-Length``
bodies, keep-alive with explicit ``Connection: close`` handling, and
``Expect: 100-continue`` acknowledgement (``curl`` sends it for bodies
over 1KiB).  Chunked request bodies are rejected with 411 — every client
this server targets (stdlib ``http.client``, curl with JSON payloads)
sends a length.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

#: Hard parse limits — one oversized request must not take the loop down.
MAX_REQUEST_LINE = 8192
MAX_HEADER_COUNT = 100
MAX_HEADER_LINE = 8192
MAX_BODY_BYTES = 4 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class ProtocolError(Exception):
    """The peer sent bytes this server cannot (or will not) parse."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    #: Decoded path, query string stripped (``/v1/lineage/r1/P/Y``).
    path: str
    #: Multi-valued query parameters (``parse_qs`` semantics).
    query: Dict[str, List[str]]
    #: Header names lower-cased; duplicate headers comma-joined.
    headers: Dict[str, str]
    body: bytes = b""

    def param(self, name: str, default: Optional[str] = None) -> Optional[str]:
        """Last occurrence of a query parameter (or ``default``)."""
        values = self.query.get(name)
        return values[-1] if values else default

    def json(self) -> Any:
        if not self.body:
            return None
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ProtocolError(400, f"malformed JSON body: {exc}") from exc

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"


@dataclass
class Response:
    """One HTTP response ready for serialization."""

    status: int = 200
    headers: List[Tuple[str, str]] = field(default_factory=list)
    body: bytes = b""

    @classmethod
    def json(
        cls,
        payload: Any,
        status: int = 200,
        headers: Optional[List[Tuple[str, str]]] = None,
    ) -> "Response":
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        response = cls(status=status, headers=list(headers or []), body=body)
        response.headers.append(("Content-Type", "application/json"))
        return response

    @classmethod
    def text(
        cls,
        payload: str,
        status: int = 200,
        content_type: str = "text/plain; charset=utf-8",
    ) -> "Response":
        return cls(
            status=status,
            headers=[("Content-Type", content_type)],
            body=payload.encode("utf-8"),
        )

    def serialize(self, keep_alive: bool) -> bytes:
        reason = _REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        names = {name.lower() for name, _ in self.headers}
        for name, value in self.headers:
            lines.append(f"{name}: {value}")
        if "content-length" not in names:
            lines.append(f"Content-Length: {len(self.body)}")
        lines.append(
            "Connection: keep-alive" if keep_alive else "Connection: close"
        )
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


async def _read_line(reader, limit: int, what: str) -> bytes:
    line = await reader.readline()
    if len(line) > limit:
        raise ProtocolError(400, f"{what} exceeds {limit} bytes")
    return line


async def read_request(reader, writer) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on clean EOF.

    Raises :class:`ProtocolError` for malformed or oversized input — the
    connection loop answers with the error status and closes.
    """
    request_line = await _read_line(reader, MAX_REQUEST_LINE, "request line")
    if not request_line:
        return None
    parts = request_line.decode("latin-1").strip().split()
    if len(parts) != 3:
        raise ProtocolError(400, f"malformed request line {parts!r}")
    method, target, version = parts
    if not version.startswith("HTTP/1."):
        raise ProtocolError(400, f"unsupported protocol {version!r}")
    headers: Dict[str, str] = {}
    for _ in range(MAX_HEADER_COUNT + 1):
        line = await _read_line(reader, MAX_HEADER_LINE, "header line")
        if line in (b"\r\n", b"\n", b""):
            break
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header {line!r}")
        key = name.strip().lower()
        text = value.strip()
        headers[key] = f"{headers[key]}, {text}" if key in headers else text
    else:
        raise ProtocolError(400, f"more than {MAX_HEADER_COUNT} headers")
    body = b""
    if "transfer-encoding" in headers:
        raise ProtocolError(411, "chunked request bodies are not supported")
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise ProtocolError(400, "malformed Content-Length") from exc
        if length < 0:
            raise ProtocolError(400, "negative Content-Length")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        if length:
            if headers.get("expect", "").lower() == "100-continue":
                writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
                await writer.drain()
            body = await reader.readexactly(length)
    split = urlsplit(target)
    return Request(
        method=method.upper(),
        path=unquote(split.path),
        query=parse_qs(split.query, keep_blank_values=True),
        headers=headers,
        body=body,
    )
