"""Admission control: a bounded worker pool with explicit backpressure.

The service's query paths are synchronous (SQLite reads on the calling
thread), so the async front end dispatches them to a thread pool — the
same parallel machinery the store's own multi-run fan-out uses.  An
unbounded pool queue would turn overload into silently growing latency;
this controller instead enforces the north-star serving discipline:

* at most ``max_workers`` requests execute concurrently;
* at most ``max_queue`` more may wait; the request *after* that is
  rejected immediately with :class:`~repro.server.errors.QueueFull`
  (HTTP 429 + ``Retry-After``) — the client's signal to back off;
* every admitted request carries a deadline; when it elapses the waiter
  gets :class:`~repro.server.errors.RequestTimeout` (HTTP 504).  The
  worker thread itself cannot be cancelled mid-SQL — it finishes and
  its slot frees naturally, which is exactly the accounting admission
  control needs (a stuck store keeps slots occupied, so new arrivals
  see 429 rather than piling onto a dead backend).

Counters (``server.admitted``, ``server.rejected_queue_full``,
``server.timeouts``) and the ``server.queue_wait_seconds`` histogram
feed the ``/v1/metrics`` endpoint; the live occupancy gauges are
refreshed on every transition.
"""

from __future__ import annotations

import asyncio
import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Optional, TypeVar

from repro.obs.core import NO_OBS, Observability
from repro.server.errors import QueueFull, RequestTimeout

T = TypeVar("T")

DEFAULT_MAX_WORKERS = 4
DEFAULT_MAX_QUEUE = 16
DEFAULT_TIMEOUT = 30.0


class AdmissionController:
    """Bounded-concurrency dispatcher for blocking request work."""

    def __init__(
        self,
        max_workers: int = DEFAULT_MAX_WORKERS,
        max_queue: int = DEFAULT_MAX_QUEUE,
        timeout: float = DEFAULT_TIMEOUT,
        obs: Optional[Observability] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_workers = max_workers
        self.max_queue = max_queue
        self.timeout = timeout
        self.obs = obs if obs is not None else NO_OBS
        self._pool = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="repro-server"
        )
        self._lock = threading.Lock()
        self._inflight = 0
        self._peak_inflight = 0
        self._closed = False

    # -- capacity accounting ---------------------------------------------

    @property
    def capacity(self) -> int:
        """Admitted requests allowed at once (executing + queued)."""
        return self.max_workers + self.max_queue

    def depth(self) -> dict:
        """Point-in-time occupancy (diagnostics + ``/v1/stats``)."""
        with self._lock:
            inflight = self._inflight
            peak = self._peak_inflight
        return {
            "inflight": inflight,
            "executing": min(inflight, self.max_workers),
            "queued": max(0, inflight - self.max_workers),
            "capacity": self.capacity,
            "peak_inflight": peak,
        }

    def retry_after(self) -> int:
        """Advertised backoff: at least a second, at most the deadline."""
        return max(1, min(int(self.timeout), 5))

    # -- dispatch ---------------------------------------------------------

    async def run(
        self,
        fn: Callable[[], T],
        timeout: Optional[float] = None,
    ) -> T:
        """Admit, execute on the pool, and await ``fn()`` with a deadline.

        Raises :class:`QueueFull` (never blocks) when occupancy is at
        capacity, :class:`RequestTimeout` when the deadline elapses
        first, and re-raises whatever ``fn`` itself raised otherwise.
        """
        deadline = self.timeout if timeout is None else timeout
        queued_at = time.perf_counter()
        with self._lock:
            if self._closed:
                raise QueueFull(self._inflight, self.capacity, 1)
            if self._inflight >= self.capacity:
                if self.obs.enabled:
                    self.obs.inc("server.rejected_queue_full")
                raise QueueFull(
                    self._inflight, self.capacity, self.retry_after()
                )
            self._inflight += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)
            inflight = self._inflight
        if self.obs.enabled:
            self.obs.inc("server.admitted")
            self.obs.gauge("server.inflight", inflight)

        def _tracked() -> T:
            if self.obs.enabled:
                self.obs.observe(
                    "server.queue_wait_seconds",
                    time.perf_counter() - queued_at,
                )
            return fn()

        # Carry the caller's context (active span stack, trace id) onto
        # the worker thread: the request's spans keep nesting under the
        # server.request root instead of rooting a fresh tree.  One copy
        # per submission — a Context cannot be entered concurrently.
        ctx = contextvars.copy_context()
        future = self._pool.submit(ctx.run, _tracked)
        future.add_done_callback(self._release)
        try:
            return await asyncio.wait_for(
                asyncio.wrap_future(future), deadline
            )
        except (asyncio.TimeoutError, TimeoutError):
            # The thread (if already running) finishes on its own; the
            # slot stays occupied until then — see module docstring.
            if self.obs.enabled:
                self.obs.inc("server.timeouts")
            raise RequestTimeout(deadline) from None

    def _release(self, _future: Any) -> None:
        with self._lock:
            self._inflight -= 1
            inflight = self._inflight
        if self.obs.enabled:
            self.obs.gauge("server.inflight", inflight)

    def close(self) -> None:
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=False, cancel_futures=True)
