"""``repro.server`` — the network front end over ProvenanceService.

An asyncio HTTP/JSON API (stdlib-only, no framework) that turns the
single-process lineage library into a multi-tenant service: per-tenant
trace stores behind an LRU registry, a bounded worker pool with
admission control (429 on a full queue, 504 on deadline), request-scoped
trace envelopes in ``X-Repro-Trace``, and a Prometheus ``/v1/metrics``
endpoint.  See docs/SERVER.md for the endpoint reference and
``repro-prov serve`` for the CLI entry point.
"""

from repro.server.admission import AdmissionController
from repro.server.app import ServerApp, default_setup
from repro.server.client import ApiResponse, ServerClient
from repro.server.codec import (
    canonical_bytes,
    encode_answer,
    encode_meta,
    encode_result,
)
from repro.server.errors import (
    ApiError,
    BadRequest,
    NotFound,
    QueueFull,
    RequestTimeout,
)
from repro.server.registry import DEFAULT_TENANT, TenantRegistry
from repro.server.runtime import ProvenanceServer, ServerConfig, ServerThread

__all__ = [
    "AdmissionController",
    "ApiError",
    "ApiResponse",
    "BadRequest",
    "DEFAULT_TENANT",
    "NotFound",
    "ProvenanceServer",
    "QueueFull",
    "RequestTimeout",
    "ServerApp",
    "ServerClient",
    "ServerConfig",
    "ServerThread",
    "TenantRegistry",
    "canonical_bytes",
    "default_setup",
    "encode_answer",
    "encode_meta",
    "encode_result",
]
