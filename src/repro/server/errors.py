"""Structured error surface of the provenance query server.

Every failure a request can hit — malformed query text, a query the
static pre-checker rejects, an unknown tenant, an exhausted admission
queue, a busy store — maps onto one :class:`ApiError` with a stable
machine-readable ``code`` (lint-style, mirroring the pre-checker's issue
kinds) and the right HTTP status.  Handlers raise these; the app layer
renders them as a JSON error envelope::

    {"error": {"code": "queue-full", "message": "...", "details": {...}}}

The mapping from library exceptions lives in :func:`map_exception`, so
the service's own error types (:class:`QueryValidationError`,
:class:`StoreBusyError`, :class:`WorkflowError`, ...) surface with
consistent codes no matter which endpoint tripped them.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, Optional

from repro.analysis.precheck import QueryValidationError
from repro.provenance.store import DuplicateRunError, StoreBusyError
from repro.query.parser import QueryParseError
from repro.workflow.model import WorkflowError


class ApiError(Exception):
    """One HTTP-mappable failure: status + stable code + JSON details."""

    def __init__(
        self,
        status: int,
        code: str,
        message: str,
        details: Optional[Dict[str, Any]] = None,
        retry_after: Optional[int] = None,
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code
        self.message = message
        self.details = details or {}
        #: Seconds to advertise in a ``Retry-After`` header (429/503).
        self.retry_after = retry_after

    def to_json(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"code": self.code, "message": self.message}
        if self.details:
            payload["details"] = self.details
        return {"error": payload}


class BadRequest(ApiError):
    def __init__(
        self, code: str, message: str,
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(400, code, message, details)


class NotFound(ApiError):
    def __init__(
        self, code: str, message: str,
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        super().__init__(404, code, message, details)


class QueueFull(ApiError):
    """Admission control rejected the request (bounded queue is full)."""

    def __init__(self, depth: int, capacity: int, retry_after: int) -> None:
        super().__init__(
            429,
            "queue-full",
            f"admission queue is full ({depth}/{capacity} requests in "
            "flight); retry later",
            {"inflight": depth, "capacity": capacity},
            retry_after=retry_after,
        )


class RequestTimeout(ApiError):
    """The per-request deadline elapsed before the store answered."""

    def __init__(self, timeout: float) -> None:
        super().__init__(
            504,
            "deadline-exceeded",
            f"request exceeded the {timeout:g}s server deadline",
            {"timeout_seconds": timeout},
        )


def _validation_error(exc: QueryValidationError) -> ApiError:
    report = exc.report
    return BadRequest(
        "invalid-query",
        str(exc),
        {
            "verdict": report.verdict,
            "issues": [
                {
                    "kind": issue.kind,
                    "message": issue.message,
                    "suggestions": list(issue.suggestions),
                }
                for issue in report.issues
            ],
        },
    )


def map_exception(exc: BaseException) -> ApiError:
    """Fold a library exception into the server's error surface."""
    # Local import: http.py is import-free of this module, but keeping the
    # dependency one-directional at module load avoids ever cycling.
    from repro.server.http import ProtocolError

    if isinstance(exc, ApiError):
        return exc
    if isinstance(exc, ProtocolError):
        # e.g. a malformed JSON body surfacing from Request.json() inside
        # a handler rather than the connection read loop.
        return ApiError(exc.status, "protocol-error", exc.message)
    if isinstance(exc, QueryParseError):
        return BadRequest("parse-error", str(exc))
    if isinstance(exc, QueryValidationError):
        return _validation_error(exc)
    if isinstance(exc, DuplicateRunError):
        return ApiError(409, "duplicate-run", str(exc))
    if isinstance(exc, WorkflowError):
        # Name-resolution failures ("no registered workflow contains node
        # X") are the caller naming something that does not exist here.
        return NotFound("unknown-workflow", str(exc))
    if isinstance(exc, StoreBusyError):
        return ApiError(
            503, "store-busy", str(exc), retry_after=1,
        )
    if isinstance(exc, (asyncio.TimeoutError, TimeoutError)):
        return ApiError(504, "deadline-exceeded", "request timed out")
    if isinstance(exc, ValueError):
        return BadRequest("bad-argument", str(exc))
    return ApiError(500, "internal", f"{type(exc).__name__}: {exc}")
