"""Bounded collection of finished span trees — the trace back end.

A :class:`SpanSink` receives every *sampled* root span the moment it
finishes (the tracer calls :meth:`emit`) and keeps the most recent
``capacity`` traces in a ring, indexed by trace id for O(1) retrieval.
The server's ``GET /v1/traces/recent`` and ``GET /v1/traces/{trace_id}``
endpoints read straight out of this structure.

Optionally every emitted trace is also appended to a JSONL file (one
``sort_keys`` JSON document per line), which survives the process and
can be tailed by external tooling.  The file record is serialized *at
emit time*: a truncated trace — a request that hit its deadline while
its worker was still running — is journalled as-of root completion,
while the in-memory object keeps accumulating late children that the
``/v1/traces`` endpoints then show.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional

from repro.obs.tracer import Span


class SpanSink:
    """Ring of recent traces plus an optional JSONL file journal."""

    def __init__(self, capacity: int = 512, path: Optional[str] = None):
        if capacity < 1:
            raise ValueError("SpanSink capacity must be >= 1")
        self.capacity = capacity
        self.path = path
        self._ring: Deque[Span] = deque()
        self._by_id: Dict[str, Span] = {}
        self._lock = threading.Lock()
        self._emitted = 0

    # -- ingest ----------------------------------------------------------

    def emit(self, root: Span) -> None:
        """Record one finished root span (called by the tracer)."""
        with self._lock:
            if len(self._ring) >= self.capacity:
                evicted = self._ring.popleft()
                # Guard the index delete: an id could in principle have
                # been replaced by a newer emit of the same trace.
                if self._by_id.get(evicted.trace_id) is evicted:
                    del self._by_id[evicted.trace_id]
            self._ring.append(root)
            self._by_id[root.trace_id] = root
            self._emitted += 1
        if self.path:
            line = json.dumps(
                root.to_dict(), sort_keys=True, separators=(",", ":"),
                default=str,
            )
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")

    # -- retrieval -------------------------------------------------------

    def get(self, trace_id: str) -> Optional[Span]:
        """The retained root for ``trace_id``, or ``None``."""
        with self._lock:
            return self._by_id.get(trace_id)

    def recent(self, limit: int = 50) -> List[Span]:
        """The most recent roots, newest first."""
        with self._lock:
            items = list(self._ring)
        items.reverse()
        return items[: max(0, limit)]

    def recent_dicts(self, limit: int = 50) -> List[Dict[str, Any]]:
        """JSON-ready form of :meth:`recent` (serialized at read time)."""
        return [root.to_dict() for root in self.recent(limit)]

    # -- bookkeeping -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    @property
    def emitted(self) -> int:
        """Total roots ever emitted (including since-evicted ones)."""
        with self._lock:
            return self._emitted

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self._by_id.clear()


def load_trace_log(path: str, limit: int = 0) -> List[Dict[str, Any]]:
    """Read a JSONL trace journal back into dictionaries.

    Malformed lines (e.g. a torn tail write after a crash) are skipped.
    ``limit`` > 0 keeps only the last N records.
    """
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue
    except FileNotFoundError:
        return []
    if limit > 0:
        records = records[-limit:]
    return records
