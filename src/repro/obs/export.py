"""Exporters for :mod:`repro.obs` — JSON documents and Prometheus text.

The JSON schema (version tag ``repro.obs/2``) is documented in
``docs/OBSERVABILITY.md`` and checked by :func:`validate_export`; CI
uploads one of these documents per commit so the perf trajectory of the
reproduction is visible over time.  v2 extends every exported span with
the propagation identifiers (``trace_id``/``span_id``/``parent_id``)
that the context-propagated tracer stamps.  The Prometheus exposition
follows the text format (``# HELP``/``# TYPE`` comments, ``_total``
counter suffix, histogram summaries as quantile-labelled series,
escaped label values) closely enough to be scraped and to pass the
conformance parser in ``tests/server/test_prometheus.py``.
"""

from __future__ import annotations

import json
import re
from typing import Any, Dict, List, Optional

from repro.obs.core import Observability

#: Schema identifier embedded in (and required of) every JSON export.
SCHEMA_VERSION = "repro.obs/2"


# -- JSON ----------------------------------------------------------------

def export_document(
    obs: Observability, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """The full observable state as one JSON-serializable document."""
    snapshot = obs.metrics_snapshot()
    return {
        "schema": SCHEMA_VERSION,
        "meta": dict(meta) if meta else {},
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "histograms": snapshot["histograms"],
        "spans": [root.to_dict() for root in obs.span_roots()],
    }


def dump_json(
    obs: Observability, path: str, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Write :func:`export_document` to ``path``; returns the document."""
    document = export_document(obs, meta=meta)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return document


class SchemaError(ValueError):
    """A document does not conform to the ``repro.obs/2`` schema."""


_HISTOGRAM_FIELDS = ("count", "sum", "min", "max", "mean", "p50", "p95", "p99")
_SPAN_FIELDS = (
    "name", "seconds", "attributes", "trace_id", "span_id", "parent_id",
    "children",
)


def _validate_span(span: Dict[str, Any], path: str) -> None:
    for field in _SPAN_FIELDS:
        if field not in span:
            raise SchemaError(f"{path}: span missing field {field!r}")
    if not isinstance(span["name"], str):
        raise SchemaError(f"{path}: span name must be a string")
    if not isinstance(span["seconds"], (int, float)):
        raise SchemaError(f"{path}: span seconds must be a number")
    if not isinstance(span["attributes"], dict):
        raise SchemaError(f"{path}: span attributes must be an object")
    if not isinstance(span["trace_id"], str) or not span["trace_id"]:
        raise SchemaError(f"{path}: span trace_id must be a non-empty string")
    if not isinstance(span["span_id"], str) or not span["span_id"]:
        raise SchemaError(f"{path}: span span_id must be a non-empty string")
    if span["parent_id"] is not None and not isinstance(span["parent_id"], str):
        raise SchemaError(f"{path}: span parent_id must be a string or null")
    if not isinstance(span["children"], list):
        raise SchemaError(f"{path}: span children must be an array")
    for position, child in enumerate(span["children"]):
        _validate_span(child, f"{path}.children[{position}]")


def validate_export(document: Dict[str, Any]) -> None:
    """Raise :class:`SchemaError` unless ``document`` is a valid export."""
    if not isinstance(document, dict):
        raise SchemaError("document must be an object")
    if document.get("schema") != SCHEMA_VERSION:
        raise SchemaError(
            f"schema must be {SCHEMA_VERSION!r}, got {document.get('schema')!r}"
        )
    for section in ("meta", "counters", "gauges", "histograms"):
        if not isinstance(document.get(section), dict):
            raise SchemaError(f"{section} must be an object")
    for name, value in document["counters"].items():
        if not isinstance(value, int) or value < 0:
            raise SchemaError(f"counter {name!r} must be a non-negative int")
    for name, value in document["gauges"].items():
        if not isinstance(value, (int, float)):
            raise SchemaError(f"gauge {name!r} must be a number")
    for name, summary in document["histograms"].items():
        if not isinstance(summary, dict):
            raise SchemaError(f"histogram {name!r} must be an object")
        for field in _HISTOGRAM_FIELDS:
            if not isinstance(summary.get(field), (int, float)):
                raise SchemaError(
                    f"histogram {name!r} missing numeric field {field!r}"
                )
    if not isinstance(document.get("spans"), list):
        raise SchemaError("spans must be an array")
    for position, span in enumerate(document["spans"]):
        _validate_span(span, f"spans[{position}]")


# -- Prometheus ----------------------------------------------------------

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Hand-written HELP texts for the most-scraped series; everything else
#: gets a generated fallback naming the originating instrument.
_PROM_HELP = {
    "server.requests": "HTTP requests accepted by the provenance server",
    "server.inflight": "Admitted HTTP requests currently executing or queued",
    "store.reads": "SQL read round-trips (the paper's cost unit)",
    "store.rows_fetched": "Rows returned by store reads",
    "store.writes": "Committed write transactions",
    "server.request_seconds": "Wall-clock seconds per HTTP request",
    "store.read_seconds": "Seconds per store read round-trip",
}


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_RE.sub("_", name)


def escape_label_value(value: Any) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double-quote and newline are the three characters the
    format requires escaping inside the quoted label value.
    """
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _prom_help(name: str, kind: str) -> str:
    text = _PROM_HELP.get(name, f"repro.obs {kind} {name}")
    # HELP text terminates at end-of-line; keep multi-line inputs legal.
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def to_prometheus(obs: Observability) -> str:
    """Prometheus text exposition of the current metrics snapshot.

    Every exposed metric carries both a ``# HELP`` and a ``# TYPE``
    line, and label values are escaped with :func:`escape_label_value`.
    """
    snapshot = obs.metrics_snapshot()
    lines: List[str] = []
    for name, value in snapshot["counters"].items():
        prom = _prom_name(name) + "_total"
        lines.append(f"# HELP {prom} {_prom_help(name, 'counter')}")
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in snapshot["gauges"].items():
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} {_prom_help(name, 'gauge')}")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {value}")
    for name, summary in snapshot["histograms"].items():
        prom = _prom_name(name)
        lines.append(f"# HELP {prom} {_prom_help(name, 'histogram')}")
        lines.append(f"# TYPE {prom} summary")
        for quantile, label in (("p50", "0.50"), ("p95", "0.95"),
                                ("p99", "0.99")):
            escaped = escape_label_value(label)
            lines.append(
                f'{prom}{{quantile="{escaped}"}} {summary[quantile]}'
            )
        lines.append(f"{prom}_sum {summary['sum']}")
        lines.append(f"{prom}_count {summary['count']}")
    return "\n".join(lines) + ("\n" if lines else "")


# -- human-readable rendering -------------------------------------------

def render_metrics_table(snapshot: Dict[str, Dict[str, Any]]) -> str:
    """Aligned text table of a metrics snapshot (CLI ``--profile`` output)."""
    lines: List[str] = []
    if snapshot["counters"]:
        lines.append("counters:")
        width = max(len(name) for name in snapshot["counters"])
        for name, value in snapshot["counters"].items():
            lines.append(f"  {name:<{width}s}  {value}")
    if snapshot["gauges"]:
        lines.append("gauges:")
        width = max(len(name) for name in snapshot["gauges"])
        for name, value in snapshot["gauges"].items():
            lines.append(f"  {name:<{width}s}  {value:g}")
    if snapshot["histograms"]:
        lines.append("histograms (ms for *_seconds, raw otherwise):")
        width = max(len(name) for name in snapshot["histograms"])
        for name, s in snapshot["histograms"].items():
            # Duration histograms record seconds; print them as ms.  All
            # other histograms (fan-out counts, row counts) are unitless.
            scale = 1000.0 if name.endswith("_seconds") else 1.0
            shown = name[: -len("_seconds")] + "_ms" if scale != 1.0 else name
            lines.append(
                f"  {shown:<{width}s}  n={s['count']}"
                f" mean={s['mean'] * scale:.3f}"
                f" p50={s['p50'] * scale:.3f}"
                f" p95={s['p95'] * scale:.3f}"
                f" p99={s['p99'] * scale:.3f}"
                f" max={s['max'] * scale:.3f}"
            )
    return "\n".join(lines)


# -- persisted counters (CLI `repro-prov stats`) -------------------------

def metrics_sidecar_path(db_path: str) -> str:
    """Where profiled CLI invocations persist counters for ``db_path``."""
    return db_path + ".metrics.json"


def persist_counters(obs: Observability, db_path: str) -> str:
    """Merge this run's counters into the store's sidecar file.

    Counters accumulate across invocations (numeric add); the ``invocations``
    meta counter records how many profiled commands contributed.  Returns
    the sidecar path.
    """
    path = metrics_sidecar_path(db_path)
    merged = load_persisted_counters(db_path)
    counters = merged.setdefault("counters", {})
    for name, value in obs.metrics_snapshot()["counters"].items():
        counters[name] = counters.get(name, 0) + value
    merged["schema"] = SCHEMA_VERSION
    merged["invocations"] = merged.get("invocations", 0) + 1
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(merged, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_persisted_counters(db_path: str) -> Dict[str, Any]:
    """The sidecar document for ``db_path`` (empty skeleton if absent)."""
    path = metrics_sidecar_path(db_path)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            loaded = json.load(handle)
        if isinstance(loaded, dict) and isinstance(loaded.get("counters"), dict):
            return loaded
    except (OSError, ValueError):
        pass
    return {"schema": SCHEMA_VERSION, "invocations": 0, "counters": {}}
