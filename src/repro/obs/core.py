"""The :class:`Observability` facade — one handle for tracer + metrics.

Every instrumented layer (engine, store, query strategies, service, CLI)
takes an ``obs`` argument defaulting to :data:`NO_OBS`, the shared
*disabled* instance.  Disabled instrumentation costs one attribute lookup
and a no-op call — no spans are allocated, no locks taken, no counters
touched — so the hot paths stay at their uninstrumented speed.

Two span flavours exist because results must stay timed even when
observability is off:

* :meth:`Observability.span` — pure tracing.  Disabled: returns a shared
  no-op context manager (zero allocation).
* :meth:`Observability.timer` — timing that the caller *reads back*
  (``LineageResult.traversal_seconds`` et al. are derived from it).
  Disabled: a minimal stopwatch (two ``perf_counter`` calls, exactly what
  the code paid before this subsystem existed).  Enabled: a real span, so
  the number the caller stores and the number in the span tree are one
  and the same measurement.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer, _Stopwatch


class _NullSpan:
    """Shared do-nothing span; also its own context manager.

    Carries inert propagation fields (empty ids, ``sampled = False``) so
    request code can read ``span.trace_id`` / branch on ``span.sampled``
    without first checking whether observability is enabled.
    """

    __slots__ = ()

    name = ""
    sampled = False
    trace_id = ""
    span_id = ""
    parent_id: Optional[str] = None
    children: tuple = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    @property
    def seconds(self) -> float:
        return 0.0

    @property
    def attributes(self) -> Dict[str, Any]:
        return {}


NULL_SPAN = _NullSpan()


class Observability:
    """Enabled facade: a tracer plus a metrics registry."""

    enabled = True

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        # Per-facade instrument caches: dict reads are GIL-atomic, so the
        # hot path (inc/observe/gauge on an existing instrument) skips the
        # registry lock + kind check and pays only the instrument's own
        # lock.  Invalidated by reset().
        self._counters: Dict[str, Any] = {}
        self._histograms: Dict[str, Any] = {}
        self._gauges: Dict[str, Any] = {}

    # -- tracing ---------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """A traced (and timed) nested span context manager."""
        return self.tracer.span(name, **attributes)

    def timer(self, name: str, **attributes: Any):
        """A span whose ``.seconds`` the caller reads back into results."""
        return self.tracer.timer(name, **attributes)

    def span_roots(self) -> List[Span]:
        return self.tracer.roots()

    # -- metrics ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        counter = self._counters.get(name)
        if counter is None:
            counter = self._counters[name] = self.metrics.counter(name)
        counter.inc(amount)

    def observe(self, name: str, value: float) -> None:
        histogram = self._histograms.get(name)
        if histogram is None:
            histogram = self._histograms[name] = self.metrics.histogram(name)
        histogram.observe(value)

    def gauge(self, name: str, value: float) -> None:
        gauge = self._gauges.get(name)
        if gauge is None:
            gauge = self._gauges[name] = self.metrics.gauge(name)
        gauge.set(value)

    def counter_value(self, name: str) -> int:
        return self.metrics.counter(name).value

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        return self.metrics.snapshot()

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Clear all collected spans and instruments."""
        self.tracer.reset()
        self.metrics.reset()
        # The registry dropped its instruments; stale cache entries would
        # keep counting into objects no snapshot can see.
        self._counters.clear()
        self._histograms.clear()
        self._gauges.clear()


class _DisabledObservability(Observability):
    """No-op facade; every hook is constant-time and allocation-free
    (except :meth:`timer`, which must still measure — see module doc)."""

    enabled = False

    def __init__(self) -> None:
        # No tracer/metrics are built: nothing would ever reach them, and
        # accidental access via .tracer/.metrics should fail loudly.
        self.tracer = None  # type: ignore[assignment]
        self.metrics = None  # type: ignore[assignment]

    def span(self, name: str, **attributes: Any):
        return NULL_SPAN

    def timer(self, name: str, **attributes: Any):
        return _Stopwatch()

    def span_roots(self) -> List[Span]:
        return []

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def counter_value(self, name: str) -> int:
        return 0

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass


#: Shared disabled instance — the default ``obs`` everywhere.
NO_OBS = _DisabledObservability()
