"""The :class:`Observability` facade — one handle for tracer + metrics.

Every instrumented layer (engine, store, query strategies, service, CLI)
takes an ``obs`` argument defaulting to :data:`NO_OBS`, the shared
*disabled* instance.  Disabled instrumentation costs one attribute lookup
and a no-op call — no spans are allocated, no locks taken, no counters
touched — so the hot paths stay at their uninstrumented speed.

Two span flavours exist because results must stay timed even when
observability is off:

* :meth:`Observability.span` — pure tracing.  Disabled: returns a shared
  no-op context manager (zero allocation).
* :meth:`Observability.timer` — timing that the caller *reads back*
  (``LineageResult.traversal_seconds`` et al. are derived from it).
  Disabled: a minimal stopwatch (two ``perf_counter`` calls, exactly what
  the code paid before this subsystem existed).  Enabled: a real span, so
  the number the caller stores and the number in the span tree are one
  and the same measurement.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import Span, Tracer


class _NullSpan:
    """Shared do-nothing span; also its own context manager."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def set(self, **attributes: Any) -> "_NullSpan":
        return self

    @property
    def seconds(self) -> float:
        return 0.0


NULL_SPAN = _NullSpan()


class _Stopwatch:
    """Timing-only stand-in for a span when observability is disabled."""

    __slots__ = ("started", "ended")

    def __enter__(self) -> "_Stopwatch":
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.ended = time.perf_counter()

    def set(self, **attributes: Any) -> "_Stopwatch":
        return self

    @property
    def seconds(self) -> float:
        end = getattr(self, "ended", None)
        if end is None:
            end = time.perf_counter()
        return end - self.started


class Observability:
    """Enabled facade: a tracer plus a metrics registry."""

    enabled = True

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    # -- tracing ---------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """A traced (and timed) nested span context manager."""
        return self.tracer.span(name, **attributes)

    def timer(self, name: str, **attributes: Any):
        """A span whose ``.seconds`` the caller reads back into results."""
        return self.tracer.span(name, **attributes)

    def span_roots(self) -> List[Span]:
        return self.tracer.roots()

    # -- metrics ---------------------------------------------------------

    def inc(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.metrics.histogram(name).observe(value)

    def gauge(self, name: str, value: float) -> None:
        self.metrics.gauge(name).set(value)

    def counter_value(self, name: str) -> int:
        return self.metrics.counter(name).value

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        return self.metrics.snapshot()

    # -- lifecycle -------------------------------------------------------

    def reset(self) -> None:
        """Clear all collected spans and instruments."""
        self.tracer.reset()
        self.metrics.reset()


class _DisabledObservability(Observability):
    """No-op facade; every hook is constant-time and allocation-free
    (except :meth:`timer`, which must still measure — see module doc)."""

    enabled = False

    def __init__(self) -> None:
        # No tracer/metrics are built: nothing would ever reach them, and
        # accidental access via .tracer/.metrics should fail loudly.
        self.tracer = None  # type: ignore[assignment]
        self.metrics = None  # type: ignore[assignment]

    def span(self, name: str, **attributes: Any):
        return NULL_SPAN

    def timer(self, name: str, **attributes: Any):
        return _Stopwatch()

    def span_roots(self) -> List[Span]:
        return []

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def observe(self, name: str, value: float) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass

    def counter_value(self, name: str) -> int:
        return 0

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        return {"counters": {}, "gauges": {}, "histograms": {}}

    def reset(self) -> None:
        pass


#: Shared disabled instance — the default ``obs`` everywhere.
NO_OBS = _DisabledObservability()
