"""Nested timed spans — the tracing half of :mod:`repro.obs`.

A :class:`Span` is one timed region of execution with a name, key/value
attributes, and child spans; a :class:`Tracer` maintains a per-thread
stack of active spans so nesting falls out of lexical ``with`` scoping
without any caller bookkeeping::

    tracer = Tracer()
    with tracer.span("query", strategy="indexproj"):
        with tracer.span("plan"):
            ...
        with tracer.span("execute", runs=3):
            ...

Threading contract
------------------

Each thread owns an independent active-span stack (``threading.local``),
so spans started on worker threads never interleave with the parent
thread's stack.  A span opened on a thread with an empty stack becomes a
*root*; roots from all threads are collected into one shared list behind
a lock.  This matches how the query layer fans out: the main thread holds
the query-level span while pool workers each contribute their own root
spans (tagged by the caller with a worker/chunk attribute).

Span durations use ``time.perf_counter`` — the same clock the previous
ad-hoc timing code used — so timings derived from spans are directly
comparable with every number the benchmarks have historically reported.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, Iterator, List, Optional


class Span:
    """One timed region: name, attributes, children, perf_counter bounds.

    Spans are created by :meth:`Tracer.span` and finished by leaving the
    ``with`` block (or calling :meth:`finish` directly).  ``seconds`` is
    valid after finishing; reading it on a live span reports the elapsed
    time so far.
    """

    __slots__ = ("name", "attributes", "children", "started", "ended")

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List["Span"] = []
        self.started = time.perf_counter()
        self.ended: Optional[float] = None

    # -- lifecycle -------------------------------------------------------

    def finish(self) -> None:
        if self.ended is None:
            self.ended = time.perf_counter()

    @property
    def seconds(self) -> float:
        """Duration in seconds (elapsed-so-far when still running)."""
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started

    # -- annotation ------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach/overwrite attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    # -- introspection ---------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree, depth-first order."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-exportable form (see docs/OBSERVABILITY.md for the schema)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.seconds * 1000:.3f}ms)"


class _ActiveSpan:
    """Context manager tying one Span to its tracer's thread-local stack."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        self._tracer._push(self.span)
        return self.span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._pop(self.span)


class Tracer:
    """Thread-safe collector of finished span trees."""

    def __init__(self) -> None:
        self._local = threading.local()
        self._roots: List[Span] = []
        self._roots_lock = threading.Lock()

    # -- span creation ---------------------------------------------------

    def span(self, name: str, **attributes: Any) -> _ActiveSpan:
        """Open a nested span; use as a context manager."""
        return _ActiveSpan(self, Span(name, attributes))

    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _push(self, span: Span) -> None:
        stack = self._stack()
        # Restart the clock at entry so time spent between construction
        # and __enter__ (zero in the with-statement idiom) is excluded.
        span.started = time.perf_counter()
        if stack:
            stack[-1].children.append(span)
        else:
            with self._roots_lock:
                self._roots.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        span.finish()
        stack = self._stack()
        # Tolerate out-of-order exits defensively: pop through `span`.
        while stack:
            top = stack.pop()
            if top is span:
                break
            top.finish()  # pragma: no cover - only on misuse

    # -- introspection ---------------------------------------------------

    def current(self) -> Optional[Span]:
        """The calling thread's innermost active span, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def roots(self) -> List[Span]:
        """Snapshot of all collected root spans (any thread)."""
        with self._roots_lock:
            return list(self._roots)

    def find(self, name: str) -> List[Span]:
        """Every collected span named ``name``, across all roots."""
        found: List[Span] = []
        for root in self.roots():
            found.extend(root.find(name))
        return found

    def reset(self) -> None:
        """Drop every collected root (active stacks are left alone)."""
        with self._roots_lock:
            self._roots.clear()


def render_span_tree(roots: List[Span], indent: str = "  ") -> str:
    """ASCII rendering of span trees, one line per span.

    Durations are milliseconds; attributes render as ``key=value`` pairs.
    Used by the CLI's ``--profile`` output and by the docs.
    """
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"{indent * depth}{span.name:<{max(1, 38 - depth * len(indent))}s}"
            f" {span.seconds * 1000:9.3f} ms{suffix}"
        )
        for child in span.children:
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)
