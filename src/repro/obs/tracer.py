"""Nested timed spans — the tracing half of :mod:`repro.obs`.

A :class:`Span` is one timed region of execution with a name, key/value
attributes, identifiers, and child spans; a :class:`Tracer` maintains a
per-*context* stack of active spans so nesting falls out of lexical
``with`` scoping without any caller bookkeeping::

    tracer = Tracer()
    with tracer.span("query", strategy="indexproj"):
        with tracer.span("plan"):
            ...
        with tracer.span("execute", runs=3):
            ...

Propagation contract (v2)
-------------------------

The active-span stack lives in a :class:`contextvars.ContextVar`, not in
``threading.local``.  The difference only shows at concurrency
boundaries:

* A *plain* thread starts with an empty context, so — exactly as under
  the v1 thread-local design — a span opened there becomes an
  independent root.
* A caller that wants a worker to continue *its* trace captures
  ``contextvars.copy_context()`` at submit time and runs the task via
  ``ctx.run(...)``; the worker then sees the submitter's active span as
  its parent and its spans nest under the same trace.  The server's
  admission controller and the parallel query fan-out do exactly this,
  which is how one HTTP request yields one rooted tree even though it
  crosses the asyncio accept loop, the admission pool, and the query
  workers.
* asyncio tasks copy their creator's context automatically, so spans
  opened inside a request coroutine nest for free.

Every span carries W3C-trace-context-shaped identifiers: a 32-hex-digit
``trace_id`` shared by the whole tree, a 16-hex-digit ``span_id``, and
the parent's ``span_id`` in ``parent_id`` (``None`` on locally-created
roots).  Ids come from one process-wide monotonic counter, so reruns of
a deterministic workload produce identical id sequences.  The helpers
:func:`parse_traceparent` / :func:`format_traceparent` convert between
these fields and the ``traceparent`` HTTP header.

Head sampling
-------------

``Tracer.set_sampling(rate)`` keeps roughly ``rate`` of locally-started
root spans, decided deterministically by a stride counter (rate 0.1 →
every 10th root).  An unsampled root is still *timed* — ``timer()``
results stay correct — but it is never collected, never emitted to the
sink, and its descendants are not retained, so the per-request cost
drops to a couple of attribute writes.  A remote parent carrying the
``sampled`` traceparent flag forces the decision either way.

Span durations use ``time.perf_counter`` — the same clock the previous
ad-hoc timing code used — so timings derived from spans are directly
comparable with every number the benchmarks have historically reported.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextvars import ContextVar
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

#: One process-wide id source for both trace and span ids.  ``next()`` on
#: ``itertools.count`` is atomic under the GIL, and starting at 1 means no
#: id ever renders as the all-zero string that W3C trace context forbids.
_IDS = itertools.count(1)


def _new_trace_id() -> str:
    return f"{next(_IDS):032x}"


def _new_span_id() -> str:
    return f"{next(_IDS):016x}"


def parse_traceparent(header: str) -> Optional[Tuple[str, str, bool]]:
    """Parse a W3C ``traceparent`` header.

    Returns ``(trace_id, parent_span_id, sampled)`` or ``None`` when the
    header is malformed (wrong field count/width, non-hex digits, the
    forbidden all-zero ids, or an unknown version).  Per the spec,
    version ``ff`` is invalid and future versions are accepted as long
    as the first four fields parse.
    """
    parts = header.strip().split("-")
    if len(parts) < 4:
        return None
    version, trace_id, span_id, flags = parts[0], parts[1], parts[2], parts[3]
    if len(version) != 2 or len(trace_id) != 32 or len(span_id) != 16:
        return None
    if len(flags) != 2:
        return None
    try:
        int(version, 16)
        int(trace_id, 16)
        int(span_id, 16)
        flag_bits = int(flags, 16)
    except ValueError:
        return None
    if version.lower() == "ff":
        return None
    if version == "00" and len(parts) != 4:
        return None
    if trace_id == "0" * 32 or span_id == "0" * 16:
        return None
    return trace_id, span_id, bool(flag_bits & 0x01)


def format_traceparent(trace_id: str, span_id: str, sampled: bool = True) -> str:
    """Render the W3C ``traceparent`` header for a span."""
    return f"00-{trace_id}-{span_id}-{'01' if sampled else '00'}"


class Span:
    """One timed region: name, attributes, ids, children, clock bounds.

    Spans are created by :meth:`Tracer.span` and finished by leaving the
    ``with`` block (or calling :meth:`finish` directly).  ``seconds`` is
    valid after finishing; reading it on a live span reports the elapsed
    time so far.
    """

    __slots__ = (
        "name",
        "attributes",
        "children",
        "started",
        "ended",
        "trace_id",
        "span_id",
        "parent_id",
        "sampled",
    )

    def __init__(self, name: str, attributes: Optional[Dict[str, Any]] = None):
        self.name = name
        self.attributes: Dict[str, Any] = dict(attributes) if attributes else {}
        self.children: List["Span"] = []
        self.started = time.perf_counter()
        self.ended: Optional[float] = None
        self.trace_id: str = ""
        self.span_id: str = _new_span_id()
        self.parent_id: Optional[str] = None
        self.sampled = True

    # -- lifecycle -------------------------------------------------------

    def finish(self) -> None:
        if self.ended is None:
            self.ended = time.perf_counter()

    @property
    def seconds(self) -> float:
        """Duration in seconds (elapsed-so-far when still running)."""
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started

    # -- annotation ------------------------------------------------------

    def set(self, **attributes: Any) -> "Span":
        """Attach/overwrite attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    # -- introspection ---------------------------------------------------

    def walk(self) -> Iterator["Span"]:
        """Yield this span and every descendant, depth-first.

        The child list is snapshotted per level so a *truncated* trace —
        one whose worker is still appending children after the root
        finished (e.g. a request that hit its 504 deadline) — can be
        walked safely while it is still growing.
        """
        yield self
        for child in list(self.children):
            yield from child.walk()

    def find(self, name: str) -> List["Span"]:
        """Every span named ``name`` in this subtree, depth-first order."""
        return [span for span in self.walk() if span.name == name]

    def to_dict(self) -> Dict[str, Any]:
        """JSON-exportable form (see docs/OBSERVABILITY.md for the schema)."""
        return {
            "name": self.name,
            "seconds": self.seconds,
            "attributes": dict(self.attributes),
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "children": [child.to_dict() for child in list(self.children)],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Span({self.name!r}, {self.seconds * 1000:.3f}ms)"


class _ActiveSpan:
    """Context manager tying one Span to its tracer's context stack."""

    __slots__ = ("_tracer", "span", "_token")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self.span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = self._tracer._push(self.span)
        return self.span

    def __exit__(self, *exc_info: Any) -> None:
        self._tracer._pop(self.span, self._token)
        self._token = None


class _DeadSpan:
    """Shared no-op span for unsampled subtrees; its own context manager.

    Once a root is decided *unsampled*, every descendant ``span()`` call
    resolves to this singleton: no allocation, no clock reads, no stack
    push — the per-span cost of a sampled-out request collapses to one
    attribute check.  All Span surface the instrumented code touches
    (``set``, ``seconds``, the propagation ids) is present and inert.
    """

    __slots__ = ()

    name = ""
    sampled = False
    trace_id = ""
    span_id = ""
    parent_id: Optional[str] = None
    children: Tuple[()] = ()

    def __enter__(self) -> "_DeadSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass

    def set(self, **attributes: Any) -> "_DeadSpan":
        return self

    @property
    def seconds(self) -> float:
        return 0.0

    @property
    def attributes(self) -> Dict[str, Any]:
        return {}


DEAD_SPAN = _DeadSpan()


class _UnsampledRootSpan:
    """A sampled-out root: timed, with real ids, but never collected.

    Response headers still need a genuine ``trace_id``/``span_id`` pair
    and ``timer()`` semantics require the root to be timed, so this is
    not the dead span — but it skips everything else a :class:`Span`
    root pays: no attribute/child storage, no roots-ring lock, no sink
    emission.  It pushes itself onto the context stack so every
    descendant ``span()`` call short-circuits to :data:`DEAD_SPAN`.
    """

    __slots__ = (
        "_tracer", "_token", "trace_id", "span_id", "parent_id",
        "children", "started", "ended",
    )

    name = ""
    sampled = False

    def __init__(
        self,
        tracer: "Tracer",
        trace_id: Optional[str] = None,
        parent_id: Optional[str] = None,
    ) -> None:
        self._tracer = tracer
        self._token = None
        self.trace_id = trace_id if trace_id is not None else _new_trace_id()
        self.span_id = _new_span_id()
        self.parent_id = parent_id
        self.children: List[Span] = []
        self.started = 0.0
        self.ended: Optional[float] = None

    def __enter__(self) -> "_UnsampledRootSpan":
        self.started = time.perf_counter()
        var = self._tracer._var
        self._token = var.set(var.get() + (self,))
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.ended = time.perf_counter()
        try:
            self._tracer._var.reset(self._token)
        except ValueError:  # pragma: no cover - cross-context misuse
            stack = self._tracer._var.get()
            self._tracer._var.set(tuple(s for s in stack if s is not self))
        self._token = None

    def set(self, **attributes: Any) -> "_UnsampledRootSpan":
        return self

    @property
    def seconds(self) -> float:
        end = self.ended if self.ended is not None else time.perf_counter()
        return end - self.started

    @property
    def attributes(self) -> Dict[str, Any]:
        return {}


class _Stopwatch:
    """Timing-only stand-in for a span (disabled obs, unsampled traces)."""

    __slots__ = ("started", "ended")

    sampled = False

    def __enter__(self) -> "_Stopwatch":
        self.started = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.ended = time.perf_counter()

    def set(self, **attributes: Any) -> "_Stopwatch":
        return self

    @property
    def seconds(self) -> float:
        end = getattr(self, "ended", None)
        if end is None:
            end = time.perf_counter()
        return end - self.started


class Tracer:
    """Thread-safe collector of finished span trees.

    ``max_roots`` bounds the retained root list (a ring: oldest roots
    are dropped first), so a long-running server cannot grow memory by
    tracing every request.  Attach a :class:`repro.obs.sink.SpanSink`
    via :attr:`sink` to receive every sampled root as it finishes.
    """

    def __init__(self, max_roots: int = 4096) -> None:
        self._var: ContextVar[Tuple[Span, ...]] = ContextVar(
            "repro_span_stack", default=()
        )
        self._roots: Deque[Span] = deque(maxlen=max_roots)
        self._roots_lock = threading.Lock()
        self._sample_stride = 1
        self._root_counter = itertools.count()
        self.sink = None  # Optional[SpanSink], duck-typed to avoid a cycle

    # -- configuration ---------------------------------------------------

    def set_sampling(self, rate: float) -> None:
        """Keep ~``rate`` of locally-started roots (deterministic stride).

        ``rate >= 1`` keeps everything; ``rate <= 0`` keeps nothing.  The
        decision applies at root creation; children follow their root.
        """
        if rate >= 1.0:
            self._sample_stride = 1
        elif rate <= 0.0:
            self._sample_stride = 0
        else:
            self._sample_stride = max(1, round(1.0 / rate))

    @property
    def sample_stride(self) -> int:
        return self._sample_stride

    # -- span creation ---------------------------------------------------

    def span(self, name: str, **attributes: Any):
        """Open a nested span; use as a context manager.

        Sampled-out paths stay near-free: under an *unsampled* active
        span the call returns the shared :data:`DEAD_SPAN` (never
        pushed, so the stack top stays the unsampled ancestor and the
        whole subtree short-circuits to one attribute check per call),
        and a root the stride counter rejects becomes a lightweight
        :class:`_UnsampledRootSpan` instead of a full :class:`Span`.
        """
        stack = self._var.get()
        if stack:
            if not stack[-1].sampled:
                return DEAD_SPAN
            return _ActiveSpan(self, Span(name, attributes))
        stride = self._sample_stride
        if stride != 1 and (
            stride == 0 or next(self._root_counter) % stride != 0
        ):
            return _UnsampledRootSpan(self)
        return _ActiveSpan(self, Span(name, attributes))

    def timer(self, name: str, **attributes: Any):
        """Like :meth:`span`, but still *timed* when sampled out.

        Query code derives reported wall-times (``lookup_seconds`` and
        friends) from these context managers, so an unsampled request
        gets a plain :class:`_Stopwatch` — real clock reads, no trace
        participation — rather than the zero-duration dead span.
        """
        stack = self._var.get()
        if stack and not stack[-1].sampled:
            return _Stopwatch()
        return self.span(name, **attributes)

    def remote_span(
        self,
        name: str,
        trace_id: str,
        parent_id: str,
        sampled: bool = True,
        **attributes: Any,
    ):
        """Open a root span continuing a *remote* trace (W3C traceparent).

        The span adopts the caller-supplied ``trace_id`` and records the
        remote span as ``parent_id``; the remote ``sampled`` flag forces
        the sampling decision instead of the local stride counter.  Only
        meaningful when no span is active in the current context — under
        an active local span the remote parent is ignored and the span
        nests normally.
        """
        stack = self._var.get()
        if stack:
            return self.span(name, **attributes)
        if not sampled:
            return _UnsampledRootSpan(self, trace_id, parent_id)
        span = Span(name, attributes)
        span.trace_id = trace_id
        span.parent_id = parent_id
        span.sampled = True
        return _ActiveSpan(self, span)

    # -- stack plumbing --------------------------------------------------

    def _push(self, span: Span):
        stack = self._var.get()
        # Restart the clock at entry so time spent between construction
        # and __enter__ (zero in the with-statement idiom) is excluded.
        span.started = time.perf_counter()
        if stack:
            parent = stack[-1]
            span.trace_id = parent.trace_id
            span.parent_id = parent.span_id
            span.sampled = parent.sampled
            if parent.sampled:
                # list.append is atomic under the GIL, so children from
                # propagated worker contexts land safely on the shared
                # parent object.
                parent.children.append(span)
        else:
            # Roots reaching the stack are always sampled — span() routes
            # stride-rejected roots to _UnsampledRootSpan instead — so
            # only the id needs assigning (remote-adopted roots carry one).
            if not span.trace_id:
                span.trace_id = _new_trace_id()
            if span.sampled:
                with self._roots_lock:
                    self._roots.append(span)
        return self._var.set(stack + (span,))

    def _pop(self, span: Span, token: Any) -> None:
        span.finish()
        try:
            if token is not None:
                self._var.reset(token)
            else:  # pragma: no cover - only on misuse
                stack = self._var.get()
                self._var.set(tuple(s for s in stack if s is not span))
        except ValueError:  # pragma: no cover - cross-context misuse
            stack = self._var.get()
            self._var.set(tuple(s for s in stack if s is not span))
        if span.sampled and not self._var.get():
            sink = self.sink
            if sink is not None:
                sink.emit(span)

    # -- introspection ---------------------------------------------------

    def current(self) -> Optional[Span]:
        """The current context's innermost active span, if any."""
        stack = self._var.get()
        return stack[-1] if stack else None

    def roots(self) -> List[Span]:
        """Snapshot of all collected root spans (any thread/context)."""
        with self._roots_lock:
            return list(self._roots)

    def find(self, name: str) -> List[Span]:
        """Every collected span named ``name``, across all roots."""
        found: List[Span] = []
        for root in self.roots():
            found.extend(root.find(name))
        return found

    def reset(self) -> None:
        """Drop every collected root (active stacks are left alone)."""
        with self._roots_lock:
            self._roots.clear()


def render_span_tree(roots: List[Span], indent: str = "  ") -> str:
    """ASCII rendering of span trees, one line per span.

    Durations are milliseconds; attributes render as ``key=value`` pairs.
    Used by the CLI's ``--profile`` output and by the docs.
    """
    lines: List[str] = []

    def emit(span: Span, depth: int) -> None:
        attrs = " ".join(
            f"{key}={value}" for key, value in sorted(span.attributes.items())
        )
        suffix = f"  [{attrs}]" if attrs else ""
        lines.append(
            f"{indent * depth}{span.name:<{max(1, 38 - depth * len(indent))}s}"
            f" {span.seconds * 1000:9.3f} ms{suffix}"
        )
        for child in list(span.children):
            emit(child, depth + 1)

    for root in roots:
        emit(root, 0)
    return "\n".join(lines)
