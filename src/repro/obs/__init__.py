"""repro.obs — unified tracing & metrics for the whole reproduction.

The paper's contribution is a performance argument (the (s1)/(s2) split of
INDEXPROJ, plan sharing across runs, NI's trace-size-dependent traversal),
so the reproduction needs one trustworthy measurement substrate rather
than ad-hoc stopwatches.  This package provides it:

* :class:`~repro.obs.tracer.Tracer` / :class:`~repro.obs.tracer.Span` —
  nested, attributed timed spans with context-propagated parenting (one
  trace id follows a request across asyncio tasks and worker pools) and
  W3C ``traceparent`` interop;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  p50/p95/p99 histograms;
* :class:`~repro.obs.core.Observability` — the facade every layer takes
  as an ``obs=`` argument, with :data:`~repro.obs.core.NO_OBS` as the
  near-zero-cost disabled default;
* :class:`~repro.obs.sink.SpanSink` — bounded ring + optional JSONL file
  of finished traces (backs ``GET /v1/traces/...``);
* :class:`~repro.obs.slowlog.SlowQueryJournal` — threshold-triggered
  structured slow-query records with a per-store JSONL sidecar;
* :class:`~repro.obs.window.TimeWindow` — fixed-interval ring buckets
  answering "rps / p50 / p99 over the last N seconds";
* :mod:`repro.obs.export` — JSON documents (schema ``repro.obs/2``) and
  Prometheus text exposition, plus the CLI's human-readable renderings.

The span/metric inventory emitted by each layer is catalogued in
``docs/OBSERVABILITY.md``.
"""

from repro.obs.core import NO_OBS, NULL_SPAN, Observability
from repro.obs.export import (
    SCHEMA_VERSION,
    SchemaError,
    dump_json,
    escape_label_value,
    export_document,
    load_persisted_counters,
    metrics_sidecar_path,
    persist_counters,
    render_metrics_table,
    to_prometheus,
    validate_export,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.sink import SpanSink, load_trace_log
from repro.obs.slowlog import (
    SlowQueryJournal,
    load_slowlog,
    render_slowlog_table,
    slowlog_sidecar_path,
)
from repro.obs.tracer import (
    Span,
    Tracer,
    format_traceparent,
    parse_traceparent,
    render_span_tree,
)
from repro.obs.window import TimeWindow, parse_window

__all__ = [
    "NO_OBS",
    "NULL_SPAN",
    "Observability",
    "SCHEMA_VERSION",
    "SchemaError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SlowQueryJournal",
    "Span",
    "SpanSink",
    "TimeWindow",
    "Tracer",
    "dump_json",
    "escape_label_value",
    "export_document",
    "format_traceparent",
    "load_persisted_counters",
    "load_slowlog",
    "load_trace_log",
    "metrics_sidecar_path",
    "parse_traceparent",
    "parse_window",
    "persist_counters",
    "render_metrics_table",
    "render_slowlog_table",
    "render_span_tree",
    "slowlog_sidecar_path",
    "to_prometheus",
    "validate_export",
]
