"""repro.obs — unified tracing & metrics for the whole reproduction.

The paper's contribution is a performance argument (the (s1)/(s2) split of
INDEXPROJ, plan sharing across runs, NI's trace-size-dependent traversal),
so the reproduction needs one trustworthy measurement substrate rather
than ad-hoc stopwatches.  This package provides it:

* :class:`~repro.obs.tracer.Tracer` / :class:`~repro.obs.tracer.Span` —
  nested, attributed, thread-safe timed spans;
* :class:`~repro.obs.metrics.MetricsRegistry` — counters, gauges, and
  p50/p95/p99 histograms;
* :class:`~repro.obs.core.Observability` — the facade every layer takes
  as an ``obs=`` argument, with :data:`~repro.obs.core.NO_OBS` as the
  near-zero-cost disabled default;
* :mod:`repro.obs.export` — JSON documents (schema ``repro.obs/1``) and
  Prometheus text exposition, plus the CLI's human-readable renderings.

The span/metric inventory emitted by each layer is catalogued in
``docs/OBSERVABILITY.md``.
"""

from repro.obs.core import NO_OBS, NULL_SPAN, Observability
from repro.obs.export import (
    SCHEMA_VERSION,
    SchemaError,
    dump_json,
    export_document,
    load_persisted_counters,
    metrics_sidecar_path,
    persist_counters,
    render_metrics_table,
    to_prometheus,
    validate_export,
)
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracer import Span, Tracer, render_span_tree

__all__ = [
    "NO_OBS",
    "NULL_SPAN",
    "Observability",
    "SCHEMA_VERSION",
    "SchemaError",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "dump_json",
    "export_document",
    "load_persisted_counters",
    "metrics_sidecar_path",
    "persist_counters",
    "render_metrics_table",
    "render_span_tree",
    "to_prometheus",
    "validate_export",
]
