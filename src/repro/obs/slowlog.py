"""Slow-query journal — threshold-triggered structured query records.

The service layer times every public ``lineage()`` call; whenever one
runs at or above ``threshold_ms`` the :class:`SlowQueryJournal` captures
a structured record of *why* it was slow: the query text, the strategy
that answered it, whether the result cache was warm, the per-level
timings the paper reports (t1 plan / t2 execute), the SQL round-trip and
row counts from ``MultiRunResult.aggregate_stats()``, and — when the
call ran inside a trace — the trace id linking the record to the full
span tree.

Records live in a bounded in-memory ring (served by ``GET /v1/slowlog``)
and, for file-backed stores, are appended to a ``<db>.slowlog.jsonl``
sidecar next to the trace database — the same placement convention as
the ``<db>.metrics.json`` counter sidecar — which ``repro-prov slowlog``
reads back.

Schema of one record (all times in milliseconds)::

    {
      "query":        "lin(<P:Y[0.1]>, {Q})",
      "strategy":     "indexproj",
      "from_cache":   false,
      "wall_ms":      12.4,        # whole service call
      "t1_ms":        0.8,         # plan/traversal level
      "t2_ms":        11.1,        # execute/lookup level
      "runs":         20,
      "bindings":     40,
      "sql_queries":  20,          # == aggregate_stats().queries
      "rows":         120,
      "batch_lookups": 2,          # batched statements (0 = unbatched)
      "batch_keys":   40,
      "batch_chunk_size": 32,
      "threshold_ms": 5.0,
      "trace_id":     "0000...7f"  # "" outside any trace
    }
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Any, Deque, Dict, List, Optional


def slowlog_sidecar_path(db_path: str) -> str:
    """The journal file that belongs to a trace database."""
    return db_path + ".slowlog.jsonl"


class SlowQueryJournal:
    """Bounded ring + optional JSONL sidecar of slow-query records."""

    def __init__(
        self,
        threshold_ms: float = 100.0,
        capacity: int = 256,
        path: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError("SlowQueryJournal capacity must be >= 1")
        self.threshold_ms = float(threshold_ms)
        self.capacity = capacity
        self.path = path
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._recorded = 0

    def record(self, entry: Dict[str, Any]) -> bool:
        """Record ``entry`` iff its ``wall_ms`` meets the threshold.

        Returns True when the record was kept.  The threshold is stamped
        into the record so readers of a merged journal can tell which
        regime produced each line.
        """
        if entry.get("wall_ms", 0.0) < self.threshold_ms:
            return False
        entry = dict(entry)
        entry["threshold_ms"] = self.threshold_ms
        with self._lock:
            self._ring.append(entry)
            self._recorded += 1
        if self.path:
            line = json.dumps(
                entry, sort_keys=True, separators=(",", ":"), default=str
            )
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
        return True

    def recent(self, limit: int = 50) -> List[Dict[str, Any]]:
        """The most recent records, newest first."""
        with self._lock:
            items = list(self._ring)
        items.reverse()
        return items[: max(0, limit)]

    @property
    def recorded(self) -> int:
        """Total records ever kept (including since-evicted ones)."""
        with self._lock:
            return self._recorded

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()


def load_slowlog(path: str, limit: int = 0) -> List[Dict[str, Any]]:
    """Read a slowlog sidecar back into dictionaries (newest last).

    Malformed lines are skipped; a missing file reads as empty.
    ``limit`` > 0 keeps only the last N records.
    """
    records: List[Dict[str, Any]] = []
    try:
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except ValueError:
                    continue
    except FileNotFoundError:
        return []
    if limit > 0:
        records = records[-limit:]
    return records


def render_slowlog_table(records: List[Dict[str, Any]]) -> str:
    """Fixed-width rendering for the ``repro-prov slowlog`` command."""
    if not records:
        return ""
    header = (
        f"{'wall_ms':>9s} {'t1_ms':>8s} {'t2_ms':>8s} {'sql':>5s} "
        f"{'rows':>6s} {'strategy':9s} {'cache':5s} query"
    )
    lines = [header]
    for rec in records:
        lines.append(
            f"{rec.get('wall_ms', 0.0):9.2f} "
            f"{rec.get('t1_ms', 0.0):8.2f} "
            f"{rec.get('t2_ms', 0.0):8.2f} "
            f"{rec.get('sql_queries', 0):5d} "
            f"{rec.get('rows', 0):6d} "
            f"{str(rec.get('strategy', '?')):9s} "
            f"{'warm' if rec.get('from_cache') else 'cold':5s} "
            f"{rec.get('query', '')}"
        )
    return "\n".join(lines)
