"""Time-windowed request aggregation — "what happened in the last N s".

The process-lifetime counters in :mod:`repro.obs.metrics` answer "how
much, ever"; operating a server needs "how fast, *lately*".
:class:`TimeWindow` is a fixed-interval ring of buckets (default 120 x
1 s): each request records its status and latency into the bucket for
the current second, and :meth:`report` merges the buckets covering the
last N seconds into recent rps / status mix / latency quantiles.

Buckets are epoch-stamped: writing into a bucket whose stamp is stale
resets it first, so the ring needs no background sweeper and costs one
lock acquisition per request.  Latency quantiles come from a bounded
keep-first sample per bucket — deterministic, like the histogram
decimation in :mod:`repro.obs.metrics` — which biases toward the start
of each one-second bucket; at the default 64 samples/s that bias is
negligible for the dashboards this feeds.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional


class _Bucket:
    __slots__ = ("epoch", "count", "sum_seconds", "max_seconds",
                 "statuses", "samples")

    def __init__(self) -> None:
        self.epoch = -1
        self.reset(-1)

    def reset(self, epoch: int) -> None:
        self.epoch = epoch
        self.count = 0
        self.sum_seconds = 0.0
        self.max_seconds = 0.0
        self.statuses: Dict[int, int] = {}
        self.samples: List[float] = []


def parse_window(text: str, default_seconds: int = 60,
                 max_seconds: int = 0) -> int:
    """Parse a ``last=`` window spec: ``"30s"``, ``"5m"``, ``"1h"``, ``"45"``.

    Bare integers are seconds.  Raises ``ValueError`` on anything else
    or on non-positive windows; ``max_seconds`` > 0 clamps the result.
    """
    text = (text or "").strip().lower()
    if not text:
        seconds = default_seconds
    else:
        unit = 1
        if text.endswith("s"):
            text = text[:-1]
        elif text.endswith("m"):
            text, unit = text[:-1], 60
        elif text.endswith("h"):
            text, unit = text[:-1], 3600
        if not text.isdigit():
            raise ValueError(f"invalid window spec: {text!r}")
        seconds = int(text) * unit
    if seconds <= 0:
        raise ValueError("window must cover at least one second")
    if max_seconds > 0:
        seconds = min(seconds, max_seconds)
    return seconds


class TimeWindow:
    """Ring of per-interval buckets aggregating request outcomes."""

    def __init__(
        self,
        bucket_seconds: float = 1.0,
        buckets: int = 120,
        samples_per_bucket: int = 64,
        clock=time.monotonic,
    ):
        if bucket_seconds <= 0 or buckets < 2:
            raise ValueError("TimeWindow needs positive buckets")
        self.bucket_seconds = float(bucket_seconds)
        self.samples_per_bucket = samples_per_bucket
        self._clock = clock
        self._buckets = [_Bucket() for _ in range(buckets)]
        self._lock = threading.Lock()
        self._recorded = 0

    @property
    def span_seconds(self) -> int:
        """The widest window this ring can answer for."""
        # The current (partial) bucket is unreliable as the oldest slot,
        # hence len-1.
        return int((len(self._buckets) - 1) * self.bucket_seconds)

    # -- ingest ----------------------------------------------------------

    def record(self, status: int, seconds: float,
               now: Optional[float] = None) -> None:
        """Fold one request outcome into the current bucket."""
        if now is None:
            now = self._clock()
        epoch = int(now / self.bucket_seconds)
        bucket = self._buckets[epoch % len(self._buckets)]
        with self._lock:
            if bucket.epoch != epoch:
                bucket.reset(epoch)
            bucket.count += 1
            bucket.sum_seconds += seconds
            if seconds > bucket.max_seconds:
                bucket.max_seconds = seconds
            bucket.statuses[status] = bucket.statuses.get(status, 0) + 1
            if len(bucket.samples) < self.samples_per_bucket:
                bucket.samples.append(seconds)
            self._recorded += 1

    @property
    def recorded(self) -> int:
        with self._lock:
            return self._recorded

    # -- reporting -------------------------------------------------------

    def report(self, last_seconds: int,
               now: Optional[float] = None) -> Dict[str, Any]:
        """Aggregate over the buckets covering the last ``last_seconds``.

        The window is clamped to what the ring retains.  The report is a
        plain JSON-ready dict; with zero requests in range the latency
        fields are ``None`` and ``rps`` is 0.0.
        """
        if now is None:
            now = self._clock()
        window = max(1, min(int(last_seconds), self.span_seconds))
        now_epoch = int(now / self.bucket_seconds)
        oldest = now_epoch - int(window / self.bucket_seconds) + 1
        count = 0
        total = 0.0
        peak = 0.0
        statuses: Dict[str, int] = {}
        samples: List[float] = []
        with self._lock:
            for bucket in self._buckets:
                if not (oldest <= bucket.epoch <= now_epoch):
                    continue
                count += bucket.count
                total += bucket.sum_seconds
                if bucket.max_seconds > peak:
                    peak = bucket.max_seconds
                for status, n in bucket.statuses.items():
                    key = str(status)
                    statuses[key] = statuses.get(key, 0) + n
                samples.extend(bucket.samples)
        report: Dict[str, Any] = {
            "window_seconds": window,
            "requests": count,
            "rps": round(count / window, 3),
            "statuses": dict(sorted(statuses.items())),
        }
        if count:
            samples.sort()
            report.update(
                mean_ms=round(total / count * 1000, 3),
                max_ms=round(peak * 1000, 3),
                p50_ms=round(_quantile(samples, 0.50) * 1000, 3),
                p95_ms=round(_quantile(samples, 0.95) * 1000, 3),
                p99_ms=round(_quantile(samples, 0.99) * 1000, 3),
            )
        else:
            report.update(mean_ms=None, max_ms=None, p50_ms=None,
                          p95_ms=None, p99_ms=None)
        return report


def _quantile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank quantile over an already-sorted non-empty list."""
    index = round(q * (len(sorted_samples) - 1))
    return sorted_samples[index]
