"""Counters, gauges and histograms — the metrics half of :mod:`repro.obs`.

All instruments are process-local, thread-safe, and cheap: a counter
increment is one lock acquire and an integer add.  Histograms keep exact
count/sum/min/max and a bounded sample buffer for quantiles (p50/p95/p99);
when the buffer fills it is decimated deterministically (every other
retained sample is kept), so long benchmark runs stay bounded in memory
without any randomness — reruns see identical values.

Instruments are owned by a :class:`MetricsRegistry`, which hands out the
same instrument for the same name forever (get-or-create), so callers
never coordinate creation.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional

#: Retained-sample cap per histogram before deterministic decimation.
DEFAULT_RESERVOIR = 4096


class Counter:
    """Monotonic counter."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Counter({self.name!r}, {self._value})"


class Gauge:
    """Last-write-wins instantaneous value."""

    __slots__ = ("name", "_value", "_lock")

    def __init__(self, name: str):
        self.name = name
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta

    @property
    def value(self) -> float:
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Gauge({self.name!r}, {self._value})"


class Histogram:
    """Value distribution with exact aggregates and sampled quantiles."""

    __slots__ = ("name", "_lock", "_count", "_sum", "_min", "_max",
                 "_samples", "_stride", "_skip", "_capacity")

    def __init__(self, name: str, capacity: int = DEFAULT_RESERVOIR):
        self.name = name
        self._lock = threading.Lock()
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: List[float] = []
        self._capacity = max(2, capacity)
        # Deterministic decimation: record every `_stride`-th observation
        # once the buffer has been halved; `_skip` counts toward the next
        # retained sample.
        self._stride = 1
        self._skip = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            if self._skip > 0:
                self._skip -= 1
                return
            self._skip = self._stride - 1
            self._samples.append(value)
            if len(self._samples) >= self._capacity:
                # Halve deterministically; future observations thin out at
                # double the stride so the buffer refills at the new rate.
                self._samples = self._samples[::2]
                self._stride *= 2

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile over the retained samples (q in 0..100)."""
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        rank = max(0, min(len(samples) - 1, round(q / 100.0 * (len(samples) - 1))))
        return samples[int(rank)]

    def summary(self) -> Dict[str, float]:
        """Exportable aggregate: count/sum/min/max/mean + p50/p95/p99."""
        with self._lock:
            count, total = self._count, self._sum
            low, high = self._min, self._max
        return {
            "count": count,
            "sum": total,
            "min": low if low is not None else 0.0,
            "max": high if high is not None else 0.0,
            "mean": (total / count) if count else 0.0,
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Histogram({self.name!r}, n={self._count})"


class MetricsRegistry:
    """Get-or-create owner of named instruments.

    One flat namespace; dotted names (``store.reads``) are the convention
    throughout the codebase.  A name is bound to one instrument kind for
    the registry's lifetime — asking for the same name as a different kind
    raises, which catches typo'd instrumentation early.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[str, Any] = {}

    def _get(self, name: str, kind: type) -> Any:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = self._instruments[name] = kind(name)
            elif not isinstance(instrument, kind):
                raise TypeError(
                    f"metric {name!r} is a {type(instrument).__name__}, "
                    f"not a {kind.__name__}"
                )
            return instrument

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    # -- bulk operations -------------------------------------------------

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Point-in-time view: ``{"counters": {...}, "gauges": {...},
        "histograms": {name: summary}}`` — the exporters' input."""
        with self._lock:
            instruments = dict(self._instruments)
        counters: Dict[str, int] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, float]] = {}
        for name, instrument in sorted(instruments.items()):
            if isinstance(instrument, Counter):
                counters[name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[name] = instrument.value
            else:
                histograms[name] = instrument.summary()
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def reset(self) -> None:
        """Drop every instrument (names become free again)."""
        with self._lock:
            self._instruments.clear()
