"""``repro-prov`` — command-line front end.

Subcommands::

    repro-prov workloads                        list built-in workloads
    repro-prov run --workload gk --db t.db      execute + store a trace
    repro-prov run --flow wf.json --inputs inputs.json --db t.db
    repro-prov query --db t.db --node P --port Y --index 0.1 --focus A,B
    repro-prov bench --experiment fig9 --scale quick
    repro-prov export --workload gk --dot out.dot
    repro-prov stats --db t.db                  sizes + persisted counters
    repro-prov cache-stats --db t.db            cache defaults + counters
    repro-prov lint --workload gk --format sarif --output gk.sarif
    repro-prov plan-lint --baseline plans.lock.json   SQL access-path gate
    repro-prov check-query --workload gk --query 'lin(<P:Y[0]>, {Q})'
    repro-prov serve --db t.db --workload gk --port 8750
    repro-prov slowlog --db t.db                show the slow-query journal

Global flags (before the subcommand):

``--profile``
    collect a full ``repro.obs`` trace of the invocation and print the
    span tree plus the metrics table after the command's own output; for
    file-backed stores the counters are additionally merged into a
    ``<db>.metrics.json`` sidecar that ``repro-prov stats`` reports.
``--profile-export PATH``
    also write the JSON export document (schema ``repro.obs/2``).
``--verbose`` / ``--quiet``
    raise/lower the log level of the ``repro`` logger (diagnostics go to
    stderr; result tables always go to stdout).
``--version``
    print the package version and exit.

The CLI is a thin shell over the library; every capability is equally
available through the Python API (see README quickstart).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from typing import Any, Dict, List, Optional

from repro import __version__
from repro.bench.figures import ALL_EXPERIMENTS, SCALES
from repro.bench.reporting import format_table
from repro.obs import (
    NO_OBS,
    Observability,
    dump_json,
    load_persisted_counters,
    persist_counters,
    render_metrics_table,
    render_span_tree,
)
from repro.provenance.capture import capture_run
from repro.provenance.store import DEFAULT_BATCH_CHUNK, TraceStore
from repro.storage import open_store
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.testbed.generator import chain_product_workflow
from repro.testbed.workloads import (
    file_loading_workload,
    genes2kegg_workload,
    protein_discovery_workload,
)
from repro.values.index import Index
from repro.workflow import serialize
from repro.workflow.dot import to_dot

logger = logging.getLogger("repro")

_WORKLOADS = {
    "gk": genes2kegg_workload,
    "genes2kegg": genes2kegg_workload,
    "pd": protein_discovery_workload,
    "fl": file_loading_workload,
    "protein_discovery": protein_discovery_workload,
    "file_loading": file_loading_workload,
}

_LOG_HANDLER: Optional[logging.Handler] = None


def _configure_logging(verbose: bool, quiet: bool) -> None:
    """(Re)configure the package logger for one CLI invocation.

    The handler is rebuilt each call so it binds the *current*
    ``sys.stderr`` (pytest's capture machinery swaps the stream between
    tests).  Diagnostics never go to stdout: result tables must stay
    machine-readable in shell pipelines.
    """
    global _LOG_HANDLER
    if _LOG_HANDLER is not None:
        logger.removeHandler(_LOG_HANDLER)
    _LOG_HANDLER = logging.StreamHandler(sys.stderr)
    _LOG_HANDLER.setFormatter(logging.Formatter("%(message)s"))
    logger.addHandler(_LOG_HANDLER)
    logger.propagate = False
    if quiet:
        logger.setLevel(logging.ERROR)
    elif verbose:
        logger.setLevel(logging.DEBUG)
    else:
        logger.setLevel(logging.INFO)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-prov",
        description="Fine-grained lineage querying of collection-based "
        "workflow provenance (EDBT 2010 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="collect spans + metrics and print them after the command",
    )
    parser.add_argument(
        "--profile-export", metavar="PATH",
        help="with --profile: also write the repro.obs/2 JSON document",
    )
    parser.add_argument(
        "-v", "--verbose", action="store_true",
        help="debug-level diagnostics on stderr",
    )
    parser.add_argument(
        "-q", "--quiet", action="store_true",
        help="suppress diagnostics below error level",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list built-in workloads")

    run = sub.add_parser("run", help="execute a workflow and store its trace")
    run.add_argument("--workload", choices=sorted(_WORKLOADS), help="built-in workload")
    run.add_argument("--flow", help="workflow definition JSON file")
    run.add_argument("--inputs", help="JSON file with workflow inputs")
    run.add_argument("--synthetic-l", type=int, help="generate the Fig. 5 dataflow")
    run.add_argument("--synthetic-d", type=int, default=10, help="ListSize input")
    run.add_argument("--db", required=True, help="trace database path")
    run.add_argument(
        "--shards", type=int, metavar="N",
        help="store runs hash-partitioned across N SQLite shard files "
        "(--db names the shard directory; see docs/STORAGE.md)",
    )
    run.add_argument("--runs", type=int, default=1, help="number of identical runs")
    run.add_argument(
        "--workers", type=int, default=1,
        help="capture runs concurrently on this many threads",
    )

    query = sub.add_parser("query", help="answer a lineage query")
    query.add_argument("--db", required=True, help="trace database path")
    query.add_argument(
        "--shards", type=int, metavar="N",
        help="open --db as a run-sharded store of N shards (a directory "
        "with a manifest.json is auto-detected without this flag)",
    )
    query.add_argument("--run", help="run id (default: every stored run)")
    query.add_argument(
        "--query",
        dest="query_text",
        help="full query in the paper's notation, e.g. "
        "'lin(<P:Y[0.1]>, {Q, R})' (overrides --node/--port/--index/--focus)",
    )
    query.add_argument("--node")
    query.add_argument("--port")
    query.add_argument("--index", default="", help="dotted index path, e.g. 0.1")
    query.add_argument("--focus", default="", help="comma-separated processors")
    query.add_argument(
        "--strategy", choices=["naive", "indexproj", "auto"],
        default="indexproj",
        help="'auto' picks by the static cost model (repro.analysis)",
    )
    query.add_argument("--flow", help="workflow JSON (required for indexproj)")
    query.add_argument("--workload", choices=sorted(_WORKLOADS))
    query.add_argument("--synthetic-l", type=int)
    query.add_argument(
        "--workers", type=int, default=1,
        help="fan per-run lookups across this many threads (indexproj only)",
    )
    query.add_argument(
        "--cache", action=argparse.BooleanOptionalAction, default=True,
        help="memoize trace lookups across repeats (--no-cache disables; "
        "see docs/CACHING.md)",
    )
    query.add_argument(
        "--batch", action=argparse.BooleanOptionalAction, default=False,
        help="set-based execution: collapse per-key SQL round-trips into "
        "chunked multi-key lookups across runs (see docs/PERFORMANCE.md)",
    )
    query.add_argument(
        "--batch-size", type=int, metavar="N",
        help="lookup keys per batched statement (implies --batch; "
        f"default {DEFAULT_BATCH_CHUNK})",
    )
    query.add_argument(
        "--compiled", action=argparse.BooleanOptionalAction, default=True,
        help="execute through the compiled-plan registry: the traversal "
        "is baked into a prepared SQL program reused across repeats "
        "(--no-compiled forces the interpreted path; "
        "see docs/PERFORMANCE.md)",
    )
    query.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="answer the query N times — warm repeats exercise the cache",
    )

    bench = sub.add_parser("bench", help="reproduce a table/figure")
    bench.add_argument(
        "--experiment",
        choices=sorted(ALL_EXPERIMENTS) + ["all"],
        default="all",
    )
    bench.add_argument("--scale", choices=sorted(SCALES), default="quick")

    export = sub.add_parser("export", help="render a workflow as GraphViz dot")
    export.add_argument("--workload", choices=sorted(_WORKLOADS))
    export.add_argument("--flow", help="workflow JSON file")
    export.add_argument("--synthetic-l", type=int)
    export.add_argument("--dot", required=True, help="output .dot path")

    prov = sub.add_parser("prov-export", help="export a stored trace as PROV JSON")
    prov.add_argument("--db", required=True, help="trace database path")
    prov.add_argument(
        "--shards", type=int, metavar="N",
        help="open --db as a run-sharded store of N shards",
    )
    prov.add_argument("--run", help="run id (default: first stored run)")
    prov.add_argument("--out", required=True, help="output .json path")

    stats = sub.add_parser(
        "stats",
        help="show trace database statistics and persisted obs counters",
    )
    stats.add_argument("--db", required=True, help="trace database path")
    stats.add_argument(
        "--shards", type=int, metavar="N",
        help="open --db as a run-sharded store of N shards "
        "(adds a per-shard breakdown to the report)",
    )

    cache_stats_cmd = sub.add_parser(
        "cache-stats",
        help="show lineage cache defaults and persisted cache.* counters",
    )
    cache_stats_cmd.add_argument(
        "--db", required=True, help="trace database path"
    )

    depths = sub.add_parser("depths", help="print the static depth table")
    depths.add_argument("--workload", choices=sorted(_WORKLOADS))
    depths.add_argument("--flow", help="workflow JSON file")
    depths.add_argument("--synthetic-l", type=int)

    validate_cmd = sub.add_parser("validate", help="structurally check a workflow")
    validate_cmd.add_argument("--workload", choices=sorted(_WORKLOADS))
    validate_cmd.add_argument("--flow", help="workflow JSON file")
    validate_cmd.add_argument("--synthetic-l", type=int)

    impact = sub.add_parser(
        "impact", help="answer a forward (impact) query"
    )
    impact.add_argument("--db", required=True, help="trace database path")
    impact.add_argument(
        "--shards", type=int, metavar="N",
        help="open --db as a run-sharded store of N shards",
    )
    impact.add_argument("--run", help="run id (default: every stored run)")
    impact.add_argument("--node", required=True)
    impact.add_argument("--port", required=True)
    impact.add_argument("--index", default="", help="dotted index path")
    impact.add_argument("--focus", default="", help="comma-separated processors")
    impact.add_argument(
        "--strategy", choices=["naive", "indexproj"], default="indexproj"
    )
    impact.add_argument("--flow", help="workflow JSON (required for indexproj)")
    impact.add_argument("--workload", choices=sorted(_WORKLOADS))
    impact.add_argument("--synthetic-l", type=int)

    explain_cmd = sub.add_parser(
        "explain", help="estimate both strategies' cost for a query"
    )
    explain_cmd.add_argument("--workload", choices=sorted(_WORKLOADS))
    explain_cmd.add_argument("--flow", help="workflow JSON file")
    explain_cmd.add_argument("--synthetic-l", type=int)
    explain_cmd.add_argument("--node", required=True)
    explain_cmd.add_argument("--port", required=True)
    explain_cmd.add_argument("--index", default="")
    explain_cmd.add_argument("--focus", default="")
    explain_cmd.add_argument("--runs", type=int, default=1)

    lint = sub.add_parser(
        "lint",
        help="run the workflow lint engine (rule catalogue: docs/ANALYSIS.md)",
    )
    lint.add_argument("--workload", choices=sorted(_WORKLOADS))
    lint.add_argument("--flow", help="workflow JSON file")
    lint.add_argument("--synthetic-l", type=int)
    lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        dest="lint_format", help="output format (SARIF 2.1.0 for CI upload)",
    )
    lint.add_argument(
        "--output", help="write the report to a file instead of stdout"
    )
    lint.add_argument(
        "--severity", action="append", default=[], metavar="CODE=LEVEL",
        help="override a rule's severity, e.g. W004=error (repeatable)",
    )
    lint.add_argument(
        "--suppress", default="", metavar="CODES",
        help="comma-separated rule codes/slugs to silence, e.g. W002,W006",
    )
    lint.add_argument(
        "--fanout-levels", type=int, default=3,
        help="iteration level at which W004 starts warning (default 3)",
    )
    lint.add_argument(
        "--fail-on", choices=["error", "warning", "never"], default="error",
        help="exit non-zero when findings at/above this severity exist",
    )
    lint.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )

    plan_lint = sub.add_parser(
        "plan-lint",
        help="statically lint the store's SQL access paths "
        "(P-series rules: docs/ANALYSIS.md)",
    )
    plan_lint.add_argument(
        "--db",
        help="analyze plans against this database instead of a throwaway "
        "in-memory store — picks up its ANALYZE statistics and content, "
        "which can change the optimizer's choices; note opening a store "
        "reconciles the schema DDL, so missing indexes are recreated, "
        "not reported",
    )
    plan_lint.add_argument(
        "--baseline", default="plans.lock.json", metavar="PATH",
        help="committed plan baseline to diff against (default "
        "plans.lock.json; missing file skips the diff unless "
        "--require-baseline)",
    )
    plan_lint.add_argument(
        "--require-baseline", action="store_true",
        help="fail when the baseline file is missing (CI mode)",
    )
    plan_lint.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the live plans and exit",
    )
    plan_lint.add_argument(
        "--format", choices=["text", "json", "sarif"], default="text",
        dest="lint_format", help="output format (SARIF 2.1.0 for CI upload)",
    )
    plan_lint.add_argument(
        "--output", help="write the report to a file instead of stdout"
    )
    plan_lint.add_argument(
        "--severity", action="append", default=[], metavar="CODE=LEVEL",
        help="override a rule's severity, e.g. P002=warning (repeatable)",
    )
    plan_lint.add_argument(
        "--suppress", default="", metavar="CODES",
        help="comma-separated rule codes/slugs to silence, e.g. P002",
    )
    plan_lint.add_argument(
        "--fail-on", choices=["error", "warning", "never"], default="error",
        help="exit non-zero when findings at/above this severity exist",
    )
    plan_lint.add_argument(
        "--list-rules", action="store_true",
        help="print the P-series rule catalogue and exit",
    )

    serve = sub.add_parser(
        "serve",
        help="run the HTTP/JSON provenance query server (docs/SERVER.md)",
    )
    serve.add_argument(
        "--db", help="single trace database, served as tenant 'default'"
    )
    serve.add_argument(
        "--tenant-root", metavar="DIR",
        help="directory of per-tenant trace databases (<tenant>.db)",
    )
    serve.add_argument(
        "--create-tenants", action="store_true",
        help="with --tenant-root: create missing tenant databases on "
        "first request instead of answering 404",
    )
    serve.add_argument(
        "--workload", action="append", default=[],
        choices=sorted(_WORKLOADS), metavar="NAME",
        help="register this built-in workload for every tenant "
        "(repeatable)",
    )
    serve.add_argument(
        "--flow", action="append", default=[], metavar="PATH",
        help="register this workflow JSON file for every tenant "
        "(repeatable)",
    )
    serve.add_argument(
        "--views", metavar="PATH",
        help="JSON file of user views shared by every tenant: "
        '{"view": {"group": ["proc", ...], ...}, ...}',
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=8750,
        help="listen port (0 picks a free one; default 8750)",
    )
    serve.add_argument(
        "--workers", type=int, default=4,
        help="worker threads executing queries (default 4)",
    )
    serve.add_argument(
        "--queue", type=int, default=16,
        help="admitted requests allowed to wait beyond the workers; "
        "arrivals past workers+queue get 429 (default 16)",
    )
    serve.add_argument(
        "--timeout", type=float, default=30.0,
        help="per-request deadline in seconds -> 504 (default 30)",
    )
    serve.add_argument(
        "--max-open-tenants", type=int, default=8,
        help="LRU bound on concurrently open tenant stores (default 8)",
    )
    serve.add_argument(
        "--trace-sample", type=float, default=1.0, metavar="RATE",
        help="head-based trace sampling rate in (0, 1] — 0.1 keeps "
        "roughly every 10th request trace (default 1.0: keep all)",
    )
    serve.add_argument(
        "--trace-ring", type=int, default=512, metavar="N",
        help="finished traces kept in memory for /v1/traces (default 512)",
    )
    serve.add_argument(
        "--trace-log", metavar="PATH",
        help="also append every finished trace to this JSONL file",
    )
    serve.add_argument(
        "--slowlog-threshold-ms", type=float, metavar="MS",
        help="journal lineage queries slower than this per tenant "
        "(/v1/slowlog + <db>.slowlog.jsonl; default: journal disabled)",
    )
    serve.add_argument(
        "--slowlog-ring", type=int, default=256, metavar="N",
        help="slow-query records kept in memory per tenant (default 256)",
    )
    serve.add_argument(
        "--shards", type=int, metavar="N",
        help="open tenant stores run-sharded across N SQLite shard "
        "files; /v1/stats then reports the per-shard rollup "
        "(see docs/STORAGE.md)",
    )

    slowlog_cmd = sub.add_parser(
        "slowlog",
        help="show a store's persisted slow-query journal "
        "(<db>.slowlog.jsonl, written by a server with "
        "--slowlog-threshold-ms)",
    )
    slowlog_cmd.add_argument("--db", required=True, help="trace database path")
    slowlog_cmd.add_argument(
        "--limit", type=int, default=0, metavar="N",
        help="show only the newest N records (default: all)",
    )
    slowlog_cmd.add_argument(
        "--format", choices=["table", "json"], default="table",
        dest="slowlog_format",
    )

    check = sub.add_parser(
        "check-query",
        help="statically triage a lineage query (no trace access)",
    )
    check.add_argument("--workload", choices=sorted(_WORKLOADS))
    check.add_argument("--flow", help="workflow JSON file")
    check.add_argument("--synthetic-l", type=int)
    check.add_argument(
        "--query", dest="query_text",
        help="full query in the paper's notation (overrides --node/--port)",
    )
    check.add_argument("--node")
    check.add_argument("--port")
    check.add_argument("--index", default="", help="dotted index path")
    check.add_argument("--focus", default="", help="comma-separated processors")
    check.add_argument("--runs", type=int, default=1)
    return parser


def _load_flow(args: argparse.Namespace):
    if getattr(args, "workload", None):
        workload = _WORKLOADS[args.workload]()
        return workload.flow, workload.registry, workload.inputs
    if getattr(args, "synthetic_l", None):
        flow = chain_product_workflow(args.synthetic_l)
        return flow, None, {"ListSize": getattr(args, "synthetic_d", 10)}
    if getattr(args, "flow", None):
        flow = serialize.load(args.flow)
        inputs: Dict[str, Any] = {}
        if getattr(args, "inputs", None):
            with open(args.inputs, "r", encoding="utf-8") as handle:
                inputs = json.load(handle)
        return flow, None, inputs
    raise SystemExit("specify one of --workload / --flow / --synthetic-l")


def _obs_of(args: argparse.Namespace) -> Observability:
    """The invocation's observability handle (disabled unless --profile)."""
    return getattr(args, "_obs", NO_OBS)


def cmd_workloads(_args: argparse.Namespace) -> int:
    for key in ("gk", "pd", "fl"):
        workload = _WORKLOADS[key]()
        print(f"{key:4s} {workload.name:20s} {workload.description}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    obs = _obs_of(args)
    flow, registry, inputs = _load_flow(args)
    if args.inputs:
        with open(args.inputs, "r", encoding="utf-8") as handle:
            inputs = json.load(handle)
    from repro.engine.executor import WorkflowRunner

    runner = WorkflowRunner(registry, obs=obs)
    logger.debug(
        "executing %s x%d (workers=%d)", flow.name, args.runs, args.workers
    )
    with open_store(args.db, shards=args.shards, obs=obs) as store:
        if args.workers > 1:
            from repro.provenance.capture import capture_runs

            captured_list = capture_runs(
                flow, [inputs] * args.runs, runner=runner,
                max_workers=args.workers,
            )
        else:
            captured_list = [
                capture_run(flow, inputs, runner=runner)
                for _ in range(args.runs)
            ]
        for captured in captured_list:
            store.insert_trace(captured.trace)
            print(
                f"run {captured.run_id}: {captured.trace.record_count} trace "
                f"records; outputs: {sorted(captured.outputs)}"
            )
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    obs = _obs_of(args)
    if args.query_text:
        from repro.query.parser import parse_query

        query = parse_query(args.query_text)
    elif args.node and args.port:
        focus = [name for name in args.focus.split(",") if name]
        query = LineageQuery.create(
            args.node, args.port, Index.decode(args.index), focus
        )
    else:
        raise SystemExit("provide either --query or both --node and --port")
    with open_store(args.db, shards=args.shards, obs=obs) as store:
        run_ids = [args.run] if args.run else store.run_ids()
        if not run_ids:
            logger.error("store contains no runs")
            return 1
        strategy = args.strategy
        if strategy == "auto":
            from repro.analysis.cost import choose_strategy
            from repro.workflow.depths import propagate_depths

            flow, _, _ = _load_flow(args)
            strategy = choose_strategy(
                propagate_depths(flow.flattened()), query, runs=len(run_ids)
            )
            logger.info("auto strategy: %s", strategy)
        trace_cache = None
        if args.cache:
            from repro.cache import TraceReadCache

            trace_cache = TraceReadCache(store, obs=obs)
        if strategy == "naive":
            engine: Any = NaiveEngine(store, obs=obs, trace_cache=trace_cache)
        else:
            flow, _, _ = _load_flow(args)
            engine = IndexProjEngine(
                store, flow, obs=obs, trace_cache=trace_cache
            )

        use_batch = bool(args.batch) or args.batch_size is not None
        chunk_size = args.batch_size

        def run_once():
            # Compiled execution subsumes --batch (it honours the chunk
            # size); an explicit --workers fan-out wins over the default.
            if strategy != "naive" and args.compiled and args.workers <= 1:
                return engine.lineage_multirun_compiled(
                    run_ids, query, chunk_size=chunk_size
                )
            if use_batch:
                return engine.lineage_multirun_batched(
                    run_ids, query, chunk_size=chunk_size
                )
            if strategy == "naive":
                return engine.lineage_multirun(run_ids, query)
            if args.workers > 1:
                return engine.lineage_multirun_parallel(
                    run_ids, query, max_workers=args.workers
                )
            return engine.lineage_multirun(run_ids, query)

        repeats = max(1, args.repeat)
        results = None
        for iteration in range(repeats):
            start = time.perf_counter()
            results = run_once()
            elapsed_ms = (time.perf_counter() - start) * 1000
            if repeats > 1:
                store_queries = results.sql_queries
                print(
                    f"iteration {iteration + 1}: {elapsed_ms:.2f} ms, "
                    f"{store_queries} store queries"
                )
        assert results is not None
        print(f"query: {query}")
        if args.verbose:
            totals = results.aggregate_stats()
            batch_note = (
                f", {totals.batch_lookups} batched statements covering "
                f"{totals.batch_keys} lookup keys "
                f"(chunk={totals.batch_chunk_size})"
                if totals.batch_lookups
                else ""
            )
            print(
                f"sql round-trips: {totals.queries} "
                f"({totals.rows} rows{batch_note})"
            )
        for run_id, result in results.per_run.items():
            print(f"run {run_id} ({result.total_seconds * 1000:.2f} ms):")
            for binding in result.bindings:
                payload = json.dumps(binding.value, default=repr)
                if len(payload) > 60:
                    payload = payload[:57] + "..."
                print(f"  {binding}  = {payload}")
        if trace_cache is not None:
            cache_stats = trace_cache.stats()
            print(
                f"trace cache: {cache_stats['hits']} hits, "
                f"{cache_stats['misses']} misses, "
                f"{cache_stats['entries']} entries, "
                f"{cache_stats['bytes']} bytes"
            )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    names = sorted(ALL_EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        logger.debug("running experiment %s at scale %s", name, args.scale)
        rows = ALL_EXPERIMENTS[name](args.scale)
        print(format_table(rows, title=f"== {name} (scale={args.scale}) =="))
        print()
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    flow, _, _ = _load_flow(args)
    with open(args.dot, "w", encoding="utf-8") as handle:
        handle.write(to_dot(flow.flattened()))
    logger.info("wrote %s", args.dot)
    return 0


def cmd_impact(args: argparse.Namespace) -> int:
    from repro.query.impact import (
        ImpactQuery,
        IndexProjImpactEngine,
        NaiveImpactEngine,
    )

    obs = _obs_of(args)
    focus = [name for name in args.focus.split(",") if name]
    query = ImpactQuery.create(
        args.node, args.port, Index.decode(args.index), focus
    )
    with open_store(args.db, shards=args.shards, obs=obs) as store:
        run_ids = [args.run] if args.run else store.run_ids()
        if not run_ids:
            logger.error("store contains no runs")
            return 1
        if args.strategy == "naive":
            engine: Any = NaiveImpactEngine(store)
        else:
            flow, _, _ = _load_flow(args)
            engine = IndexProjImpactEngine(store, flow)
        print(f"impact query: {query}")
        for run_id in run_ids:
            result = engine.impact(run_id, query)
            print(f"run {run_id} ({result.total_seconds * 1000:.2f} ms):")
            for binding in result.bindings:
                payload = json.dumps(binding.value, default=repr)
                if len(payload) > 60:
                    payload = payload[:57] + "..."
                print(f"  {binding}  = {payload}")
    return 0


def cmd_prov_export(args: argparse.Namespace) -> int:
    from repro.provenance.export import save_prov_document

    with open_store(args.db, shards=args.shards) as store:
        run_ids = store.run_ids()
        if not run_ids:
            logger.error("store contains no runs")
            return 1
        run_id = args.run or run_ids[0]
        trace = store.load_trace(run_id)
    save_prov_document(trace, args.out)
    logger.info("wrote PROV document for run %s to %s", run_id, args.out)
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    with open_store(args.db, shards=args.shards) as store:
        stats = store.statistics()
        for name in ("runs", "xform_events", "xform_io_rows", "xfer_rows",
                     "records"):
            print(f"{name:15s} {stats[name]}")
        for shard in stats.get("shards", ()):
            print(
                f"  shard {shard['shard']}: {shard['runs']} runs, "
                f"{shard['records']} records"
            )
        for run_id in store.run_ids():
            print(f"  run {run_id}: {store.record_count(run_id)} records")
    persisted = load_persisted_counters(args.db)
    if persisted["counters"]:
        print(
            f"persisted obs counters "
            f"({persisted.get('invocations', 0)} profiled invocations):"
        )
        width = max(len(name) for name in persisted["counters"])
        for name, value in sorted(persisted["counters"].items()):
            print(f"  {name:<{width}s}  {value}")
    return 0


def cmd_cache_stats(args: argparse.Namespace) -> int:
    """Default cache tuning knobs plus any persisted ``cache.*`` counters.

    The counters come from the ``<db>.metrics.json`` sidecar that
    ``--profile`` maintains — so this reports cache traffic accumulated
    across *profiled* invocations, with zero store access of its own.
    """
    from repro.cache import CacheConfig

    config = CacheConfig()
    print("default cache configuration (repro.cache.CacheConfig):")
    print(
        f"  result cache  {config.result_entries} entries / "
        f"{config.result_bytes} bytes"
    )
    print(
        f"  trace cache   {config.trace_entries} entries / "
        f"{config.trace_bytes} bytes"
    )
    persisted = load_persisted_counters(args.db)
    cache_counters = {
        name: value
        for name, value in persisted["counters"].items()
        if name.startswith("cache.") or name == "store.generation_bumps"
    }
    if not cache_counters:
        print(
            "no persisted cache counters — run a profiled query "
            "(repro-prov --profile query ...) to record some"
        )
        return 0
    print(
        f"persisted cache counters "
        f"({persisted.get('invocations', 0)} profiled invocations):"
    )
    width = max(len(name) for name in cache_counters)
    for name, value in sorted(cache_counters.items()):
        print(f"  {name:<{width}s}  {value}")
    return 0


def cmd_depths(args: argparse.Namespace) -> int:
    from repro.workflow.depths import propagate_depths

    flow, _, _ = _load_flow(args)
    analysis = propagate_depths(flow.flattened())
    print(f"{'port':40s} {'dd':>3s} {'depth':>5s}")
    for port, dd, depth in analysis.as_table():
        print(f"{port:40s} {dd:3d} {depth:5d}")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from repro.workflow.validate import validate as validate_flow

    flow, _, _ = _load_flow(args)
    issues = validate_flow(flow.flattened())
    if not issues:
        print(f"workflow {flow.name!r}: no issues")
        return 0
    for issue in issues:
        print(f"{issue.severity:8s} [{issue.code}] {issue.message}")
    return 1 if any(issue.is_error for issue in issues) else 0


def cmd_explain(args: argparse.Namespace) -> int:
    from repro.query.explain import explain
    from repro.workflow.depths import propagate_depths

    flow, _, _ = _load_flow(args)
    analysis = propagate_depths(flow.flattened())
    focus = [name for name in args.focus.split(",") if name]
    query = LineageQuery.create(
        args.node, args.port, Index.decode(args.index), focus
    )
    explanation = explain(analysis, query, runs=args.runs)
    print(explanation.summary())
    print(f"  traversal ports (shared s1) : {explanation.indexproj_traversal_ports}")
    print(f"  INDEXPROJ trace lookups     : {explanation.indexproj_lookups}")
    print(f"  NI hops per run             : {explanation.naive_hops}")
    print(f"  NI trace lookups (bound)    : {explanation.naive_lookups}")
    print(f"  lookup ratio NI/INDEXPROJ   : {explanation.lookup_ratio:.1f}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis.lint import LintConfig, lint_rules, run_lint
    from repro.analysis.sarif import render_json, render_sarif, render_text

    if args.list_rules:
        for entry in lint_rules():
            print(f"{entry.code}  {entry.default_severity:7s} "
                  f"{entry.slug:22s} {entry.description}")
        return 0
    severities: Dict[str, str] = {}
    for override in args.severity:
        code, _, level = override.partition("=")
        if not level:
            raise SystemExit(f"--severity expects CODE=LEVEL, got {override!r}")
        severities[code] = level
    config = LintConfig(
        severities=severities,
        suppress={c for c in args.suppress.split(",") if c},
        fanout_levels=args.fanout_levels,
    )
    flow, _, _ = _load_flow(args)
    findings = run_lint(flow.flattened(), config)
    renderers = {
        "text": render_text,
        "json": render_json,
        "sarif": render_sarif,
    }
    report = renderers[args.lint_format](findings, workflow=flow.name)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(report + "\n")
        logger.info("wrote %d finding(s) to %s", len(findings), args.output)
    elif report:
        print(report)
    if args.fail_on == "never":
        return 0
    threshold = ("error",) if args.fail_on == "error" else ("error", "warning")
    return 1 if any(f.severity in threshold for f in findings) else 0


def cmd_plan_lint(args: argparse.Namespace) -> int:
    import os

    from repro.analysis.lint import LintConfig
    from repro.analysis.planlint import (
        analyze,
        diff_baseline,
        load_baseline,
        plan_findings,
        plan_rules,
        write_baseline,
    )
    from repro.analysis.sarif import render_json, render_sarif, render_text

    if args.list_rules:
        for entry in plan_rules():
            print(f"{entry.code}  {entry.default_severity:7s} "
                  f"{entry.slug:28s} {entry.description}")
        return 0
    severities: Dict[str, str] = {}
    for override in args.severity:
        code, _, level = override.partition("=")
        if not level:
            raise SystemExit(f"--severity expects CODE=LEVEL, got {override!r}")
        severities[code] = level
    config = LintConfig(
        severities=severities,
        suppress={c for c in args.suppress.split(",") if c},
    )
    store = TraceStore(args.db) if args.db else None
    try:
        report = analyze(store=store)
    finally:
        if store is not None:
            store.close()
    if args.update_baseline:
        write_baseline(args.baseline, report)
        logger.info(
            "wrote %d primitive plan(s) to %s",
            len(report.primitives), args.baseline,
        )
        return 0
    findings = plan_findings(report, config)
    if os.path.exists(args.baseline):
        findings.extend(diff_baseline(report, load_baseline(args.baseline),
                                      config))
    elif args.require_baseline:
        raise SystemExit(
            f"baseline {args.baseline!r} not found; generate it with "
            "`repro-prov plan-lint --update-baseline`"
        )
    else:
        logger.warning(
            "no baseline at %s — plan drift not checked "
            "(generate one with --update-baseline)", args.baseline,
        )
    renderers = {
        "text": render_text,
        "json": render_json,
        "sarif": lambda f, workflow="": render_sarif(
            f, workflow=workflow, rules=plan_rules(),
            tool="repro-prov-plan-lint",
        ),
    }
    rendered = renderers[args.lint_format](findings, workflow="store-schema")
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        logger.info("wrote %d finding(s) to %s", len(findings), args.output)
    elif rendered:
        print(rendered)
    if args.fail_on == "never":
        return 0
    threshold = ("error",) if args.fail_on == "error" else ("error", "warning")
    return 1 if any(f.severity in threshold for f in findings) else 0


def build_server(args: argparse.Namespace):
    """Construct the configured :class:`ProvenanceServer` (not yet bound).

    Factored out of :func:`cmd_serve` so tests can assemble the exact
    server an invocation would run without serving forever.
    """
    from repro.query.views import UserView
    from repro.server import (
        ProvenanceServer,
        ServerConfig,
        TenantRegistry,
        default_setup,
    )
    from repro.workflow import serialize as _serialize

    if bool(args.db) == bool(args.tenant_root):
        raise SystemExit("specify exactly one of --db / --tenant-root")
    if not 0.0 < args.trace_sample <= 1.0:
        raise SystemExit(
            f"--trace-sample wants a rate in (0, 1], got {args.trace_sample}"
        )
    registrations = []
    for key in args.workload:
        workload = _WORKLOADS[key]()
        registrations.append((workload.flow, workload.registry))
    for path in args.flow:
        registrations.append((_serialize.load(path), None))
    setup = default_setup(*registrations) if registrations else None
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_workers=args.workers,
        max_queue=args.queue,
        request_timeout=args.timeout,
        max_open_tenants=args.max_open_tenants,
        tenant_root=args.tenant_root,
        create_tenants=args.create_tenants,
        trace_sample=args.trace_sample,
        trace_ring=args.trace_ring,
        trace_log=args.trace_log,
        slowlog_threshold_ms=args.slowlog_threshold_ms,
        slowlog_ring=args.slowlog_ring,
        shards=args.shards,
    )
    registry = TenantRegistry(
        root=args.tenant_root,
        setup=setup,
        max_open=args.max_open_tenants,
        create=args.create_tenants,
        obs=config.obs,
        slowlog_threshold_ms=args.slowlog_threshold_ms,
        slowlog_ring=args.slowlog_ring,
        shards=args.shards,
    )
    if args.db:
        from repro.obs import SlowQueryJournal, slowlog_sidecar_path
        from repro.service import ProvenanceService

        def open_default():
            service = ProvenanceService(
                args.db, obs=config.obs, shards=args.shards
            )
            if setup is not None:
                setup(service, "default")
            if args.slowlog_threshold_ms is not None:
                service.slowlog = SlowQueryJournal(
                    threshold_ms=args.slowlog_threshold_ms,
                    capacity=args.slowlog_ring,
                    path=slowlog_sidecar_path(args.db),
                )
            return service

        registry.register_factory("default", open_default)
    if args.views:
        with open(args.views, "r", encoding="utf-8") as handle:
            view_specs = json.load(handle)
        for view_name, groups in view_specs.items():
            registry.register_shared_view(UserView(view_name, groups))
    return ProvenanceServer(config=config, registry=registry)


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    server = build_server(args)
    try:
        asyncio.run(server.serve_forever())
    except KeyboardInterrupt:
        logger.info("server interrupted, shutting down")
    return 0


def cmd_slowlog(args: argparse.Namespace) -> int:
    """Render a store's slow-query sidecar (``<db>.slowlog.jsonl``)."""
    from repro.obs import (
        load_slowlog,
        render_slowlog_table,
        slowlog_sidecar_path,
    )

    path = slowlog_sidecar_path(args.db)
    records = load_slowlog(path, limit=args.limit)
    if not records:
        print(
            f"no slow-query records at {path} — serve with "
            "--slowlog-threshold-ms to collect some"
        )
        return 0
    if args.slowlog_format == "json":
        print(json.dumps(records, indent=2, sort_keys=True))
    else:
        print(render_slowlog_table(records))
    return 0


def cmd_check_query(args: argparse.Namespace) -> int:
    from repro.analysis.cost import explain_plan
    from repro.workflow.depths import propagate_depths

    if args.query_text:
        from repro.query.parser import parse_query

        query = parse_query(args.query_text)
    elif args.node and args.port:
        focus = [name for name in args.focus.split(",") if name]
        query = LineageQuery.create(
            args.node, args.port, Index.decode(args.index), focus
        )
    else:
        raise SystemExit("provide either --query or both --node and --port")
    flow, _, _ = _load_flow(args)
    analysis = propagate_depths(flow.flattened())
    plan = explain_plan(analysis, query, runs=args.runs)
    print(plan.summary())
    # Exit codes mirror compilers: 0 = will produce results (or provably
    # empty, which is still a definitive answer), 2 = rejected.
    return 2 if plan.report.is_invalid else 0


def _finish_profile(args: argparse.Namespace, obs: Observability) -> None:
    """Print the span tree + metrics table; persist/export as requested."""
    print()
    print("== profile: span tree ==")
    tree = render_span_tree(obs.span_roots())
    if tree:
        print(tree)
    print()
    print("== profile: metrics ==")
    table = render_metrics_table(obs.metrics_snapshot())
    if table:
        print(table)
    db_path = getattr(args, "db", None)
    if db_path and db_path != ":memory:":
        sidecar = persist_counters(obs, db_path)
        logger.debug("merged counters into %s", sidecar)
    if args.profile_export:
        dump_json(obs, args.profile_export, meta={"command": args.command})
        logger.info("wrote obs export to %s", args.profile_export)


_COMMANDS = {
    "workloads": cmd_workloads,
    "run": cmd_run,
    "query": cmd_query,
    "bench": cmd_bench,
    "export": cmd_export,
    "impact": cmd_impact,
    "prov-export": cmd_prov_export,
    "stats": cmd_stats,
    "cache-stats": cmd_cache_stats,
    "depths": cmd_depths,
    "validate": cmd_validate,
    "explain": cmd_explain,
    "lint": cmd_lint,
    "plan-lint": cmd_plan_lint,
    "check-query": cmd_check_query,
    "serve": cmd_serve,
    "slowlog": cmd_slowlog,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _configure_logging(args.verbose, args.quiet)
    obs = Observability() if args.profile else NO_OBS
    args._obs = obs
    status = _COMMANDS[args.command](args)
    if obs.enabled:
        _finish_profile(args, obs)
    return status


if __name__ == "__main__":
    raise SystemExit(main())
