"""Trace-store maintenance: pruning, integrity checking, compaction.

Provenance databases "can be large" and "accumulate over many runs"
(Section 1); a production deployment needs tooling to keep them healthy:

* :func:`prune_runs` — retention: drop all but the most recent N runs
  (optionally per workflow), reclaiming the dominant space consumer;
* :func:`integrity_check` — referential sanity of the relational layout
  (orphaned io rows, empty runs, malformed index encodings) plus presence
  of the composite indexes the query strategies rely on;
* :func:`vacuum` — SQLite compaction after heavy pruning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.provenance.store import TraceStore


@dataclass
class IntegrityReport:
    """Findings of one :func:`integrity_check` pass."""

    orphan_io_rows: int = 0
    orphan_events: int = 0
    empty_runs: List[str] = field(default_factory=list)
    malformed_indices: int = 0
    indexes_present: bool = True
    issues: List[str] = field(default_factory=list)

    @property
    def is_healthy(self) -> bool:
        return not self.issues


def prune_runs(
    store: TraceStore,
    keep_latest: int,
    workflow: Optional[str] = None,
) -> List[str]:
    """Delete all but the newest ``keep_latest`` runs; return deleted ids.

    Runs are ordered by insertion (rowid).  With ``workflow`` given, only
    that workflow's runs are considered — other workflows are untouched.
    """
    if keep_latest < 0:
        raise ValueError("keep_latest must be non-negative")
    run_ids = store.run_ids(workflow=workflow)
    doomed = run_ids[: max(0, len(run_ids) - keep_latest)]
    for run_id in doomed:
        store.delete_run(run_id)
    return doomed


def integrity_check(store: TraceStore) -> IntegrityReport:
    """Verify the relational invariants of the trace layout."""
    report = IntegrityReport()
    conn = store._conn

    report.orphan_io_rows = conn.execute(
        "SELECT COUNT(*) FROM xform_io io "
        "WHERE NOT EXISTS (SELECT 1 FROM xform_event e "
        "                  WHERE e.event_id = io.event_id)"
    ).fetchone()[0]
    if report.orphan_io_rows:
        report.issues.append(
            f"{report.orphan_io_rows} xform_io row(s) reference missing events"
        )

    report.orphan_events = conn.execute(
        "SELECT COUNT(*) FROM xform_event e "
        "WHERE NOT EXISTS (SELECT 1 FROM runs r WHERE r.run_id = e.run_id)"
    ).fetchone()[0]
    if report.orphan_events:
        report.issues.append(
            f"{report.orphan_events} xform event(s) reference missing runs"
        )

    for (run_id,) in conn.execute("SELECT run_id FROM runs").fetchall():
        has_events = conn.execute(
            "SELECT 1 FROM xform_event WHERE run_id = ? LIMIT 1", (run_id,)
        ).fetchone()
        has_xfers = conn.execute(
            "SELECT 1 FROM xfer WHERE run_id = ? LIMIT 1", (run_id,)
        ).fetchone()
        if not has_events and not has_xfers:
            report.empty_runs.append(run_id)
    if report.empty_runs:
        report.issues.append(
            f"{len(report.empty_runs)} run(s) have no events at all"
        )

    # Index paths must round-trip through the canonical codec: empty, or
    # dot-separated non-negative integers.  Validate the distinct values
    # in Python with the codec itself rather than approximating it in SQL.
    from repro.values.index import Index

    distinct = conn.execute(
        "SELECT idx FROM ("
        "  SELECT idx FROM xform_io"
        "  UNION SELECT src_idx AS idx FROM xfer"
        "  UNION SELECT dst_idx AS idx FROM xfer"
        ")"
    ).fetchall()
    malformed = set()
    for (encoded,) in distinct:
        try:
            Index.decode(encoded)
        except ValueError:
            malformed.add(encoded)
    if malformed:
        report.malformed_indices = conn.execute(
            "SELECT COUNT(*) FROM ("
            "  SELECT idx FROM xform_io"
            "  UNION ALL SELECT src_idx AS idx FROM xfer"
            "  UNION ALL SELECT dst_idx AS idx FROM xfer"
            f") WHERE idx IN ({','.join('?' for _ in malformed)})",
            sorted(malformed),
        ).fetchone()[0]
    if report.malformed_indices:
        report.issues.append(
            f"{report.malformed_indices} malformed index encoding(s)"
        )

    orphan_refs = conn.execute(
        "SELECT COUNT(*) FROM ("
        "  SELECT value_id FROM xform_io WHERE value_id IS NOT NULL"
        "  UNION ALL SELECT value_id FROM xfer WHERE value_id IS NOT NULL"
        ") refs WHERE NOT EXISTS ("
        "  SELECT 1 FROM value_pool vp WHERE vp.value_id = refs.value_id)"
    ).fetchone()[0]
    if orphan_refs:
        report.issues.append(
            f"{orphan_refs} row(s) reference missing value_pool entries"
        )

    report.indexes_present = store.has_indexes()
    if not report.indexes_present:
        report.issues.append(
            "secondary indexes are missing (queries will full-scan); "
            "run create_indexes()"
        )
    return report


def gc_value_pool(store: TraceStore) -> int:
    """Drop pool entries no remaining row references; return the count.

    ``delete_run`` leaves interned payloads behind on purpose (they may be
    shared with other runs); run this after pruning to reclaim them.
    Bumps the store's global generation (conservative cache invalidation —
    the operation rewrites shared storage no single run owns).
    """
    with store._conn:
        cursor = store._conn.execute(
            "DELETE FROM value_pool WHERE value_id NOT IN ("
            "  SELECT value_id FROM xform_io WHERE value_id IS NOT NULL"
            "  UNION SELECT value_id FROM xfer WHERE value_id IS NOT NULL"
            ")"
        )
        count = cursor.rowcount
    store.bump_global_generation()
    return count


def vacuum(store: TraceStore) -> None:
    """Compact the database file (reclaims space after pruning).

    Bumps the store's global generation: compaction rewrites every page,
    so :mod:`repro.cache` conservatively drops all cached reads rather
    than reason about what a rewritten file may serve.
    """
    store._conn.execute("VACUUM")
    store.bump_global_generation()


def run_inventory(store: TraceStore) -> Dict[str, Dict[str, int]]:
    """Per-run size summary: ``{run_id: {workflow, records}}``-style rows."""
    inventory: Dict[str, Dict[str, int]] = {}
    rows = store._conn.execute(
        "SELECT run_id, workflow FROM runs ORDER BY rowid"
    ).fetchall()
    for run_id, workflow in rows:
        inventory[run_id] = {
            "workflow": workflow,
            "records": store.record_count(run_id),
        }
    return inventory
