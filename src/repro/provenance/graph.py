"""Provenance-graph view and reference lineage semantics.

Section 2.4 views a trace as a DAG whose nodes are bindings and whose arcs
come from *xform* events (input binding → output binding) and *xfer* events
(source → sink).  :func:`provenance_digraph` materializes that DAG as a
``networkx`` graph for inspection and export.

:func:`reference_lineage` is a direct, in-memory transcription of Def. 1 —
the mutually-inductive *xform*/*xfer* recursion — used by the test suite as
ground truth for both database-backed strategies.  It shares the
granularity-matching discipline documented in
:mod:`repro.provenance.store`: recorded indices may be coarser or finer
than the query index, and traversal continues with whichever of the two is
finer on identity transfers.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

import networkx as nx

from repro.engine.events import Binding, XferEvent, XformEvent
from repro.provenance.trace import Trace
from repro.values.index import Index


def provenance_digraph(trace: Trace) -> "nx.DiGraph":
    """The binding-level provenance DAG of one trace."""
    graph = nx.DiGraph(run_id=trace.run_id, workflow=trace.workflow)
    for event in trace.xforms:
        for source in event.inputs:
            for sink in event.outputs:
                graph.add_edge(source.key(), sink.key(), kind="xform",
                               processor=event.processor)
    for event in trace.xfers:
        graph.add_edge(event.source.key(), event.sink.key(), kind="xfer")
    return graph


class _TraceIndex:
    """Hash indices over an in-memory trace for the reference traversal."""

    def __init__(self, trace: Trace) -> None:
        self.xform_out: Dict[Tuple[str, str], List[Tuple[XformEvent, Index]]] = {}
        self.xfer_dst: Dict[Tuple[str, str], List[XferEvent]] = {}
        for event in trace.xforms:
            for binding in event.outputs:
                self.xform_out.setdefault(
                    (binding.node, binding.port), []
                ).append((event, binding.index))
        for event in trace.xfers:
            self.xfer_dst.setdefault(
                (event.sink.node, event.sink.port), []
            ).append(event)


def _match(recorded: Index, query: Index) -> bool:
    return recorded.starts_with(query) or query.starts_with(recorded)


def reference_lineage(
    trace: Trace,
    node: str,
    port: str,
    index: Index,
    focus: Iterable[str],
) -> Set[Binding]:
    """Def. 1: ``lin(<node:port[index]>, focus)`` over one in-memory trace.

    Returns the set of input bindings of focus processors found on any
    upward path from the query binding.  Purely extensional — every step
    inspects trace events, exactly like the naive strategy, making this the
    executable specification the optimized engines are tested against.
    """
    focus_set = set(focus)
    catalog = _TraceIndex(trace)
    result: Set[Binding] = set()
    visited: Set[Tuple[str, str, str]] = set()
    stack: List[Tuple[str, str, Index]] = [(node, port, index)]
    while stack:
        current_node, current_port, current_index = stack.pop()
        key = (current_node, current_port, current_index.encode())
        if key in visited:
            continue
        visited.add(key)
        matched_xform = False
        for event, recorded in catalog.xform_out.get(
            (current_node, current_port), []
        ):
            if not _match(recorded, current_index):
                continue
            matched_xform = True
            for binding in event.inputs:
                if event.processor in focus_set:
                    result.add(binding)
                stack.append((binding.node, binding.port, binding.index))
        if matched_xform:
            continue
        for event in catalog.xfer_dst.get((current_node, current_port), []):
            recorded = event.sink.index
            if not _match(recorded, current_index):
                continue
            if len(recorded) <= len(current_index):
                continue_index = current_index  # identity transfer: keep finer
            else:
                continue_index = recorded
            stack.append(
                (event.source.node, event.source.port, continue_index)
            )
    return result


def reference_impact(
    trace: Trace,
    node: str,
    port: str,
    index: Index,
    focus: Iterable[str],
) -> Set[Binding]:
    """Forward mirror of :func:`reference_lineage`: the *output* bindings
    of focus processors on any downward path from the query binding.

    Answers "which results were affected by this input element?" — the
    impact-analysis counterpart of Def. 1, evaluated extensionally over
    the in-memory trace and used as ground truth for the database-backed
    impact engines.
    """
    focus_set = set(focus)
    xform_in: Dict[Tuple[str, str], List[Tuple[XformEvent, Index]]] = {}
    xfer_src: Dict[Tuple[str, str], List[XferEvent]] = {}
    for event in trace.xforms:
        for binding in event.inputs:
            xform_in.setdefault((binding.node, binding.port), []).append(
                (event, binding.index)
            )
    for event in trace.xfers:
        xfer_src.setdefault(
            (event.source.node, event.source.port), []
        ).append(event)

    result: Set[Binding] = set()
    visited: Set[Tuple[str, str, str]] = set()
    stack: List[Tuple[str, str, Index]] = [(node, port, index)]
    while stack:
        current_node, current_port, current_index = stack.pop()
        key = (current_node, current_port, current_index.encode())
        if key in visited:
            continue
        visited.add(key)
        matched_xform = False
        for event, recorded in xform_in.get((current_node, current_port), []):
            if not _match(recorded, current_index):
                continue
            matched_xform = True
            for binding in event.outputs:
                if event.processor in focus_set:
                    result.add(binding)
                stack.append((binding.node, binding.port, binding.index))
        if matched_xform:
            continue
        for event in xfer_src.get((current_node, current_port), []):
            recorded = event.source.index
            if not _match(recorded, current_index):
                continue
            if len(recorded) <= len(current_index):
                continue_index = current_index
            else:
                continue_index = recorded
            stack.append((event.sink.node, event.sink.port, continue_index))
    return result


def leaf_coverage(bindings: Iterable[Binding]) -> Set[Tuple[str, str, str]]:
    """Expand bindings to the set of leaf regions they cover.

    Two lineage answers are semantically equal when they cover the same
    ``(node, port, leaf index)`` regions — a whole-value binding covers all
    leaves of its payload.  Used by tests to compare strategies that may
    report the same lineage at different granularities.
    """
    from repro.values import nested

    covered: Set[Tuple[str, str, str]] = set()
    for binding in bindings:
        if binding.value is None or not isinstance(binding.value, list):
            covered.add((binding.node, binding.port, binding.index.encode()))
            continue
        for leaf_index, _ in nested.enumerate_leaves(binding.value):
            covered.add(
                (binding.node, binding.port, (binding.index + leaf_index).encode())
            )
    return covered


def sources_of(trace: Trace) -> Set[Tuple[str, str]]:
    """Ports that never appear as the destination of any event — the run's
    ultimate inputs (workflow input ports and generator outputs)."""
    graph = provenance_digraph(trace)
    return {
        (key[0], key[1])
        for key in graph.nodes
        if graph.in_degree(key) == 0
    }
