"""Deterministic fault injection for the trace store.

Concurrency code is only trustworthy if its failure paths are exercised,
and SQLite's interesting failures (``SQLITE_BUSY`` storms, slow disks,
crashes mid-transaction) are timing-dependent and hard to provoke on
demand.  This module is the seam that makes them reproducible: a
:class:`FaultInjector` is handed to :class:`~repro.provenance.store.
TraceStore`, which consults it at well-defined points of every read and
write.  Tests and benchmarks arm it with exact budgets ("the next three
write attempts fail busy", "crash after two statements of the next
insert") and then assert on both the outcome and the injector's
observability counters.

The default :data:`NO_FAULTS` injector is inert and shared; every hook is
a cheap counter check, so production paths pay essentially nothing.

All mutation is guarded by one lock, so budgets are decremented exactly
once per event even when many threads write through the same store.
"""

from __future__ import annotations

import sqlite3
import threading
import time
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry


class InjectedCrash(RuntimeError):
    """Raised by the injector to simulate a process dying mid-transaction.

    The store never catches this (it is not an ``OperationalError``), so
    it propagates through :meth:`TraceStore.insert_trace` after the
    transaction is rolled back — modelling the all-or-nothing guarantee a
    real crash gets from SQLite's journal.
    """


class FaultInjector:
    """Scriptable fault source consulted by the store's read/write hooks.

    Arm it before the operation under test::

        faults = FaultInjector()
        faults.inject_busy(3)          # next 3 write attempts fail busy
        store = TraceStore(path, faults=faults)
        store.insert_trace(trace)      # succeeds on the 4th attempt
        assert faults.busy_raised == 3
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._busy_budget = 0
        self._read_busy_budget = 0
        self._crash_countdown: Optional[int] = None
        self._write_delay = 0.0
        self._read_delay = 0.0
        self._statement_delay = 0.0
        #: Number of injected busy errors actually raised.
        self.busy_raised = 0
        #: Number of injected read-side busy errors actually raised.
        self.read_busy_raised = 0
        #: Number of injected crashes actually raised.
        self.crashes = 0
        self._metrics: Optional["MetricsRegistry"] = None

    # -- observability ---------------------------------------------------

    def attach_metrics(self, metrics: Optional["MetricsRegistry"]) -> None:
        """Mirror every firing into ``metrics`` (``faults.*`` counters).

        Called by :class:`~repro.provenance.store.TraceStore` when it is
        built with an enabled observability handle, so injected faults show
        up in the same registry as the store/query counters.
        """
        with self._lock:
            self._metrics = metrics

    def _fired(self, name: str) -> None:
        """Record one firing into the attached registry (lock held)."""
        if self._metrics is not None:
            self._metrics.counter(f"faults.{name}").inc()

    # -- arming ----------------------------------------------------------

    def inject_busy(self, attempts: int) -> None:
        """Fail the next ``attempts`` write attempts with ``SQLITE_BUSY``."""
        with self._lock:
            self._busy_budget = attempts

    def inject_read_busy(self, attempts: int) -> None:
        """Fail the next ``attempts`` reads with ``SQLITE_BUSY``."""
        with self._lock:
            self._read_busy_budget = attempts

    def inject_crash_after(self, statements: int) -> None:
        """Crash the next write transaction after ``statements`` statement
        groups have executed (0 crashes before the first)."""
        with self._lock:
            self._crash_countdown = statements

    def inject_write_delay(self, seconds: float) -> None:
        """Stall every write attempt by ``seconds`` (slow fsync / disk)."""
        with self._lock:
            self._write_delay = seconds

    def inject_statement_delay(self, seconds: float) -> None:
        """Stall between statement groups *inside* a write transaction —
        holds the transaction open so tests can probe what concurrent
        readers observe mid-insert."""
        with self._lock:
            self._statement_delay = seconds

    def inject_read_delay(self, seconds: float) -> None:
        """Stall every read by ``seconds`` (cold cache / slow disk)."""
        with self._lock:
            self._read_delay = seconds

    def reset(self) -> None:
        """Disarm everything and zero the counters."""
        with self._lock:
            self._busy_budget = 0
            self._read_busy_budget = 0
            self._crash_countdown = None
            self._write_delay = 0.0
            self._read_delay = 0.0
            self._statement_delay = 0.0
            self.busy_raised = 0
            self.read_busy_raised = 0
            self.crashes = 0

    # -- hooks (called by TraceStore) ------------------------------------

    def on_write_attempt(self) -> None:
        """Start of one write-transaction attempt (inside the retry loop)."""
        delay = 0.0
        with self._lock:
            if self._busy_budget > 0:
                self._busy_budget -= 1
                self.busy_raised += 1
                self._fired("busy_injected")
                raise sqlite3.OperationalError("database is locked (injected)")
            delay = self._write_delay
        if delay:
            time.sleep(delay)

    def on_write_statement(self) -> None:
        """One statement group executed inside a write transaction."""
        delay = 0.0
        with self._lock:
            if self._crash_countdown is not None:
                if self._crash_countdown <= 0:
                    self._crash_countdown = None
                    self.crashes += 1
                    self._fired("crash_injected")
                    raise InjectedCrash("simulated crash mid-transaction")
                self._crash_countdown -= 1
            delay = self._statement_delay
        if delay:
            time.sleep(delay)

    def on_read(self) -> None:
        """One read about to execute (inside the busy-retry loop)."""
        with self._lock:
            if self._read_busy_budget > 0:
                self._read_busy_budget -= 1
                self.read_busy_raised += 1
                self._fired("read_busy_injected")
                raise sqlite3.OperationalError("database is locked (injected)")
            delay = self._read_delay
        if delay:
            time.sleep(delay)


#: Shared inert injector — the default for every store.
NO_FAULTS = FaultInjector()
