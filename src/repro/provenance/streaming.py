"""Streaming provenance capture: engine events written straight to SQLite.

``capture_run`` materializes the whole trace in memory before insertion —
fine for the paper's workloads, but long runs with large intermediate
collections deserve the option of spilling provenance incrementally, the
way the real Taverna provenance component streams events into MySQL while
the dataflow executes.  :class:`StreamingTraceWriter` is an engine
listener that batches events and flushes them inside a single long-lived
transaction, committing (or rolling back) when the run finishes.

    with TraceStore("traces.db") as store:
        with StreamingTraceWriter(store, workflow="wf") as writer:
            run_workflow(flow, inputs, listener=writer)
        # committed here; writer.run_id identifies the stored trace
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from repro.engine.events import XferEvent, XformEvent
from repro.provenance.store import TraceStore
from repro.provenance.trace import new_run_id

DEFAULT_BATCH_SIZE = 512


class StreamingTraceWriter:
    """Engine listener that writes events to a store incrementally.

    The run row is inserted on entry; *xform*/*xfer* events accumulate in
    memory and are flushed to SQLite whenever ``batch_size`` rows are
    pending.  Everything happens inside one transaction: a run that fails
    mid-way leaves no partial trace behind.
    """

    def __init__(
        self,
        store: TraceStore,
        run_id: Optional[str] = None,
        workflow: str = "",
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if batch_size < 1:
            raise ValueError("batch_size must be positive")
        self.store = store
        self.run_id = run_id or new_run_id()
        self.workflow = workflow
        self.batch_size = batch_size
        self._cursor = store._conn.cursor()
        self._io_rows: List[Tuple[Any, ...]] = []
        self._xfer_rows: List[Tuple[Any, ...]] = []
        self._open = True
        self._cursor.execute("BEGIN")
        self._cursor.execute(
            "INSERT INTO runs (run_id, workflow) VALUES (?, ?)",
            (self.run_id, self.workflow),
        )

    # -- listener protocol -------------------------------------------------

    def on_xform(self, event: XformEvent) -> None:
        self._require_open()
        self._cursor.execute(
            "INSERT INTO xform_event (run_id, processor) VALUES (?, ?)",
            (self.run_id, event.processor),
        )
        event_id = self._cursor.lastrowid
        for role, bindings in (("in", event.inputs), ("out", event.outputs)):
            for binding in bindings:
                value_json, value_id = self.store._value_ref(
                    self._cursor, binding.value
                )
                self._io_rows.append(
                    (
                        event_id,
                        self.run_id,
                        event.processor,
                        role,
                        binding.port,
                        binding.index.encode(),
                        value_json,
                        value_id,
                    )
                )
        self._maybe_flush()

    def on_xfer(self, event: XferEvent) -> None:
        self._require_open()
        value_json, value_id = self.store._value_ref(
            self._cursor, event.source.value
        )
        self._xfer_rows.append(
            (
                self.run_id,
                event.source.node,
                event.source.port,
                event.source.index.encode(),
                event.sink.node,
                event.sink.port,
                event.sink.index.encode(),
                value_json,
                value_id,
            )
        )
        self._maybe_flush()

    # -- lifecycle -----------------------------------------------------------

    def flush(self) -> None:
        """Push pending rows to SQLite (still inside the transaction)."""
        if self._io_rows:
            self._cursor.executemany(
                "INSERT INTO xform_io (event_id, run_id, processor, role, "
                "port, idx, value_json, value_id) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                self._io_rows,
            )
            self._io_rows.clear()
        if self._xfer_rows:
            self._cursor.executemany(
                "INSERT INTO xfer (run_id, src_node, src_port, src_idx, "
                "dst_node, dst_port, dst_idx, value_json, value_id) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                self._xfer_rows,
            )
            self._xfer_rows.clear()

    def commit(self) -> None:
        """Flush and commit the run."""
        self._require_open()
        self.flush()
        self.store._conn.commit()
        self._cursor.close()
        self._open = False

    def rollback(self) -> None:
        """Discard the whole run (including the run row)."""
        if not self._open:
            return
        self._io_rows.clear()
        self._xfer_rows.clear()
        self.store._conn.rollback()
        self._cursor.close()
        self._open = False

    def __enter__(self) -> "StreamingTraceWriter":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is None:
            self.commit()
        else:
            self.rollback()

    def _maybe_flush(self) -> None:
        if len(self._io_rows) + len(self._xfer_rows) >= self.batch_size:
            self.flush()

    def _require_open(self) -> None:
        if not self._open:
            raise RuntimeError(
                f"streaming writer for run {self.run_id!r} is closed"
            )
