"""Provenance trace capture, storage, and graph views.

A *trace* ``T_E_D`` is the collection of all observable *xform* and *xfer*
events of one execution of a dataflow ``D`` (Section 2.3).  This package
provides:

``Trace`` / ``TraceBuilder``
    In-memory event collection; the builder implements the engine's
    listener protocol, so ``run_workflow(flow, inputs, listener=builder)``
    captures a full trace with no further wiring.

``TraceStore``
    The relational implementation (SQLite; the paper used MySQL 5.1) with
    the *xform* / *xfer* relations, composite indexes on the lookup paths
    both query strategies use, and multi-run accumulation keyed by run id.

``graph``
    The provenance-graph view of Section 2.4 — bindings as nodes, an arc
    per event dependency — materialized as a ``networkx`` DiGraph for
    inspection, export, and an independent reference implementation of the
    lineage definition used by the test suite as ground truth.
"""

from repro.provenance.capture import capture_run
from repro.provenance.export import (
    provenance_to_dot,
    save_prov_document,
    to_prov_document,
)
from repro.provenance.graph import provenance_digraph, reference_lineage
from repro.provenance.maintenance import (
    IntegrityReport,
    integrity_check,
    prune_runs,
    run_inventory,
    vacuum,
)
from repro.provenance.store import StoreStats, TraceStore
from repro.provenance.streaming import StreamingTraceWriter
from repro.provenance.trace import Trace, TraceBuilder, new_run_id

__all__ = [
    "IntegrityReport",
    "integrity_check",
    "prune_runs",
    "run_inventory",
    "vacuum",
    "StoreStats",
    "StreamingTraceWriter",
    "Trace",
    "TraceBuilder",
    "TraceStore",
    "capture_run",
    "new_run_id",
    "provenance_digraph",
    "provenance_to_dot",
    "reference_lineage",
    "save_prov_document",
    "to_prov_document",
]
