"""In-memory provenance traces.

The in-memory form is the engine-facing representation: the executor emits
events into a :class:`TraceBuilder`, and the resulting :class:`Trace` can be
inspected directly, fed to the reference lineage implementation, or bulk
inserted into a :class:`~repro.provenance.store.TraceStore`.
"""

from __future__ import annotations

import itertools
import uuid
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.engine.events import Binding, XferEvent, XformEvent

_run_counter = itertools.count(1)


def new_run_id(prefix: str = "run") -> str:
    """A unique, readable run identifier.

    Combines a session-local counter (readable ordering in test output)
    with a UUID fragment (uniqueness across processes sharing a store).
    """
    return f"{prefix}-{next(_run_counter)}-{uuid.uuid4().hex[:8]}"


@dataclass
class Trace:
    """All observable events of one workflow run."""

    run_id: str
    workflow: str
    xforms: List[XformEvent] = field(default_factory=list)
    xfers: List[XferEvent] = field(default_factory=list)

    # -- statistics ------------------------------------------------------

    @property
    def record_count(self) -> int:
        """Number of relational records this trace occupies.

        Counted the way the paper's Table 1 counts them: one record per
        event binding — each *xform* input and output row plus each *xfer*
        row.
        """
        xform_rows = sum(len(e.inputs) + len(e.outputs) for e in self.xforms)
        return xform_rows + len(self.xfers)

    @property
    def processor_names(self) -> Tuple[str, ...]:
        return tuple(sorted({e.processor for e in self.xforms}))

    def instances_of(self, processor: str) -> List[XformEvent]:
        """All instance executions of one processor, in emission order."""
        return [e for e in self.xforms if e.processor == processor]

    # -- extensional lookups (used by the in-memory reference engine) -----

    def xform_events_producing(self, node: str, port: str) -> Iterator[XformEvent]:
        """Events with an output binding on ``node:port``."""
        for event in self.xforms:
            if event.processor == node and any(
                b.port == port for b in event.outputs
            ):
                yield event

    def xfer_events_into(self, node: str, port: str) -> Iterator[XferEvent]:
        """Transfer events whose sink is ``node:port``."""
        for event in self.xfers:
            if event.sink.node == node and event.sink.port == port:
                yield event

    def bindings(self) -> Iterator[Binding]:
        """Every binding mentioned anywhere in the trace (with duplicates)."""
        for event in self.xforms:
            yield from event.inputs
            yield from event.outputs
        for event in self.xfers:
            yield event.source
            yield event.sink


class TraceBuilder:
    """Engine listener that accumulates a :class:`Trace`.

    >>> builder = TraceBuilder("my-run", "wf")
    >>> # run_workflow(flow, inputs, listener=builder)
    >>> # trace = builder.trace
    """

    def __init__(self, run_id: Optional[str] = None, workflow: str = "") -> None:
        self.trace = Trace(run_id or new_run_id(), workflow)

    def on_xform(self, event: XformEvent) -> None:
        self.trace.xforms.append(event)

    def on_xfer(self, event: XferEvent) -> None:
        self.trace.xfers.append(event)


def merge_statistics(traces: List[Trace]) -> Dict[str, int]:
    """Aggregate record counts over several traces (multi-run stores)."""
    return {
        "runs": len(traces),
        "xform_events": sum(len(t.xforms) for t in traces),
        "xfer_events": sum(len(t.xfers) for t in traces),
        "records": sum(t.record_count for t in traces),
    }
