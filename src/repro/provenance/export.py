"""Interoperable exports of provenance traces.

Two formats:

* **PROV-style JSON** (:func:`to_prov_document`) — the W3C PROV-DM
  vocabulary the provenance community standardized on after OPM: each
  binding becomes an *entity*, each processor instance an *activity*,
  inputs become ``used`` relations, outputs ``wasGeneratedBy``, and
  transfers ``wasDerivedFrom`` (identity derivations along arcs).  The
  output is plain JSON-serializable data in the shape of a PROV-JSON
  document, so external provenance tooling can consume exported traces.

* **GraphViz dot** (:func:`provenance_to_dot`) — the binding-level
  provenance DAG of Section 2.4, for visual inspection of small traces.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.engine.events import Binding
from repro.provenance.trace import Trace

PROV_PREFIX = "repro"


def _entity_id(binding: Binding) -> str:
    index = binding.index.encode() or "whole"
    return f"{PROV_PREFIX}:{binding.node}/{binding.port}@{index}"


def _activity_id(processor: str, instance: int) -> str:
    return f"{PROV_PREFIX}:{processor}#{instance}"


def to_prov_document(trace: Trace, include_values: bool = True) -> Dict[str, Any]:
    """Encode one trace as a PROV-JSON-shaped document."""
    entities: Dict[str, Dict[str, Any]] = {}
    activities: Dict[str, Dict[str, Any]] = {}
    used: Dict[str, Dict[str, str]] = {}
    generated: Dict[str, Dict[str, str]] = {}
    derived: Dict[str, Dict[str, str]] = {}

    def note_entity(binding: Binding) -> str:
        entity_id = _entity_id(binding)
        if entity_id not in entities:
            record: Dict[str, Any] = {
                f"{PROV_PREFIX}:node": binding.node,
                f"{PROV_PREFIX}:port": binding.port,
                f"{PROV_PREFIX}:index": binding.index.encode(),
            }
            if include_values and binding.value is not None:
                record[f"{PROV_PREFIX}:value"] = json.loads(
                    json.dumps(binding.value, default=repr)
                )
            entities[entity_id] = record
        return entity_id

    instance_counters: Dict[str, int] = {}
    for event in trace.xforms:
        instance = instance_counters.get(event.processor, 0)
        instance_counters[event.processor] = instance + 1
        activity_id = _activity_id(event.processor, instance)
        activities[activity_id] = {
            f"{PROV_PREFIX}:processor": event.processor,
            f"{PROV_PREFIX}:instance": instance,
        }
        for binding in event.inputs:
            relation_id = f"u{len(used)}"
            used[relation_id] = {
                "prov:activity": activity_id,
                "prov:entity": note_entity(binding),
            }
        for binding in event.outputs:
            relation_id = f"g{len(generated)}"
            generated[relation_id] = {
                "prov:entity": note_entity(binding),
                "prov:activity": activity_id,
            }
    for event in trace.xfers:
        relation_id = f"d{len(derived)}"
        derived[relation_id] = {
            "prov:generatedEntity": note_entity(event.sink),
            "prov:usedEntity": note_entity(event.source),
            f"{PROV_PREFIX}:kind": "xfer",
        }

    return {
        "prefix": {PROV_PREFIX: "urn:repro:"},
        f"{PROV_PREFIX}:run": trace.run_id,
        f"{PROV_PREFIX}:workflow": trace.workflow,
        "entity": entities,
        "activity": activities,
        "used": used,
        "wasGeneratedBy": generated,
        "wasDerivedFrom": derived,
    }


def save_prov_document(
    trace: Trace, path: str, include_values: bool = True
) -> None:
    """Write the PROV document as JSON."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(
            to_prov_document(trace, include_values), handle, indent=2,
            sort_keys=True,
        )


def provenance_to_dot(trace: Trace, max_label: int = 24) -> str:
    """Render the binding-level provenance DAG as GraphViz source."""

    def node_id(binding: Binding) -> str:
        return f"{binding.node}:{binding.port}[{binding.index.encode()}]"

    def label(binding: Binding) -> str:
        text = node_id(binding)
        if binding.value is not None:
            payload = json.dumps(binding.value, default=repr)
            if len(payload) > max_label:
                payload = payload[: max_label - 3] + "..."
            text += f"\\n{payload}"
        return text

    lines = [f'digraph "trace {trace.run_id}" {{', "  node [shape=box];"]
    seen = set()

    def emit_node(binding: Binding) -> None:
        identifier = node_id(binding)
        if identifier in seen:
            return
        seen.add(identifier)
        lines.append(f'  "{identifier}" [label="{label(binding)}"];')

    for event in trace.xforms:
        for source in event.inputs:
            emit_node(source)
            for sink in event.outputs:
                emit_node(sink)
                lines.append(
                    f'  "{node_id(source)}" -> "{node_id(sink)}" '
                    f'[label="{event.processor}"];'
                )
    for event in trace.xfers:
        emit_node(event.source)
        emit_node(event.sink)
        lines.append(
            f'  "{node_id(event.source)}" -> "{node_id(event.sink)}" '
            "[style=dashed];"
        )
    lines.append("}")
    return "\n".join(lines)
