"""One-call capture of a workflow run's provenance."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.engine.executor import RunResult, WorkflowRunner
from repro.engine.processors import ProcessorRegistry
from repro.provenance.trace import Trace, TraceBuilder, new_run_id
from repro.workflow.model import Dataflow


@dataclass
class CapturedRun:
    """A run result paired with its provenance trace."""

    result: RunResult
    trace: Trace

    @property
    def run_id(self) -> str:
        return self.trace.run_id

    @property
    def outputs(self) -> Dict[str, Any]:
        return self.result.outputs


def capture_run(
    flow: Dataflow,
    inputs: Dict[str, Any],
    runner: Optional[WorkflowRunner] = None,
    registry: Optional[ProcessorRegistry] = None,
    run_id: Optional[str] = None,
) -> CapturedRun:
    """Execute ``flow`` on ``inputs`` and capture the full trace.

    Pass an existing ``runner`` to reuse its cached depth analysis across
    repeated runs of the same workflow (parameter sweeps); otherwise a
    fresh runner (optionally over a custom ``registry``) is created.
    """
    if runner is None:
        runner = WorkflowRunner(registry)
    builder = TraceBuilder(run_id or new_run_id(), flow.name)
    result = runner.run(flow, inputs, listener=builder)
    return CapturedRun(result=result, trace=builder.trace)
