"""One-call capture of a workflow run's provenance.

Capture is thread-safe: a :class:`~repro.engine.executor.WorkflowRunner`
holds no per-run state (each call gets its own port-value map and trace
builder), so one runner may be shared by concurrent captures of the same
workflow — which is exactly what :func:`capture_runs` and the service's
concurrent ``run`` path do.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.engine.executor import RunResult, WorkflowRunner
from repro.engine.processors import ProcessorRegistry
from repro.provenance.trace import Trace, TraceBuilder, new_run_id
from repro.workflow.model import Dataflow


@dataclass
class CapturedRun:
    """A run result paired with its provenance trace."""

    result: RunResult
    trace: Trace

    @property
    def run_id(self) -> str:
        return self.trace.run_id

    @property
    def outputs(self) -> Dict[str, Any]:
        return self.result.outputs


def capture_run(
    flow: Dataflow,
    inputs: Dict[str, Any],
    runner: Optional[WorkflowRunner] = None,
    registry: Optional[ProcessorRegistry] = None,
    run_id: Optional[str] = None,
) -> CapturedRun:
    """Execute ``flow`` on ``inputs`` and capture the full trace.

    Pass an existing ``runner`` to reuse its cached depth analysis across
    repeated runs of the same workflow (parameter sweeps); otherwise a
    fresh runner (optionally over a custom ``registry``) is created.
    """
    if runner is None:
        runner = WorkflowRunner(registry)
    builder = TraceBuilder(run_id or new_run_id(), flow.name)
    result = runner.run(flow, inputs, listener=builder)
    return CapturedRun(result=result, trace=builder.trace)


def capture_runs(
    flow: Dataflow,
    inputs_list: Sequence[Dict[str, Any]],
    runner: Optional[WorkflowRunner] = None,
    registry: Optional[ProcessorRegistry] = None,
    max_workers: int = 1,
) -> List[CapturedRun]:
    """Capture one run per input dict, optionally on a thread pool.

    Results are returned in input order.  All captures share one runner
    (and hence one cached depth analysis); with ``max_workers > 1`` the
    executions overlap — useful for filling multi-run stores quickly in
    benchmarks and stress tests.
    """
    if runner is None:
        runner = WorkflowRunner(registry)
    if max_workers <= 1 or len(inputs_list) <= 1:
        return [capture_run(flow, inputs, runner=runner) for inputs in inputs_list]
    workers = min(max_workers, len(inputs_list))
    with ThreadPoolExecutor(max_workers=workers) as pool:
        return list(
            pool.map(lambda inputs: capture_run(flow, inputs, runner=runner),
                     inputs_list)
        )
