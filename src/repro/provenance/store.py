"""Relational trace store on SQLite.

The paper implements traces "based on a standard RDBMS, with no need for
auxiliary data structures" (Section 5) — MySQL 5.1 in their setup.  This
module is the SQLite equivalent, with the same relational shape:

``runs``
    one row per workflow execution (``run_id`` is the multi-run scope key
    of Section 3.4);
``xform_event`` / ``xform_io``
    relation (1): one event row per processor instance plus one io row per
    input/output binding, carrying the port, the encoded index path and the
    value payload;
``xfer``
    relation (2): one row per element transferred along an arc.

Every lookup path used by the two query strategies is covered by a
composite index, which is what makes the paper's Fig. 6 observation hold
("all of the queries on the traces involve the use of indexes, with none
requiring full table scans").

Concurrency contract
--------------------

A store is safe to share between threads: many readers, one writer at a
time.

* **File-backed stores** run in WAL mode and hand each thread its own
  connection from a thread-local pool, so readers execute genuinely in
  parallel (SQLite releases the GIL inside ``sqlite3_step``) and never
  block behind a writer.  WAL snapshot isolation plus the single
  transaction per :meth:`insert_trace` guarantee a run is either fully
  visible or not visible at all — readers can never observe a partial run.
* **In-memory stores** cannot share one database across connections, so a
  single ``check_same_thread=False`` connection is serialized behind one
  lock (readers included).  Same all-or-nothing guarantee, no read
  parallelism.

All writes go through a single writer lock and a retry loop: transient
``SQLITE_BUSY``/``SQLITE_LOCKED`` errors are retried with exponential
backoff under a configurable :class:`RetryPolicy`; once the budget is
exhausted a :class:`StoreBusyError` is raised.  A
:class:`~repro.provenance.faults.FaultInjector` can be supplied to
deterministically inject busy storms, slow I/O and mid-transaction
crashes — the test suite uses it to prove the recovery paths.

Index matching
--------------

Lineage lookups must relate a *query index* ``p`` to the *recorded* indices
of trace rows, which can be coarser (the processor consumed/produced a
bigger chunk) or finer (the processor iterated inside the chunk named by
``p``).  All lookups therefore match rows whose index is equal to ``p``, a
prefix of ``p``, or an extension of ``p``:

* equal/prefix rows resolve with an ``idx IN (...)`` over the ``|p|+1``
  prefixes of ``p`` — constant-size, fully indexed;
* extension rows resolve with ``idx LIKE 'p.%'``, sargable on the same
  index because the pattern has a fixed prefix.

:class:`StoreStats` counts SQL round-trips and fetched rows so benchmarks
can report machine-independent access costs next to wall-clock times.

Set-based (batched) lookups
---------------------------

Each lookup primitive has a ``*_many`` sibling that answers a whole set
of ``(run_id, processor, port, index)`` keys in one SQL statement: the
keys become rows of an inline ``VALUES`` table joined against the trace
relation, so SQLite runs one indexed seek per key *inside* a single
round-trip instead of one round-trip per key.  The index-matching rule
above is preserved exactly — equal/prefix rows join on equality against
the enumerated prefixes of each key, extension rows on the sargable
range ``(p + '.', p + '/')`` (``'/'`` is the successor of ``'.'``; index
encodings contain only digits and dots, so the range is precisely the
``idx LIKE 'p.%'`` set).

Key sets larger than :attr:`BatchConfig.chunk_size` are split across
several statements, and a statement is flushed early when the next key
would exceed the conservative bound-variable budget — so round-trips
for ``k`` keys are ``ceil(k / chunk)``, never ``k``.  Batched traffic is
accounted separately (``StoreStats.batch_lookups`` / ``batch_keys`` and
the ``store.batch_*`` observability instruments) next to the ordinary
round-trip counters.

Write generations
-----------------

Every store keeps an in-process, monotonic **write generation** per run
plus one **global generation** and one **membership generation**:

* the per-run generation is bumped whenever that run's rows change
  (``insert_trace``, ``delete_run``);
* the global generation is bumped by store-wide maintenance that cannot
  be attributed to a single run (``vacuum``, ``gc_value_pool``, index
  drops/rebuilds) — conservative invalidation for anything that might
  change what reads observe;
* the membership generation is bumped whenever the *set* of stored runs
  changes (ingest or delete), so run-list lookups can be memoized.

The generation vector of a run set (:meth:`TraceStore.generation_vector`)
is the coherence token of :mod:`repro.cache`: a cache entry captured
under one vector is valid iff the current vector still compares equal.
Generations live in memory (no SQL round-trip to read them — that is the
point: warm cache hits must cost zero store reads), so they describe
writes made *through this store object*.  All threads of a process share
one :class:`TraceStore` under the documented concurrency contract, which
makes the in-memory view complete; out-of-process writers are outside
the contract and outside the cache's coherence guarantee.

Interested layers may register an invalidation listener
(:meth:`TraceStore.add_invalidation_listener`); it is called with the
bumped run id, or ``None`` for a global bump, after every generation
change.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.engine.events import Binding, XferEvent, XformEvent
from repro.obs.core import NO_OBS, Observability
from repro.provenance.faults import NO_FAULTS, FaultInjector
from repro.provenance.trace import Trace
from repro.values.index import Index
from repro.values.pattern import IndexPattern
from repro.workflow.model import PortRef

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id        TEXT PRIMARY KEY,
    workflow      TEXT NOT NULL,
    created_at    TEXT NOT NULL DEFAULT (datetime('now'))
);

CREATE TABLE IF NOT EXISTS xform_event (
    event_id      INTEGER PRIMARY KEY,
    run_id        TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    processor     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS ix_xform_event_proc
    ON xform_event(run_id, processor);

CREATE TABLE IF NOT EXISTS xform_io (
    event_id      INTEGER NOT NULL REFERENCES xform_event(event_id)
                  ON DELETE CASCADE,
    run_id        TEXT NOT NULL,
    processor     TEXT NOT NULL,
    role          TEXT NOT NULL CHECK (role IN ('in', 'out')),
    port          TEXT NOT NULL,
    idx           TEXT NOT NULL,
    value_json    TEXT,
    value_id      INTEGER REFERENCES value_pool(value_id)
);
CREATE INDEX IF NOT EXISTS ix_xform_io_lookup
    ON xform_io(run_id, processor, port, role, idx);
-- Role-free covering prefix for the batched VALUES-joins: keeps the
-- per-key seeks of a multi-key statement index-driven even when the
-- optimizer declines the role column.
CREATE INDEX IF NOT EXISTS ix_xform_io_batch
    ON xform_io(run_id, processor, port, idx);
CREATE INDEX IF NOT EXISTS ix_xform_io_event
    ON xform_io(event_id, role);

CREATE TABLE IF NOT EXISTS xfer (
    run_id        TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    src_node      TEXT NOT NULL,
    src_port      TEXT NOT NULL,
    src_idx       TEXT NOT NULL,
    dst_node      TEXT NOT NULL,
    dst_port      TEXT NOT NULL,
    dst_idx       TEXT NOT NULL,
    value_json    TEXT,
    value_id      INTEGER REFERENCES value_pool(value_id)
);
CREATE INDEX IF NOT EXISTS ix_xfer_dst
    ON xfer(run_id, dst_node, dst_port, dst_idx);
CREATE INDEX IF NOT EXISTS ix_xfer_src
    ON xfer(run_id, src_node, src_port, src_idx);

-- Deduplicated payload storage (used when intern_values is enabled):
-- identical values across rows and runs share one pool entry.
CREATE TABLE IF NOT EXISTS value_pool (
    value_id      INTEGER PRIMARY KEY,
    digest        TEXT NOT NULL UNIQUE,
    value_json    TEXT NOT NULL
);
"""


class StoreBusyError(RuntimeError):
    """A write could not acquire the database within the retry budget."""

    def __init__(self, attempts: int, cause: Optional[BaseException] = None):
        super().__init__(
            f"store stayed busy through {attempts} write attempts"
        )
        self.attempts = attempts
        self.__cause__ = cause


class DuplicateRunError(sqlite3.IntegrityError):
    """A trace with an already-stored ``run_id`` was inserted.

    Subclasses ``sqlite3.IntegrityError`` so callers that guarded against
    the raw constraint violation keep working, but carries an actionable
    message and the offending ``run_id``.
    """

    def __init__(self, run_id: str):
        super().__init__(
            f"run {run_id!r} is already stored; run ids are primary keys "
            "— delete the existing run first or pick a fresh id"
        )
        self.run_id = run_id


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff schedule for busy writes (deterministic)."""

    max_attempts: int = 6
    base_delay: float = 0.002
    multiplier: float = 2.0
    max_delay: float = 0.25

    def delay(self, attempt: int) -> float:
        """Sleep before retry number ``attempt`` (0-based)."""
        return min(self.base_delay * (self.multiplier ** attempt), self.max_delay)


def _is_busy_error(exc: sqlite3.OperationalError) -> bool:
    message = str(exc).lower()
    return "locked" in message or "busy" in message


#: Default number of lookup keys folded into one batched SQL statement.
DEFAULT_BATCH_CHUNK = 32

#: Conservative per-statement bound-variable budget.  SQLite builds since
#: 3.32 allow 32766 host parameters, but the historical default
#: (``SQLITE_MAX_VARIABLE_NUMBER = 999``) is still deployed; staying under
#: it keeps batched statements portable.  A chunk is flushed early when
#: the next key would push the statement over this budget, so a large
#: ``chunk_size`` degrades gracefully instead of erroring.
_MAX_BOUND_VARS = 900


@dataclass(frozen=True)
class BatchConfig:
    """Tuning for the set-based (batched) read path.

    ``chunk_size`` bounds the number of lookup keys folded into one
    ``VALUES``-join statement; larger chunks mean fewer round-trips but
    bigger statements.  Chunks are additionally flushed early to respect
    the SQLite bound-variable budget, whatever the configured size.
    ``BatchConfig.of`` coerces the ``batch=bool|BatchConfig`` convention
    of :meth:`repro.service.ProvenanceService.lineage`.
    """

    enabled: bool = True
    chunk_size: int = DEFAULT_BATCH_CHUNK

    def __post_init__(self) -> None:
        if self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size}"
            )

    @classmethod
    def of(cls, value: Any) -> "BatchConfig":
        """Coerce ``True``/``False``/``None``/config into a config."""
        if isinstance(value, BatchConfig):
            return value
        if value is True:
            return cls()
        if value is None or value is False:
            return cls(enabled=False)
        raise TypeError(
            f"batch must be a bool, None, or BatchConfig, not {value!r}"
        )


#: Run id of the reference rows :mod:`repro.analysis.planlint` seeds into
#: a throwaway store so whole-run primitives (``load_trace``) can emit all
#: of their statements during plan enumeration.  Never used by real data.
PLAN_REFERENCE_RUN = "__planlint__"


@dataclass(frozen=True)
class BindShape:
    """One representative invocation of a SQL primitive.

    ``call`` invokes the primitive on a store with fixed example
    arguments; the plan analyzer captures every SQL statement the call
    issues and runs ``EXPLAIN QUERY PLAN`` over it.  Shapes exist because
    a primitive's SQL varies with its bind shape (prefix-enumeration
    length, chunked ``VALUES`` rows, optional filters) — each registered
    shape pins down one such variant.
    """

    label: str
    call: Callable[["TraceStore"], Any]


@dataclass(frozen=True)
class SqlPrimitive:
    """Catalog entry of one registered store primitive.

    ``hot`` marks primitives on the per-query lookup path (the plan lint
    holds them to seek-only discipline); ``scan_ok`` declares that a full
    relation scan is the primitive's *intent* (whole-table enumeration
    like :meth:`TraceStore.run_ids`); ``sort_ok`` declares an intentional
    ``ORDER BY`` (event-order reconstruction in
    :meth:`TraceStore.load_trace`).  The declarations are part of the
    reviewable contract: a hot primitive can never be excused into a
    scan without editing this catalog.
    """

    name: str
    description: str
    shapes: Tuple[BindShape, ...]
    hot: bool = False
    scan_ok: bool = False
    sort_ok: bool = False


#: Name -> catalog entry for every registered SQL read primitive.
SQL_PRIMITIVES: Dict[str, SqlPrimitive] = {}


def register_sql_primitive(
    name: str,
    description: str,
    shapes: Sequence[BindShape],
    hot: bool = False,
    scan_ok: bool = False,
    sort_ok: bool = False,
) -> SqlPrimitive:
    """Register a primitive that is not a plain ``TraceStore`` method."""
    if name in SQL_PRIMITIVES:
        raise ValueError(f"duplicate SQL primitive {name!r}")
    entry = SqlPrimitive(
        name=name,
        description=description,
        shapes=tuple(shapes),
        hot=hot,
        scan_ok=scan_ok,
        sort_ok=sort_ok,
    )
    SQL_PRIMITIVES[name] = entry
    return entry


def sql_primitive(
    *shapes: BindShape,
    hot: bool = False,
    scan_ok: bool = False,
    sort_ok: bool = False,
) -> Callable[[Callable[..., Any]], Callable[..., Any]]:
    """Register a ``TraceStore`` method in the SQL primitive catalog.

    Purely declarative — the method is returned unchanged (zero runtime
    overhead); the registration feeds :mod:`repro.analysis.planlint`,
    which enumerates every catalog shape against the canonical schema and
    classifies the access path of each statement.
    """

    def register(fn: Callable[..., Any]) -> Callable[..., Any]:
        description = (fn.__doc__ or "").strip().splitlines()[0] if fn.__doc__ else ""
        register_sql_primitive(
            fn.__name__,
            description,
            shapes,
            hot=hot,
            scan_ok=scan_ok,
            sort_ok=sort_ok,
        )
        return fn

    return register


class StoreStats:
    """Mutable, thread-safe counters of store access during a query.

    One instance may be shared by many worker threads (the batched and
    parallel multi-run paths do exactly that), so every mutation happens
    under an internal lock.  Reads of the individual counters are plain
    attribute loads — ints are replaced atomically, so a concurrent reader
    sees a consistent (if instantaneous) value.

    Beyond the original SQL round-trip/row counters, a stats object now
    also records the robustness events its query survived (transient busy
    retries and fault-injector firings; see
    :mod:`repro.provenance.faults`) and the set-based traffic of the
    batched read path: ``batch_lookups`` statements answered
    ``batch_keys`` lookup keys under the last-used ``batch_chunk_size``
    (0 until a batched lookup runs).  Every batched statement also counts
    as one ordinary round-trip in ``queries``, so batched-vs-unbatched
    savings compare directly on the same counter.
    """

    __slots__ = (
        "queries", "rows", "busy_retries", "fault_injections",
        "batch_lookups", "batch_keys", "batch_chunk_size", "_lock",
    )

    def __init__(
        self,
        queries: int = 0,
        rows: int = 0,
        busy_retries: int = 0,
        fault_injections: int = 0,
        batch_lookups: int = 0,
        batch_keys: int = 0,
        batch_chunk_size: int = 0,
    ) -> None:
        self.queries = queries
        self.rows = rows
        self.busy_retries = busy_retries
        self.fault_injections = fault_injections
        self.batch_lookups = batch_lookups
        self.batch_keys = batch_keys
        self.batch_chunk_size = batch_chunk_size
        self._lock = threading.Lock()

    def record(self, fetched: int) -> None:
        """Count one SQL round-trip that fetched ``fetched`` rows."""
        with self._lock:
            self.queries += 1
            self.rows += fetched

    def record_batch(self, keys: int, chunk_size: int) -> None:
        """Count one batched statement answering ``keys`` lookup keys."""
        with self._lock:
            self.batch_lookups += 1
            self.batch_keys += keys
            self.batch_chunk_size = chunk_size

    def record_retry(self, injected: bool = False) -> None:
        """Count one transient busy retry (``injected`` when fault-made)."""
        with self._lock:
            self.busy_retries += 1
            if injected:
                self.fault_injections += 1

    def merge(self, other: "StoreStats") -> None:
        """Fold another stats object into this one (thread-safe)."""
        with self._lock:
            self.queries += other.queries
            self.rows += other.rows
            self.busy_retries += other.busy_retries
            self.fault_injections += other.fault_injections
            self.batch_lookups += other.batch_lookups
            self.batch_keys += other.batch_keys
            if other.batch_chunk_size:
                self.batch_chunk_size = other.batch_chunk_size

    def reset(self) -> None:
        with self._lock:
            self.queries = 0
            self.rows = 0
            self.busy_retries = 0
            self.fault_injections = 0
            self.batch_lookups = 0
            self.batch_keys = 0
            self.batch_chunk_size = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "queries": self.queries,
            "rows": self.rows,
            "busy_retries": self.busy_retries,
            "fault_injections": self.fault_injections,
            "batch_lookups": self.batch_lookups,
            "batch_keys": self.batch_keys,
            "batch_chunk_size": self.batch_chunk_size,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StoreStats):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        return (
            f"StoreStats(queries={self.queries}, rows={self.rows}, "
            f"busy_retries={self.busy_retries}, "
            f"fault_injections={self.fault_injections}, "
            f"batch_lookups={self.batch_lookups}, "
            f"batch_keys={self.batch_keys})"
        )


@dataclass(frozen=True)
class XformMatch:
    """One *xform* event matched by an output-index lookup."""

    event_id: int
    output_index: Index


def _encode_value(value: Any) -> str:
    return json.dumps(value, default=repr, separators=(",", ":"))


def _decode_value(text: Optional[str]) -> Any:
    if text is None:
        return None
    return json.loads(text)


def _prefixes(encoded: str) -> List[str]:
    """``p`` itself and every proper prefix, including the empty index."""
    if encoded == "":
        return [""]
    parts = encoded.split(".")
    return [""] + [".".join(parts[: i + 1]) for i in range(len(parts))]


def _extension_range(encoded: str) -> Tuple[str, str]:
    """Half-open string range covering the strict extensions of ``p``.

    Index encodings contain only digits and dots, so the extensions of a
    non-empty ``p`` (the ``idx LIKE 'p.%'`` set) are exactly the strings
    in ``(p + '.', p + '/')`` — ``'/'`` is the character after ``'.'``,
    and every digit sorts above it.  For the empty index the extensions
    are all non-empty encodings: ``('', ':')`` (``':'`` follows ``'9'``).
    Both bounds are exclusive/exclusive under ``idx > lo AND idx < hi``.
    """
    if encoded:
        return encoded + ".", encoded + "/"
    return "", ":"


#: One batched lookup key: ``(run_id, node, port, index)``.
BatchKey = Tuple[str, str, str, Index]

#: Identity of a batched key in result mappings: the same tuple with the
#: index encoded, so callers can build it without holding Index objects.
BatchKeyId = Tuple[str, str, str, str]


def batch_key_id(key: BatchKey) -> BatchKeyId:
    """The result-dict key for one lookup key."""
    run_id, node, port, index = key
    return (run_id, node, port, index.encode())


# -- representative bind shapes for the SQL primitive catalog ---------------
#
# Names deliberately miss the PLAN_REFERENCE_RUN rows: plan shape is
# data-independent, and a miss exercises *every* statement of primitives
# with early-return fast paths (``has_binding``).

#: An element-level query index (two positions -> three prefixes).
_EX_ELEMENT = Index.of((0, 1))
#: The whole-value index (empty path -> the ``LIKE '_%'`` branch).
_EX_ROOT = Index.of(())


def _ex_batch_keys(count: int = 6) -> List[BatchKey]:
    """Mixed-depth lookup keys across two runs (the VALUES-join grid)."""
    return [
        (
            "R1" if i % 2 == 0 else "R2",
            "P",
            "x",
            Index.of(tuple(range(i % 3 + 1))),
        )
        for i in range(count)
    ]


# -- compiled lookups (repro.query.compiled) --------------------------------
#
# A compiled trace query carries every run-independent constant of the
# single-key matching rule, derived once at plan-compile time instead of
# once per execution: the encoded fragment, its enumerated prefixes, the
# LIKE pattern of the single-key statement, the (low, high) extension
# range of the batched statement, and the bound-variable cost the
# chunker charges for the key.  The run id is the only late-bound value.

#: ``(node, port, encoded, prefixes, like, ext_low, ext_high, cost)``.
CompiledLookup = Tuple[str, str, str, Tuple[str, ...], str, str, str, int]

#: One compiled grid key: a run id paired with a compiled lookup.
CompiledPair = Tuple[str, CompiledLookup]


def compile_lookup(node: str, port: str, index: Index) -> CompiledLookup:
    """Fold one trace query's matching-rule constants into a tuple."""
    encoded = index.encode()
    prefixes = tuple(_prefixes(encoded))
    like = f"{encoded}.%" if encoded else "_%"
    low, high = _extension_range(encoded)
    # Each prefix costs one 5-column VALUES row; the extension range one
    # 6-column row — the same charge _batch_chunks levies per key.
    return (node, port, encoded, prefixes, like, low, high,
            5 * len(prefixes) + 6)


def compiled_pair_id(pair: CompiledPair) -> BatchKeyId:
    """The result-dict key for one compiled grid key."""
    run_id, lookup = pair
    return (run_id, lookup[0], lookup[1], lookup[2])


def _ex_compiled_pairs(count: int = 6) -> List[CompiledPair]:
    """Compiled twins of :func:`_ex_batch_keys` (plus the root index)."""
    pairs = [
        (
            "R1" if i % 2 == 0 else "R2",
            compile_lookup("P", "x", Index.of(tuple(range(i % 3 + 1)))),
        )
        for i in range(count)
    ]
    if count == 1:
        pairs = [("R1", compile_lookup("P", "x", _EX_ELEMENT))]
    return pairs


# Pre-rendered SQL text, memoized by shape so a warm compiled plan hands
# the connection byte-identical statement text on every execution —
# which is what lets sqlite3's per-connection statement cache skip the
# re-prepare.  Shapes are bounded by the bound-variable budget, but
# randomized chunk sizes (property tests) can still spray the memo, so
# both dicts are cleared past a generous cap.
_SQL_MEMO_CAP = 4096
_SINGLE_MATCH_SQL: Dict[int, str] = {}
_COMPILED_GRID_SQL: Dict[Tuple[int, int], str] = {}


def _single_match_sql(prefix_count: int) -> str:
    """The single-key matching statement for ``prefix_count`` prefixes."""
    sql = _SINGLE_MATCH_SQL.get(prefix_count)
    if sql is None:
        if len(_SINGLE_MATCH_SQL) >= _SQL_MEMO_CAP:
            _SINGLE_MATCH_SQL.clear()
        placeholders = ",".join("?" for _ in range(prefix_count))
        sql = _SINGLE_MATCH_SQL[prefix_count] = (
            "SELECT DISTINCT processor, port, idx, COALESCE(xform_io.value_json, vp.value_json) FROM xform_io LEFT JOIN value_pool vp ON vp.value_id = xform_io.value_id "
            "WHERE run_id = ? AND processor = ? AND port = ? AND role = 'in' "
            f"AND (idx IN ({placeholders}) OR idx LIKE ?)"
        )
    return sql


def _values_join_sql(
    head: str,
    select: str,
    table: str,
    node_col: str,
    port_col: str,
    idx_col: str,
    role_clause: str,
    value_join: str,
    eq_count: int,
    rg_count: int,
) -> str:
    """Render one chunk's VALUES-join statement text.

    Shared by the interpreted batched path and the compiled-plan path so
    the two can never drift apart — same template, same normalized shape
    under the plan lint, same statement-cache entry.
    """
    eq_values = ",".join("(?,?,?,?,?)" for _ in range(eq_count))
    rg_values = ",".join("(?,?,?,?,?,?)" for _ in range(rg_count))
    return (
        f"{head} v.column1, {select} "
        f"FROM (VALUES {eq_values}) AS v "
        f"JOIN {table} AS t ON t.run_id = v.column2 "
        f"AND t.{node_col} = v.column3 AND t.{port_col} = v.column4 "
        f"{role_clause}AND t.{idx_col} = v.column5 "
        f"{value_join}"
        f"UNION ALL "
        f"{head} v.column1, {select} "
        f"FROM (VALUES {rg_values}) AS v "
        f"JOIN {table} AS t ON t.run_id = v.column2 "
        f"AND t.{node_col} = v.column3 AND t.{port_col} = v.column4 "
        f"{role_clause}AND t.{idx_col} > v.column5 "
        f"AND t.{idx_col} < v.column6 "
        f"{value_join}"
    )


def _compiled_grid_sql(eq_count: int, rg_count: int) -> str:
    """The compiled grid statement for one chunk shape, pre-rendered."""
    key = (eq_count, rg_count)
    sql = _COMPILED_GRID_SQL.get(key)
    if sql is None:
        if len(_COMPILED_GRID_SQL) >= _SQL_MEMO_CAP:
            _COMPILED_GRID_SQL.clear()
        sql = _COMPILED_GRID_SQL[key] = _values_join_sql(
            head="SELECT DISTINCT",
            select=(
                "t.processor, t.port, t.idx, "
                "COALESCE(t.value_json, vp.value_json)"
            ),
            table="xform_io",
            node_col="processor",
            port_col="port",
            idx_col="idx",
            role_clause="AND t.role = 'in' ",
            value_join="LEFT JOIN value_pool vp ON vp.value_id = t.value_id ",
            eq_count=eq_count,
            rg_count=rg_count,
        )
    return sql


class TraceStore:
    """A SQLite-backed multi-run trace database.

    Usable as a context manager; ``path=":memory:"`` (the default) builds
    an ephemeral store, any other path a persistent database file.  See
    the module docstring for the threading contract; ``retry`` tunes the
    busy-write backoff and ``faults`` plugs in deterministic fault
    injection (tests only).
    """

    def __init__(
        self,
        path: str = ":memory:",
        intern_values: bool = False,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultInjector] = None,
        obs: Optional[Observability] = None,
    ) -> None:
        self.path = path
        #: Observability handle (``repro.obs``): counts reads, writes,
        #: fetched rows, busy retries, backoff sleeps, rollbacks and
        #: fault-injection firings, and (when enabled) samples per-read
        #: latency into the ``store.read_seconds`` histogram.  The default
        #: is the shared disabled instance — every hook then short-circuits.
        self.obs = obs if obs is not None else NO_OBS
        #: When enabled, payloads are normalized into ``value_pool`` and
        #: rows carry a ``value_id`` instead of inline JSON — identical
        #: values (which dominate real traces: the same list is transferred
        #: along every arc and consumed by many instances) are stored once.
        self.intern_values = intern_values
        self.retry = retry if retry is not None else RetryPolicy()
        self.faults = faults if faults is not None else NO_FAULTS
        if self.obs.enabled and self.faults is not NO_FAULTS:
            # Mirror injected-fault firings into the same metrics registry
            # the store itself reports into (never touch the shared inert
            # NO_FAULTS singleton).
            self.faults.attach_metrics(self.obs.metrics)
        self._is_memory = path == ":memory:"
        self._closed = False
        # Connection-level statement audit (see set_statement_audit):
        # applied to every existing and future connection when installed.
        self._statement_audit: Optional[Callable[[str], Any]] = None
        # Write generations (see module docstring): in-memory coherence
        # tokens for repro.cache.  Guarded by their own lock so readers
        # never contend with SQL execution.
        self._generation_lock = threading.Lock()
        self._run_generations: Dict[str, int] = {}
        self._global_generation = 0
        self._membership_generation = 0
        self._invalidation_listeners: List[Callable[[Optional[str]], None]] = []
        # Per-connection statement cache accounting (compiled plans):
        # sqlite3 keeps the real prepared-statement cache per connection,
        # keyed by SQL text; we track which statement texts each
        # connection has already prepared so compiled executions can
        # report warm/cold prepares.  The epoch invalidates every
        # connection's tracked set after schema/index maintenance.
        self._stmt_cache_epoch = 0
        #: Approximate prepared-statement reuse counters (unlocked ints:
        #: racy under concurrency by design, exact when single-threaded).
        self.stmt_cache_hits = 0
        self.stmt_cache_misses = 0
        # One writer at a time, across all threads.  RLock so write paths
        # may call read helpers without deadlocking themselves.
        self._writer_lock = threading.RLock()
        self._local = threading.local()
        self._all_connections: List[sqlite3.Connection] = []
        self._connections_guard = threading.Lock()
        if self._is_memory:
            # A private in-memory database exists per connection, so all
            # threads must share this one connection, serialized (reads
            # included) behind the writer lock.
            self._shared_conn: Optional[sqlite3.Connection] = self._connect()
            self._read_guard: Any = self._writer_lock
        else:
            # Thread-local pool over one WAL database: readers get their
            # own connections and run lock-free in parallel.
            self._shared_conn = None
            self._read_guard = nullcontext()
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    # -- connections -------------------------------------------------------

    def _connect(self) -> sqlite3.Connection:
        # check_same_thread=False is safe here: memory-mode connections are
        # serialized behind the store lock, and file-mode connections are
        # only shared for close() after their owning thread is done.
        # cached_statements doubles the sqlite3 default so the full set
        # of compiled-plan chunk shapes stays prepared per connection.
        conn = sqlite3.connect(
            self.path, check_same_thread=False, cached_statements=256
        )
        conn.execute("PRAGMA foreign_keys = ON")
        if not self._is_memory:
            conn.execute("PRAGMA journal_mode = WAL")
            conn.execute("PRAGMA synchronous = NORMAL")
            # First line of defence before our own retry loop kicks in.
            conn.execute("PRAGMA busy_timeout = 100")
        if self._statement_audit is not None:
            conn.set_trace_callback(self._statement_audit)
        with self._connections_guard:
            self._all_connections.append(conn)
        return conn

    def set_statement_audit(
        self, callback: Optional[Callable[[str], Any]]
    ) -> None:
        """Install (or with ``None`` remove) a statement audit hook.

        ``callback`` receives the raw SQL text of **every** statement any
        of this store's connections executes, placeholders unexpanded —
        the seam :mod:`repro.analysis.planlint` uses to prove that a
        query workload touches the trace relations only through
        registered SQL primitives (rule P005).  Applied to all existing
        connections and inherited by future ones.  Test-only by intent:
        the callback runs inside SQLite's statement dispatch.
        """
        self._statement_audit = callback
        with self._connections_guard:
            connections = list(self._all_connections)
        for conn in connections:
            conn.set_trace_callback(callback)

    @property
    def _conn(self) -> sqlite3.Connection:
        """The calling thread's connection.

        Exposed (privately) because maintenance, streaming and ad-hoc
        inspection code issue raw SQL; such callers are single-threaded by
        contract.
        """
        if self._shared_conn is not None:
            return self._shared_conn
        conn = getattr(self._local, "conn", None)
        if conn is None:
            if self._closed:
                raise sqlite3.ProgrammingError(
                    "cannot open a connection on a closed store"
                )
            conn = self._connect()
            self._local.conn = conn
        return conn

    # -- read/write plumbing ----------------------------------------------

    def _read(
        self,
        sql: str,
        params: Sequence[Any] = (),
        stats: Optional[StoreStats] = None,
    ) -> List[Tuple]:
        """Execute one SELECT with fault hooks and busy retry.

        ``stats`` (when supplied by a lookup primitive) receives the
        busy-retry and fault-injection counts for this read; round-trip
        and row counts stay with the caller, which knows whether the read
        belongs to a query.  The ``store.*`` observability counters record
        the same events store-wide.
        """
        obs = self.obs
        last_error: Optional[sqlite3.OperationalError] = None
        started = time.perf_counter() if obs.enabled else 0.0
        for attempt in range(self.retry.max_attempts):
            try:
                self.faults.on_read()
                with self._read_guard:
                    rows = self._conn.execute(sql, params).fetchall()
            except sqlite3.OperationalError as exc:
                if not _is_busy_error(exc):
                    raise
                last_error = exc
                delay = self.retry.delay(attempt)
                if stats is not None:
                    stats.record_retry(injected="injected" in str(exc))
                if obs.enabled:
                    obs.inc("store.busy_retries")
                    obs.inc("store.backoff_sleeps")
                    obs.observe("store.backoff_seconds", delay)
                time.sleep(delay)
                continue
            if obs.enabled:
                obs.inc("store.reads")
                obs.inc("store.rows_fetched", len(rows))
                obs.observe("store.read_seconds", time.perf_counter() - started)
            return rows
        if obs.enabled:
            obs.inc("store.busy_failures")
        raise StoreBusyError(self.retry.max_attempts, last_error)

    def _statement_cache(self) -> set:
        """The calling connection's tracked prepared-statement texts.

        Lazily reset whenever the cache epoch moved (schema or index
        maintenance) so no compiled execution is ever accounted as a warm
        prepare against a statement compiled for the old schema.  Memory
        stores share one connection — and therefore one tracked set —
        across threads; file stores track per thread-local connection.
        """
        holder = self._local if self._shared_conn is None else self
        epoch = self._stmt_cache_epoch
        cached = getattr(holder, "_stmt_cache", None)
        if cached is None or getattr(holder, "_stmt_cache_seen_epoch", -1) != epoch:
            cached = set()
            holder._stmt_cache = cached
            holder._stmt_cache_seen_epoch = epoch
        return cached

    def _read_prepared(
        self,
        sql: str,
        params: Sequence[Any] = (),
        stats: Optional[StoreStats] = None,
    ) -> List[Tuple]:
        """One SELECT through :meth:`_read`, with prepare accounting.

        The actual statement reuse happens inside sqlite3's per-connection
        cache (keyed by SQL text); this wrapper only records whether the
        text was already prepared on this connection, so compiled-plan
        executions can report warm/cold statement-cache behaviour.
        """
        cache = self._statement_cache()
        if sql in cache:
            self.stmt_cache_hits += 1
            if self.obs.enabled:
                self.obs.inc("store.stmt_cache_hits")
        else:
            cache.add(sql)
            self.stmt_cache_misses += 1
            if self.obs.enabled:
                self.obs.inc("store.stmt_cache_misses")
        return self._read(sql, params, stats)

    def statement_cache_stats(self) -> Dict[str, int]:
        """Prepared-statement reuse counters (approximate under threads)."""
        return {
            "hits": self.stmt_cache_hits,
            "misses": self.stmt_cache_misses,
            "epoch": self._stmt_cache_epoch,
        }

    def _read_one(
        self,
        sql: str,
        params: Sequence[Any] = (),
        stats: Optional[StoreStats] = None,
    ) -> Optional[Tuple]:
        rows = self._read(sql, params, stats=stats)
        return rows[0] if rows else None

    def _write_transaction(
        self, work: Callable[[sqlite3.Cursor], None]
    ) -> None:
        """Run ``work`` inside one all-or-nothing write transaction.

        Serialized behind the writer lock; transient busy errors roll the
        transaction back and retry with exponential backoff, anything else
        rolls back and propagates.  ``work`` must therefore be safe to
        re-execute from scratch (every caller rebuilds its statements from
        immutable inputs).
        """
        obs = self.obs
        with self._writer_lock:
            last_error: Optional[sqlite3.OperationalError] = None
            started = time.perf_counter() if obs.enabled else 0.0
            for attempt in range(self.retry.max_attempts):
                conn = self._conn
                cursor = conn.cursor()
                try:
                    self.faults.on_write_attempt()
                    cursor.execute("BEGIN IMMEDIATE")
                    work(cursor)
                    conn.commit()
                    if obs.enabled:
                        obs.inc("store.writes")
                        obs.observe(
                            "store.write_seconds",
                            time.perf_counter() - started,
                        )
                    return
                except sqlite3.OperationalError as exc:
                    conn.rollback()
                    if not _is_busy_error(exc):
                        if obs.enabled:
                            obs.inc("store.rollbacks")
                        raise
                    last_error = exc
                    delay = self.retry.delay(attempt)
                    if obs.enabled:
                        obs.inc("store.rollbacks")
                        obs.inc("store.busy_retries")
                        obs.inc("store.backoff_sleeps")
                        obs.observe("store.backoff_seconds", delay)
                    time.sleep(delay)
                except BaseException:
                    conn.rollback()
                    if obs.enabled:
                        obs.inc("store.rollbacks")
                    raise
                finally:
                    cursor.close()
            if obs.enabled:
                obs.inc("store.busy_failures")
            raise StoreBusyError(self.retry.max_attempts, last_error)

    def _value_ref(
        self, cursor: sqlite3.Cursor, value: Any
    ) -> Tuple[Optional[str], Optional[int]]:
        """``(value_json, value_id)`` for one payload, honouring interning."""
        encoded = _encode_value(value)
        if not self.intern_values:
            return encoded, None
        digest = hashlib.sha256(encoded.encode()).hexdigest()
        row = cursor.execute(
            "SELECT value_id FROM value_pool WHERE digest = ?", (digest,)
        ).fetchone()
        if row is not None:
            return None, row[0]
        cursor.execute(
            "INSERT INTO value_pool (digest, value_json) VALUES (?, ?)",
            (digest, encoded),
        )
        return None, cursor.lastrowid

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self._closed = True
        with self._connections_guard:
            connections, self._all_connections = self._all_connections, []
        for conn in connections:
            try:
                conn.close()
            except sqlite3.ProgrammingError:  # pragma: no cover - defensive
                pass
        self._shared_conn = None
        self._local = threading.local()

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- write generations -------------------------------------------------

    def generation(self, run_id: str) -> int:
        """Current write generation of one run (0 = never written here)."""
        with self._generation_lock:
            return self._run_generations.get(run_id, 0)

    @property
    def global_generation(self) -> int:
        """Store-wide generation, bumped by maintenance operations."""
        with self._generation_lock:
            return self._global_generation

    @property
    def membership_generation(self) -> int:
        """Generation of the *set* of stored runs (ingest/delete bumps)."""
        with self._generation_lock:
            return self._membership_generation

    def generation_vector(
        self, run_ids: Sequence[str]
    ) -> Tuple[int, Tuple[int, ...]]:
        """``(global generation, per-run generations)`` for a run set.

        The coherence token of :mod:`repro.cache`: captured *before* the
        reads it covers, a cache entry stays valid exactly while the
        current vector compares equal.  Reading it takes no SQL
        round-trip, so validating a warm cache hit costs zero store
        accesses.
        """
        with self._generation_lock:
            return (
                self._global_generation,
                tuple(self._run_generations.get(r, 0) for r in run_ids),
            )

    def add_invalidation_listener(
        self, listener: Callable[[Optional[str]], None]
    ) -> None:
        """Call ``listener(run_id)`` after every generation bump.

        ``run_id`` is ``None`` for global (store-wide) bumps.  Listeners
        run synchronously on the bumping thread and must be fast and
        exception-free; :mod:`repro.cache` uses them for eager eviction.
        """
        with self._generation_lock:
            self._invalidation_listeners.append(listener)

    def bump_run_generation(self, run_id: str, membership: bool = False) -> None:
        """Advance one run's generation (and optionally membership)."""
        with self._generation_lock:
            self._run_generations[run_id] = (
                self._run_generations.get(run_id, 0) + 1
            )
            if membership:
                self._membership_generation += 1
            listeners = list(self._invalidation_listeners)
        if self.obs.enabled:
            self.obs.inc("store.generation_bumps")
        for listener in listeners:
            listener(run_id)

    def bump_global_generation(self) -> None:
        """Advance the store-wide generation (maintenance operations)."""
        with self._generation_lock:
            self._global_generation += 1
            # Schema/index maintenance may invalidate prepared statements:
            # moving the epoch makes every connection's tracked statement
            # set lazily reset, so post-maintenance prepares are counted
            # (and reported) as cold again.
            self._stmt_cache_epoch += 1
            listeners = list(self._invalidation_listeners)
        if self.obs.enabled:
            self.obs.inc("store.generation_bumps")
        for listener in listeners:
            listener(None)

    # -- ingestion ---------------------------------------------------------

    @sql_primitive(
        BindShape("point", lambda s: s.has_run("R1")),
    )
    def has_run(self, run_id: str) -> bool:
        """True when a run with this id is (fully) stored."""
        return self._read_one(
            "SELECT 1 FROM runs WHERE run_id = ?", (run_id,)
        ) is not None

    def insert_trace(self, trace: Trace) -> None:
        """Bulk-insert one run's events in a single transaction.

        All-or-nothing: on any failure (busy budget exhausted, crash,
        constraint violation) the store is left exactly as before — a
        partially inserted run is never visible to queries, and the same
        run can be re-inserted afterwards.  A ``run_id`` that is already
        stored raises :class:`DuplicateRunError`.
        """

        def work(cursor: sqlite3.Cursor) -> None:
            try:
                cursor.execute(
                    "INSERT INTO runs (run_id, workflow) VALUES (?, ?)",
                    (trace.run_id, trace.workflow),
                )
            except sqlite3.IntegrityError as exc:
                if "runs.run_id" in str(exc):
                    raise DuplicateRunError(trace.run_id) from None
                raise
            self.faults.on_write_statement()
            io_rows: List[Tuple[Any, ...]] = []
            for event in trace.xforms:
                cursor.execute(
                    "INSERT INTO xform_event (run_id, processor) VALUES (?, ?)",
                    (trace.run_id, event.processor),
                )
                event_id = cursor.lastrowid
                for role, bindings in (("in", event.inputs), ("out", event.outputs)):
                    for binding in bindings:
                        value_json, value_id = self._value_ref(
                            cursor, binding.value
                        )
                        io_rows.append(
                            (
                                event_id,
                                trace.run_id,
                                event.processor,
                                role,
                                binding.port,
                                binding.index.encode(),
                                value_json,
                                value_id,
                            )
                        )
                self.faults.on_write_statement()
            cursor.executemany(
                "INSERT INTO xform_io (event_id, run_id, processor, role, "
                "port, idx, value_json, value_id) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                io_rows,
            )
            self.faults.on_write_statement()
            xfer_rows = []
            for event in trace.xfers:
                value_json, value_id = self._value_ref(
                    cursor, event.source.value
                )
                xfer_rows.append(
                    (
                        trace.run_id,
                        event.source.node,
                        event.source.port,
                        event.source.index.encode(),
                        event.sink.node,
                        event.sink.port,
                        event.sink.index.encode(),
                        value_json,
                        value_id,
                    )
                )
            cursor.executemany(
                "INSERT INTO xfer (run_id, src_node, src_port, src_idx, "
                "dst_node, dst_port, dst_idx, value_json, value_id) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                xfer_rows,
            )
            self.faults.on_write_statement()

        self._write_transaction(work)
        # Only bump after the transaction committed: a failed/rolled-back
        # insert leaves the store unchanged, so caches stay valid.
        self.bump_run_generation(trace.run_id, membership=True)

    def delete_run(self, run_id: str) -> None:
        """Remove one run and all of its events."""
        self._write_transaction(
            lambda cursor: cursor.execute(
                "DELETE FROM runs WHERE run_id = ?", (run_id,)
            )
        )
        self.bump_run_generation(run_id, membership=True)

    # -- index management (ablation support) --------------------------------

    _SECONDARY_INDEXES = (
        "ix_xform_event_proc",
        "ix_xform_io_lookup",
        "ix_xform_io_batch",
        "ix_xform_io_event",
        "ix_xfer_dst",
        "ix_xfer_src",
    )

    def drop_indexes(self) -> None:
        """Drop every secondary index.

        Exists for the index ablation (EXPERIMENTS.md): the paper's Fig. 6
        rests on "all of the queries on the traces involve the use of
        indexes, with none requiring full table scans"; dropping them shows
        the table-scan regime that design decision avoids.
        """

        def work(cursor: sqlite3.Cursor) -> None:
            for name in self._SECONDARY_INDEXES:
                cursor.execute(f"DROP INDEX IF EXISTS {name}")

        self._write_transaction(work)
        self.bump_global_generation()

    def create_indexes(self) -> None:
        """Recreate the secondary indexes (inverse of :meth:`drop_indexes`)."""
        with self._writer_lock:
            self._conn.executescript(_SCHEMA)
            self._conn.commit()
        self.bump_global_generation()

    @sql_primitive(
        BindShape("all", lambda s: s.has_indexes()),
        scan_ok=True,
    )
    def has_indexes(self) -> bool:
        """True when the secondary indexes are present."""
        rows = self._read(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        )
        names = {row[0] for row in rows}
        return all(name in names for name in self._SECONDARY_INDEXES)

    @sql_primitive(
        BindShape("reference", lambda s: s.load_trace(PLAN_REFERENCE_RUN)),
        scan_ok=True,
        sort_ok=True,
    )
    def load_trace(self, run_id: str) -> Trace:
        """Reconstruct one run's full in-memory trace from the store.

        Inverse of :meth:`insert_trace` (event order is preserved via
        rowids).  Used by exports and by round-trip tests.
        """
        workflow_row = self._read_one(
            "SELECT workflow FROM runs WHERE run_id = ?", (run_id,)
        )
        if workflow_row is None:
            raise KeyError(f"no run {run_id!r} in this store")
        trace = Trace(run_id=run_id, workflow=workflow_row[0])
        events = self._read(
            "SELECT event_id, processor FROM xform_event "
            "WHERE run_id = ? ORDER BY event_id",
            (run_id,),
        )
        io_rows = self._read(
            "SELECT event_id, role, port, idx, COALESCE(xform_io.value_json, vp.value_json) FROM xform_io LEFT JOIN value_pool vp ON vp.value_id = xform_io.value_id "
            "WHERE run_id = ? ORDER BY xform_io.rowid",
            (run_id,),
        )
        by_event: Dict[int, Dict[str, List[Binding]]] = {}
        processor_of = {event_id: processor for event_id, processor in events}
        for event_id, role, port, idx, value_json in io_rows:
            bucket = by_event.setdefault(event_id, {"in": [], "out": []})
            bucket[role].append(
                Binding(
                    PortRef(processor_of[event_id], port),
                    Index.decode(idx),
                    value=_decode_value(value_json),
                )
            )
        for event_id, processor in events:
            bucket = by_event.get(event_id, {"in": [], "out": []})
            trace.xforms.append(
                XformEvent(
                    processor,
                    inputs=tuple(bucket["in"]),
                    outputs=tuple(bucket["out"]),
                )
            )
        xfer_rows = self._read(
            "SELECT src_node, src_port, src_idx, dst_node, dst_port, dst_idx, "
            "COALESCE(xfer.value_json, vp.value_json) FROM xfer LEFT JOIN value_pool vp ON vp.value_id = xfer.value_id WHERE run_id = ? ORDER BY xfer.rowid",
            (run_id,),
        )
        for src_node, src_port, src_idx, dst_node, dst_port, dst_idx, vj in xfer_rows:
            value = _decode_value(vj)
            trace.xfers.append(
                XferEvent(
                    Binding(PortRef(src_node, src_port), Index.decode(src_idx),
                            value=value),
                    Binding(PortRef(dst_node, dst_port), Index.decode(dst_idx),
                            value=value),
                )
            )
        return trace

    # -- metadata ----------------------------------------------------------

    @sql_primitive(
        BindShape("all", lambda s: s.run_ids()),
        BindShape("by-workflow", lambda s: s.run_ids("wf")),
        scan_ok=True,
    )
    def run_ids(self, workflow: Optional[str] = None) -> List[str]:
        """All stored run ids, optionally restricted to one workflow."""
        if workflow is None:
            rows = self._read("SELECT run_id FROM runs ORDER BY rowid")
        else:
            rows = self._read(
                "SELECT run_id FROM runs WHERE workflow = ? ORDER BY rowid",
                (workflow,),
            )
        return [row[0] for row in rows]

    @sql_primitive(
        BindShape("all", lambda s: s.record_count()),
        BindShape("per-run", lambda s: s.record_count("R1")),
        scan_ok=True,
    )
    def record_count(self, run_id: Optional[str] = None) -> int:
        """Trace record count as Table 1 counts it (io rows + xfer rows)."""
        if run_id is None:
            io = self._read_one("SELECT COUNT(*) FROM xform_io")[0]
            xf = self._read_one("SELECT COUNT(*) FROM xfer")[0]
        else:
            io = self._read_one(
                "SELECT COUNT(*) FROM xform_io WHERE run_id = ?", (run_id,)
            )[0]
            xf = self._read_one(
                "SELECT COUNT(*) FROM xfer WHERE run_id = ?", (run_id,)
            )[0]
        return io + xf

    @sql_primitive(
        BindShape("all", lambda s: s.statistics()),
        scan_ok=True,
    )
    def statistics(self) -> Dict[str, int]:
        """Store-wide size summary."""
        counts = {
            "runs": "SELECT COUNT(*) FROM runs",
            "xform_events": "SELECT COUNT(*) FROM xform_event",
            "xform_io_rows": "SELECT COUNT(*) FROM xform_io",
            "xfer_rows": "SELECT COUNT(*) FROM xfer",
            "pooled_values": "SELECT COUNT(*) FROM value_pool",
        }
        result = {
            name: self._read_one(sql)[0] for name, sql in counts.items()
        }
        result["records"] = result["xform_io_rows"] + result["xfer_rows"]
        return result

    # -- lookup primitives ---------------------------------------------------

    @sql_primitive(
        BindShape(
            "element",
            lambda s: s.find_xform_by_output("R1", "P", "y", _EX_ELEMENT),
        ),
        BindShape(
            "root", lambda s: s.find_xform_by_output("R1", "P", "y", _EX_ROOT)
        ),
        hot=True,
    )
    def find_xform_by_output(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[XformMatch]:
        """Events whose output on ``node:port`` matches ``index``.

        Matching prefers exact rows, then coarser rows (recorded index is a
        prefix of the query), then finer rows (query is a prefix of the
        recorded index) — within one processor the recorded index length is
        uniform, so exactly one class can be non-empty.
        """
        encoded = index.encode()
        prefixes = _prefixes(encoded)
        placeholders = ",".join("?" for _ in prefixes)
        like = f"{encoded}.%" if encoded else "_%"
        sql = (
            "SELECT event_id, idx FROM xform_io "
            "WHERE run_id = ? AND processor = ? AND port = ? AND role = 'out' "
            f"AND (idx IN ({placeholders}) OR idx LIKE ?)"
        )
        rows = self._read(sql, [run_id, node, port, *prefixes, like], stats=stats)
        if stats is not None:
            stats.record(len(rows))
        exact = [r for r in rows if r[1] == encoded]
        if exact:
            chosen = exact
        else:
            coarser = [r for r in rows if encoded.startswith(r[1])]
            chosen = coarser if coarser else rows
        return [XformMatch(event_id=r[0], output_index=Index.decode(r[1])) for r in chosen]

    @sql_primitive(
        BindShape("events", lambda s: s.xform_inputs([1, 2, 3])),
        hot=True,
    )
    def xform_inputs(
        self,
        event_ids: Sequence[int],
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        """All input bindings of the given events, deduplicated."""
        if not event_ids:
            return []
        placeholders = ",".join("?" for _ in event_ids)
        rows = self._read(
            "SELECT processor, port, idx, COALESCE(xform_io.value_json, vp.value_json) FROM xform_io LEFT JOIN value_pool vp ON vp.value_id = xform_io.value_id "
            f"WHERE event_id IN ({placeholders}) AND role = 'in'",
            list(event_ids),
            stats=stats,
        )
        if stats is not None:
            stats.record(len(rows))
        return _dedupe_bindings(rows)

    @sql_primitive(
        BindShape(
            "element",
            lambda s: s.find_xform_inputs_matching("R1", "P", "x", _EX_ELEMENT),
        ),
        BindShape(
            "root",
            lambda s: s.find_xform_inputs_matching("R1", "P", "x", _EX_ROOT),
        ),
        hot=True,
    )
    def find_xform_inputs_matching(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        """``Q(P, X_i, p_i)`` of Alg. 2: input bindings matching a fragment.

        This is the only trace access INDEXPROJ performs, once per focus
        processor input port (times the number of runs in scope).
        """
        encoded = index.encode()
        prefixes = _prefixes(encoded)
        like = f"{encoded}.%" if encoded else "_%"
        # DISTINCT pushes the (processor, port, idx) dedupe into SQLite:
        # iterated ports repeat the same fragment across many instances
        # (e.g. a cross product touches each element n times), so this
        # shrinks the fetched row set by the iteration factor and runs the
        # dedupe off the GIL.  _dedupe_bindings stays as a guard for the
        # (never expected) case of diverging payloads on one key.
        with self.obs.span(
            "store.lookup", run=run_id, node=node, port=port,
        ) as span:
            rows = self._read(
                _single_match_sql(len(prefixes)),
                [run_id, node, port, *prefixes, like],
                stats=stats,
            )
            span.set(rows=len(rows))
        if stats is not None:
            stats.record(len(rows))
        return _dedupe_bindings(rows)

    # -- forward (impact) lookup primitives ---------------------------------

    @sql_primitive(
        BindShape(
            "element",
            lambda s: s.find_xform_by_input("R1", "P", "x", _EX_ELEMENT),
        ),
        hot=True,
    )
    def find_xform_by_input(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[XformMatch]:
        """Events whose *input* on ``node:port`` matches ``index``.

        The forward mirror of :meth:`find_xform_by_output`, with the same
        exact/coarser/finer preference.
        """
        encoded = index.encode()
        prefixes = _prefixes(encoded)
        placeholders = ",".join("?" for _ in prefixes)
        like = f"{encoded}.%" if encoded else "_%"
        rows = self._read(
            "SELECT event_id, idx FROM xform_io "
            "WHERE run_id = ? AND processor = ? AND port = ? AND role = 'in' "
            f"AND (idx IN ({placeholders}) OR idx LIKE ?)",
            [run_id, node, port, *prefixes, like],
            stats=stats,
        )
        if stats is not None:
            stats.record(len(rows))
        exact = [r for r in rows if r[1] == encoded]
        if exact:
            chosen = exact
        else:
            coarser = [r for r in rows if encoded.startswith(r[1])]
            chosen = coarser if coarser else rows
        return [
            XformMatch(event_id=r[0], output_index=Index.decode(r[1]))
            for r in chosen
        ]

    @sql_primitive(
        BindShape("events", lambda s: s.xform_outputs([1, 2])),
        hot=True,
    )
    def xform_outputs(
        self,
        event_ids: Sequence[int],
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        """All output bindings of the given events, deduplicated."""
        if not event_ids:
            return []
        placeholders = ",".join("?" for _ in event_ids)
        rows = self._read(
            "SELECT processor, port, idx, COALESCE(xform_io.value_json, vp.value_json) FROM xform_io LEFT JOIN value_pool vp ON vp.value_id = xform_io.value_id "
            f"WHERE event_id IN ({placeholders}) AND role = 'out'",
            list(event_ids),
            stats=stats,
        )
        if stats is not None:
            stats.record(len(rows))
        return _dedupe_bindings(rows)

    @sql_primitive(
        BindShape(
            "element", lambda s: s.find_xfer_from("R1", "P", "y", _EX_ELEMENT)
        ),
        hot=True,
    )
    def find_xfer_from(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Tuple[Binding, Index]]:
        """Transfers out of ``node:port`` matching ``index`` — the forward
        mirror of :meth:`find_xfer_into`, with the same continuation rule
        (identity transfers keep the finer of the two indices)."""
        encoded = index.encode()
        prefixes = _prefixes(encoded)
        placeholders = ",".join("?" for _ in prefixes)
        like = f"{encoded}.%" if encoded else "_%"
        rows = self._read(
            "SELECT dst_node, dst_port, dst_idx, src_idx, COALESCE(xfer.value_json, vp.value_json) FROM xfer LEFT JOIN value_pool vp ON vp.value_id = xfer.value_id "
            "WHERE run_id = ? AND src_node = ? AND src_port = ? "
            f"AND (src_idx IN ({placeholders}) OR src_idx LIKE ?)",
            [run_id, node, port, *prefixes, like],
            stats=stats,
        )
        if stats is not None:
            stats.record(len(rows))
        results: List[Tuple[Binding, Index]] = []
        seen = set()
        for dst_node, dst_port, dst_idx, src_idx, value_json in rows:
            if len(src_idx) <= len(encoded):
                continue_index = index
            else:
                continue_index = Index.decode(src_idx)
            key = (dst_node, dst_port, continue_index.encode())
            if key in seen:
                continue
            seen.add(key)
            results.append(
                (
                    Binding(
                        PortRef(dst_node, dst_port),
                        Index.decode(dst_idx),
                        value=_decode_value(value_json),
                    ),
                    continue_index,
                )
            )
        return results

    @sql_primitive(
        BindShape(
            "prefix-wildcard",
            lambda s: s.find_xform_outputs_matching_pattern(
                "R1", "P", "y", IndexPattern(0, None)
            ),
        ),
        hot=True,
    )
    def find_xform_outputs_matching_pattern(
        self,
        run_id: str,
        node: str,
        port: str,
        pattern: "IndexPattern",
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        """Output bindings whose index matches a (possibly wildcarded)
        pattern — the forward analogue of ``Q(P, X_i, p_i)``.

        The fixed leading run of the pattern drives an indexed prefix
        fetch; remaining wildcard constraints are applied client-side.
        """
        prefix = pattern.fixed_prefix()
        encoded = prefix.encode()
        prefixes = _prefixes(encoded)
        placeholders = ",".join("?" for _ in prefixes)
        like = f"{encoded}.%" if encoded else "_%"
        rows = self._read(
            "SELECT processor, port, idx, COALESCE(xform_io.value_json, vp.value_json) FROM xform_io LEFT JOIN value_pool vp ON vp.value_id = xform_io.value_id "
            "WHERE run_id = ? AND processor = ? AND port = ? AND role = 'out' "
            f"AND (idx IN ({placeholders}) OR idx LIKE ?)",
            [run_id, node, port, *prefixes, like],
            stats=stats,
        )
        if stats is not None:
            stats.record(len(rows))
        filtered = [
            row for row in rows if pattern.matches(Index.decode(row[2]))
        ]
        return _dedupe_bindings(filtered)

    @sql_primitive(
        BindShape(
            "runs-3",
            lambda s: s.find_xform_inputs_matching_multi(
                ["R1", "R2", "R3"], "P", "x", _EX_ELEMENT
            ),
        ),
        hot=True,
    )
    def find_xform_inputs_matching_multi(
        self,
        run_ids: Sequence[str],
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> Dict[str, List[Binding]]:
        """Multi-run variant of :meth:`find_xform_inputs_matching`.

        One SQL round-trip covers every run in scope (``run_id IN (...)``);
        results come back grouped per run.  This is the batched execution
        mode of Section 3.4's multi-run queries — beyond the paper's
        per-run loop, but enabled by the same observation that "trace IDs
        are key attributes in our relational implementation".
        """
        if not run_ids:
            return {}
        encoded = index.encode()
        prefixes = _prefixes(encoded)
        like = f"{encoded}.%" if encoded else "_%"
        run_marks = ",".join("?" for _ in run_ids)
        prefix_marks = ",".join("?" for _ in prefixes)
        rows = self._read(
            "SELECT DISTINCT run_id, processor, port, idx, COALESCE(xform_io.value_json, vp.value_json) FROM xform_io LEFT JOIN value_pool vp ON vp.value_id = xform_io.value_id "
            f"WHERE run_id IN ({run_marks}) AND processor = ? AND port = ? "
            f"AND role = 'in' AND (idx IN ({prefix_marks}) OR idx LIKE ?)",
            [*run_ids, node, port, *prefixes, like],
            stats=stats,
        )
        if stats is not None:
            stats.record(len(rows))
        grouped: Dict[str, List[Tuple[str, str, str, Optional[str]]]] = {}
        for run_id, proc, port_name, idx, value_json in rows:
            grouped.setdefault(run_id, []).append(
                (proc, port_name, idx, value_json)
            )
        value_memo: Dict[str, Any] = {}
        return {
            run_id: _dedupe_bindings(entries, value_memo)
            for run_id, entries in grouped.items()
        }

    @sql_primitive(
        BindShape(
            "element", lambda s: s.find_xfer_into("R1", "P", "x", _EX_ELEMENT)
        ),
        BindShape("root", lambda s: s.find_xfer_into("R1", "P", "x", _EX_ROOT)),
        hot=True,
    )
    def find_xfer_into(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Tuple[Binding, Index]]:
        """Transfers into ``node:port`` matching ``index``.

        Returns ``(source binding, continuation index)`` pairs.  Transfers
        are identity on the payload, so when the recorded row is *coarser*
        than the query (whole-value transfer, element query) the traversal
        continues upstream with the original, finer query index; finer rows
        continue with their own recorded index.
        """
        encoded = index.encode()
        prefixes = _prefixes(encoded)
        placeholders = ",".join("?" for _ in prefixes)
        like = f"{encoded}.%" if encoded else "_%"
        rows = self._read(
            "SELECT src_node, src_port, src_idx, dst_idx, COALESCE(xfer.value_json, vp.value_json) FROM xfer LEFT JOIN value_pool vp ON vp.value_id = xfer.value_id "
            "WHERE run_id = ? AND dst_node = ? AND dst_port = ? "
            f"AND (dst_idx IN ({placeholders}) OR dst_idx LIKE ?)",
            [run_id, node, port, *prefixes, like],
            stats=stats,
        )
        if stats is not None:
            stats.record(len(rows))
        results: List[Tuple[Binding, Index]] = []
        seen = set()
        for src_node, src_port, src_idx, dst_idx, value_json in rows:
            if len(dst_idx) <= len(encoded):
                # Exact or coarser row: keep the query's finer index.
                continue_index = index
            else:
                continue_index = Index.decode(dst_idx)
            key = (src_node, src_port, continue_index.encode())
            if key in seen:
                continue
            seen.add(key)
            results.append(
                (
                    Binding(
                        PortRef(src_node, src_port),
                        Index.decode(src_idx),
                        value=_decode_value(value_json),
                    ),
                    continue_index,
                )
            )
        return results

    # -- set-based (batched) lookup primitives ------------------------------

    def _batch_chunks(
        self,
        keys: Sequence[Tuple[int, str, str, str, str]],
        chunk_size: Optional[int],
    ) -> Iterable[List[Tuple[int, str, str, str, str]]]:
        """Split enumerated keys into statement-sized chunks.

        ``keys`` carry ``(ord, run_id, node, port, encoded_index)``.  A
        chunk closes at ``chunk_size`` keys or when the next key would
        exceed the bound-variable budget, whichever comes first.
        """
        limit = chunk_size if chunk_size is not None else DEFAULT_BATCH_CHUNK
        if limit < 1:
            raise ValueError(f"chunk_size must be >= 1, got {limit}")
        chunk: List[Tuple[int, str, str, str, str]] = []
        budget = 0
        for item in keys:
            # Each prefix costs one 5-column VALUES row; the extension
            # range costs one 6-column row.
            cost = 5 * len(_prefixes(item[4])) + 6
            if chunk and (len(chunk) >= limit or budget + cost > _MAX_BOUND_VARS):
                yield chunk
                chunk, budget = [], 0
            chunk.append(item)
            budget += cost
        if chunk:
            yield chunk

    def _read_values_join(
        self,
        keys: Sequence[BatchKey],
        table: str,
        node_col: str,
        port_col: str,
        idx_col: str,
        role: Optional[str],
        select: str,
        with_values: bool,
        distinct: bool,
        stats: Optional[StoreStats],
        chunk_size: Optional[int],
    ) -> List[Tuple]:
        """Execute one multi-key lookup as chunked ``VALUES``-joins.

        Returns ``(key_ord, *selected columns)`` rows across all chunks;
        ``key_ord`` is the key's position in ``keys``, which is how
        callers demultiplex rows back onto their lookup keys.  Each chunk
        is one SQL statement: the equality branch joins the enumerated
        prefixes of every key, the range branch the strict-extension
        range — together exactly the single-key matching rule.  Both
        branches are disjoint per key (prefix rows are never longer than
        the key, extension rows strictly longer), so ``UNION ALL``
        reproduces the single-key row multiset.
        """
        obs = self.obs
        effective_chunk = (
            chunk_size if chunk_size is not None else DEFAULT_BATCH_CHUNK
        )
        # One span per multi-key lookup covers every ``*_many`` entry
        # point; its round-trip count is the batched cost the slowlog
        # and ``aggregate_stats()`` report.
        with obs.span(
            "store.batch", table=table, keys=len(keys),
            chunk_size=effective_chunk,
        ) as span:
            rows = self._read_values_join_impl(
                keys, table, node_col, port_col, idx_col, role, select,
                with_values, distinct, stats, effective_chunk,
            )
            span.set(
                rows=len(rows),
                round_trips=-(-len(keys) // effective_chunk),
            )
        return rows

    def _read_values_join_impl(
        self,
        keys: Sequence[BatchKey],
        table: str,
        node_col: str,
        port_col: str,
        idx_col: str,
        role: Optional[str],
        select: str,
        with_values: bool,
        distinct: bool,
        stats: Optional[StoreStats],
        effective_chunk: int,
    ) -> List[Tuple]:
        obs = self.obs
        role_clause = f"AND t.role = '{role}' " if role else ""
        head = "SELECT DISTINCT" if distinct else "SELECT"
        value_join = (
            "LEFT JOIN value_pool vp ON vp.value_id = t.value_id "
            if with_values
            else ""
        )
        enumerated = [
            (ord_, run_id, node, port, index.encode())
            for ord_, (run_id, node, port, index) in enumerate(keys)
        ]
        rows: List[Tuple] = []
        for chunk in self._batch_chunks(enumerated, effective_chunk):
            eq_params: List[Any] = []
            eq_count = 0
            rg_params: List[Any] = []
            for ord_, run_id, node, port, encoded in chunk:
                for prefix in _prefixes(encoded):
                    eq_params.extend((ord_, run_id, node, port, prefix))
                    eq_count += 1
                low, high = _extension_range(encoded)
                rg_params.extend((ord_, run_id, node, port, low, high))
            sql = _values_join_sql(
                head, select, table, node_col, port_col, idx_col,
                role_clause, value_join, eq_count, len(chunk),
            )
            started = time.perf_counter() if obs.enabled else 0.0
            fetched = self._read(sql, eq_params + rg_params, stats=stats)
            if stats is not None:
                stats.record(len(fetched))
                stats.record_batch(len(chunk), effective_chunk)
            if obs.enabled:
                obs.inc("store.batch_lookups")
                obs.observe("store.batch_size", len(chunk))
                obs.observe(
                    "store.batch_seconds", time.perf_counter() - started
                )
            rows.extend(fetched)
        return rows

    @sql_primitive(
        BindShape(
            "keys-6",
            lambda s: s.find_xform_inputs_matching_many(_ex_batch_keys()),
        ),
        BindShape(
            "chunked",
            lambda s: s.find_xform_inputs_matching_many(
                _ex_batch_keys(10), chunk_size=4
            ),
        ),
        hot=True,
    )
    def find_xform_inputs_matching_many(
        self,
        keys: Sequence[BatchKey],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[BatchKeyId, List[Binding]]:
        """Set-based ``Q(P, X_i, p_i)``: many keys, one statement per chunk.

        The multi-key sibling of :meth:`find_xform_inputs_matching` — the
        batched s2 executor resolves the whole ``plan × run-set`` key grid
        through it.  Every requested key appears in the result, with an
        empty list when nothing matched (so cache layers can backfill
        negative entries exactly like the single-key path does).
        """
        if not keys:
            return {}
        rows = self._read_values_join(
            keys,
            table="xform_io",
            node_col="processor",
            port_col="port",
            idx_col="idx",
            role="in",
            select=(
                "t.processor, t.port, t.idx, "
                "COALESCE(t.value_json, vp.value_json)"
            ),
            with_values=True,
            distinct=True,
            stats=stats,
            chunk_size=chunk_size,
        )
        grouped: Dict[int, List[Tuple[str, str, str, Optional[str]]]] = {}
        for ord_, node, port, idx, value_json in rows:
            grouped.setdefault(ord_, []).append((node, port, idx, value_json))
        value_memo: Dict[str, Any] = {}
        result: Dict[BatchKeyId, List[Binding]] = {}
        for ord_, key in enumerate(keys):
            result[batch_key_id(key)] = _dedupe_bindings(
                grouped.get(ord_, ()), value_memo
            )
        return result

    @sql_primitive(
        BindShape(
            "one",
            lambda s: s.find_xform_inputs_matching_compiled(
                _ex_compiled_pairs(1)
            ),
        ),
        BindShape(
            "grid",
            lambda s: s.find_xform_inputs_matching_compiled(
                _ex_compiled_pairs()
            ),
        ),
        BindShape(
            "chunked",
            lambda s: s.find_xform_inputs_matching_compiled(
                _ex_compiled_pairs(10), chunk_size=4
            ),
        ),
        hot=True,
    )
    def find_xform_inputs_matching_compiled(
        self,
        pairs: Sequence[CompiledPair],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[BatchKeyId, List[Binding]]:
        """Execute a compiled key grid: pre-derived constants, prepared SQL.

        The compiled-plan sibling of
        :meth:`find_xform_inputs_matching_many`: each pair carries its
        matching-rule constants (prefixes, LIKE pattern, extension range,
        bound-variable cost) pre-derived at plan-compile time, and the
        statement text for every chunk shape is pre-rendered and kept warm
        in sqlite3's per-connection prepared-statement cache — so a warm
        plan binds parameters and executes, nothing else.  The rendered
        text is byte-identical to the interpreted siblings' (single-pair
        grids reuse the single-key statement), which is what makes the
        statement cache and the plan-lint baseline shared between the two
        paths.  Every requested key appears in the result, with an empty
        list when nothing matched.
        """
        if not pairs:
            return {}
        obs = self.obs
        if len(pairs) == 1:
            run_id, lookup = pairs[0]
            node, port, encoded, prefixes, like = lookup[:5]
            rows = self._read_prepared(
                _single_match_sql(len(prefixes)),
                [run_id, node, port, *prefixes, like],
                stats=stats,
            )
            if stats is not None:
                stats.record(len(rows))
            return {(run_id, node, port, encoded): _dedupe_bindings(rows)}
        limit = chunk_size if chunk_size is not None else DEFAULT_BATCH_CHUNK
        if limit < 1:
            raise ValueError(f"chunk_size must be >= 1, got {limit}")
        # Chunking mirrors _batch_chunks, with each key's bound-variable
        # cost read off the compiled lookup instead of recomputed.
        chunks: List[List[Tuple[int, str, CompiledLookup]]] = []
        chunk: List[Tuple[int, str, CompiledLookup]] = []
        budget = 0
        for ord_, (run_id, lookup) in enumerate(pairs):
            cost = lookup[7]
            if chunk and (
                len(chunk) >= limit or budget + cost > _MAX_BOUND_VARS
            ):
                chunks.append(chunk)
                chunk, budget = [], 0
            chunk.append((ord_, run_id, lookup))
            budget += cost
        if chunk:
            chunks.append(chunk)
        grouped: Dict[int, List[Tuple[str, str, str, Optional[str]]]] = {}
        for chunk in chunks:
            eq_params: List[Any] = []
            eq_count = 0
            rg_params: List[Any] = []
            for ord_, run_id, lookup in chunk:
                node, port = lookup[0], lookup[1]
                for prefix in lookup[3]:
                    eq_params.extend((ord_, run_id, node, port, prefix))
                eq_count += len(lookup[3])
                rg_params.extend(
                    (ord_, run_id, node, port, lookup[5], lookup[6])
                )
            sql = _compiled_grid_sql(eq_count, len(chunk))
            started = time.perf_counter() if obs.enabled else 0.0
            fetched = self._read_prepared(
                sql, eq_params + rg_params, stats=stats
            )
            if stats is not None:
                stats.record(len(fetched))
                stats.record_batch(len(chunk), limit)
            if obs.enabled:
                obs.inc("store.batch_lookups")
                obs.observe("store.batch_size", len(chunk))
                obs.observe(
                    "store.batch_seconds", time.perf_counter() - started
                )
            for row in fetched:
                grouped.setdefault(row[0], []).append(row[1:])
        value_memo: Dict[str, Any] = {}
        result: Dict[BatchKeyId, List[Binding]] = {}
        for ord_, pair in enumerate(pairs):
            result[compiled_pair_id(pair)] = _dedupe_bindings(
                grouped.get(ord_, ()), value_memo
            )
        return result

    @sql_primitive(
        BindShape(
            "keys-6", lambda s: s.find_xform_by_output_many(_ex_batch_keys())
        ),
        hot=True,
    )
    def find_xform_by_output_many(
        self,
        keys: Sequence[BatchKey],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[BatchKeyId, List[XformMatch]]:
        """Multi-key sibling of :meth:`find_xform_by_output`.

        The per-key exact/coarser/finer preference is applied after the
        batched fetch, so each key's match list is identical to what the
        single-key lookup returns.  This is the level-synchronous NI
        frontier resolver: one statement per chunk answers a whole BFS
        frontier across every run of a multi-run query.
        """
        if not keys:
            return {}
        rows = self._read_values_join(
            keys,
            table="xform_io",
            node_col="processor",
            port_col="port",
            idx_col="idx",
            role="out",
            select="t.event_id, t.idx",
            with_values=False,
            distinct=False,
            stats=stats,
            chunk_size=chunk_size,
        )
        grouped: Dict[int, List[Tuple[int, str]]] = {}
        for ord_, event_id, idx in rows:
            grouped.setdefault(ord_, []).append((event_id, idx))
        result: Dict[BatchKeyId, List[XformMatch]] = {}
        for ord_, key in enumerate(keys):
            encoded = key[3].encode()
            matched = grouped.get(ord_, [])
            exact = [r for r in matched if r[1] == encoded]
            if exact:
                chosen = exact
            else:
                coarser = [r for r in matched if encoded.startswith(r[1])]
                chosen = coarser if coarser else matched
            result[batch_key_id(key)] = [
                XformMatch(event_id=r[0], output_index=Index.decode(r[1]))
                for r in chosen
            ]
        return result

    @sql_primitive(
        BindShape(
            "groups",
            lambda s: s.xform_inputs_many([("R1", (1, 2)), ("R2", (3,))]),
        ),
        hot=True,
    )
    def xform_inputs_many(
        self,
        groups: Sequence[Tuple[str, Sequence[int]]],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[Tuple[str, Tuple[int, ...]], List[Binding]]:
        """Input bindings of many event groups in chunked ``IN`` lookups.

        ``groups`` holds ``(run_id, event_ids)`` pairs — the run id only
        scopes the result key (event ids are globally unique, but cache
        layers key event lookups per run; see
        :class:`repro.cache.trace.TraceReadCache`).  All distinct event
        ids across all groups are fetched together, chunked by the
        bound-variable budget (one bind per event id, so key-count
        chunking would be needlessly fine), then regrouped and
        deduplicated per group exactly like :meth:`xform_inputs`.
        """
        if not groups:
            return {}
        unique_events: List[int] = []
        seen_events: Set[int] = set()
        for _run_id, event_ids in groups:
            for event_id in event_ids:
                if event_id not in seen_events:
                    seen_events.add(event_id)
                    unique_events.append(event_id)
        obs = self.obs
        effective_chunk = (
            chunk_size if chunk_size is not None else DEFAULT_BATCH_CHUNK
        )
        by_event: Dict[int, List[Tuple[str, str, str, Optional[str]]]] = {}
        for start in range(0, len(unique_events), _MAX_BOUND_VARS):
            chunk = unique_events[start : start + _MAX_BOUND_VARS]
            placeholders = ",".join("?" for _ in chunk)
            started = time.perf_counter() if obs.enabled else 0.0
            rows = self._read(
                "SELECT t.event_id, t.processor, t.port, t.idx, "
                "COALESCE(t.value_json, vp.value_json) FROM xform_io AS t "
                "LEFT JOIN value_pool vp ON vp.value_id = t.value_id "
                f"WHERE t.event_id IN ({placeholders}) AND t.role = 'in'",
                chunk,
                stats=stats,
            )
            if stats is not None:
                stats.record(len(rows))
                stats.record_batch(len(chunk), effective_chunk)
            if obs.enabled:
                obs.inc("store.batch_lookups")
                obs.observe("store.batch_size", len(chunk))
                obs.observe(
                    "store.batch_seconds", time.perf_counter() - started
                )
            for event_id, node, port, idx, value_json in rows:
                by_event.setdefault(event_id, []).append(
                    (node, port, idx, value_json)
                )
        value_memo: Dict[str, Any] = {}
        result: Dict[Tuple[str, Tuple[int, ...]], List[Binding]] = {}
        for run_id, event_ids in groups:
            merged: List[Tuple[str, str, str, Optional[str]]] = []
            for event_id in event_ids:
                merged.extend(by_event.get(event_id, ()))
            result[(run_id, tuple(event_ids))] = _dedupe_bindings(
                merged, value_memo
            )
        return result

    @sql_primitive(
        BindShape(
            "keys-6", lambda s: s.find_xfer_into_many(_ex_batch_keys())
        ),
        hot=True,
    )
    def find_xfer_into_many(
        self,
        keys: Sequence[BatchKey],
        stats: Optional[StoreStats] = None,
        chunk_size: Optional[int] = None,
    ) -> Dict[BatchKeyId, List[Tuple[Binding, Index]]]:
        """Multi-key sibling of :meth:`find_xfer_into`.

        Same continuation rule per key (coarser rows keep the query's
        finer index, finer rows continue with their own), applied after
        the batched fetch — this is the batched *xfer* fallback of the
        level-synchronous NI traversal.
        """
        if not keys:
            return {}
        rows = self._read_values_join(
            keys,
            table="xfer",
            node_col="dst_node",
            port_col="dst_port",
            idx_col="dst_idx",
            role=None,
            select=(
                "t.src_node, t.src_port, t.src_idx, t.dst_idx, "
                "COALESCE(t.value_json, vp.value_json)"
            ),
            with_values=True,
            distinct=False,
            stats=stats,
            chunk_size=chunk_size,
        )
        grouped: Dict[
            int, List[Tuple[str, str, str, str, Optional[str]]]
        ] = {}
        for ord_, src_node, src_port, src_idx, dst_idx, value_json in rows:
            grouped.setdefault(ord_, []).append(
                (src_node, src_port, src_idx, dst_idx, value_json)
            )
        value_memo: Dict[str, Any] = {}
        result: Dict[BatchKeyId, List[Tuple[Binding, Index]]] = {}
        for ord_, key in enumerate(keys):
            index = key[3]
            encoded = index.encode()
            entries: List[Tuple[Binding, Index]] = []
            seen: Set[Tuple[str, str, str]] = set()
            for src_node, src_port, src_idx, dst_idx, value_json in grouped.get(
                ord_, ()
            ):
                if len(dst_idx) <= len(encoded):
                    continue_index = index
                else:
                    continue_index = Index.decode(dst_idx)
                dedupe_key = (src_node, src_port, continue_index.encode())
                if dedupe_key in seen:
                    continue
                seen.add(dedupe_key)
                if value_json is None:
                    value = None
                elif value_json in value_memo:
                    value = value_memo[value_json]
                else:
                    value = value_memo[value_json] = json.loads(value_json)
                entries.append(
                    (
                        Binding(
                            PortRef(src_node, src_port),
                            Index.decode(src_idx),
                            value=value,
                        ),
                        continue_index,
                    )
                )
            result[batch_key_id(key)] = entries
        return result

    @sql_primitive(
        BindShape("miss", lambda s: s.has_binding("R1", "P", "x")),
        hot=True,
    )
    def has_binding(self, run_id: str, node: str, port: str) -> bool:
        """True when any trace row mentions ``node:port`` in ``run_id``."""
        row = self._read_one(
            "SELECT 1 FROM xform_io WHERE run_id = ? AND processor = ? "
            "AND port = ? LIMIT 1",
            (run_id, node, port),
        )
        if row:
            return True
        row = self._read_one(
            "SELECT 1 FROM xfer WHERE run_id = ? AND dst_node = ? "
            "AND dst_port = ? LIMIT 1",
            (run_id, node, port),
        )
        return bool(row)


register_sql_primitive(
    "value_digest_lookup",
    "Interning probe: resolve a payload digest to its value_pool row.",
    (
        BindShape(
            "digest",
            lambda s: s._read(
                "SELECT value_id FROM value_pool WHERE digest = ?", ("",)
            ),
        ),
    ),
)


def _dedupe_bindings(
    rows: Iterable[Tuple[str, str, str, Optional[str]]],
    value_memo: Optional[Dict[str, Any]] = None,
) -> List[Binding]:
    """Unique bindings of ``rows``, preserving first-seen order.

    ``value_memo`` shares decoded payloads across calls: multi-run lookups
    fetch the same JSON text once per run, and decoding it once instead of
    once per row is a large constant-factor win (bindings are treated as
    read-only throughout, so sharing the decoded object is safe — the
    store already shares one payload between xfer source and sink).
    """
    seen = set()
    memo = value_memo if value_memo is not None else {}
    bindings: List[Binding] = []
    for node, port, idx, value_json in rows:
        key = (node, port, idx)
        if key in seen:
            continue
        seen.add(key)
        if value_json is None:
            value = None
        elif value_json in memo:
            value = memo[value_json]
        else:
            value = memo[value_json] = json.loads(value_json)
        bindings.append(
            Binding(PortRef(node, port), Index.decode(idx), value=value)
        )
    return bindings
