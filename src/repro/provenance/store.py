"""Relational trace store on SQLite.

The paper implements traces "based on a standard RDBMS, with no need for
auxiliary data structures" (Section 5) — MySQL 5.1 in their setup.  This
module is the SQLite equivalent, with the same relational shape:

``runs``
    one row per workflow execution (``run_id`` is the multi-run scope key
    of Section 3.4);
``xform_event`` / ``xform_io``
    relation (1): one event row per processor instance plus one io row per
    input/output binding, carrying the port, the encoded index path and the
    value payload;
``xfer``
    relation (2): one row per element transferred along an arc.

Every lookup path used by the two query strategies is covered by a
composite index, which is what makes the paper's Fig. 6 observation hold
("all of the queries on the traces involve the use of indexes, with none
requiring full table scans").

Index matching
--------------

Lineage lookups must relate a *query index* ``p`` to the *recorded* indices
of trace rows, which can be coarser (the processor consumed/produced a
bigger chunk) or finer (the processor iterated inside the chunk named by
``p``).  All lookups therefore match rows whose index is equal to ``p``, a
prefix of ``p``, or an extension of ``p``:

* equal/prefix rows resolve with an ``idx IN (...)`` over the ``|p|+1``
  prefixes of ``p`` — constant-size, fully indexed;
* extension rows resolve with ``idx LIKE 'p.%'``, sargable on the same
  index because the pattern has a fixed prefix.

:class:`StoreStats` counts SQL round-trips and fetched rows so benchmarks
can report machine-independent access costs next to wall-clock times.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.engine.events import Binding, XferEvent, XformEvent
from repro.provenance.trace import Trace
from repro.values.index import Index
from repro.values.pattern import IndexPattern
from repro.workflow.model import PortRef

_SCHEMA = """
CREATE TABLE IF NOT EXISTS runs (
    run_id        TEXT PRIMARY KEY,
    workflow      TEXT NOT NULL,
    created_at    TEXT NOT NULL DEFAULT (datetime('now'))
);

CREATE TABLE IF NOT EXISTS xform_event (
    event_id      INTEGER PRIMARY KEY,
    run_id        TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    processor     TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS ix_xform_event_proc
    ON xform_event(run_id, processor);

CREATE TABLE IF NOT EXISTS xform_io (
    event_id      INTEGER NOT NULL REFERENCES xform_event(event_id)
                  ON DELETE CASCADE,
    run_id        TEXT NOT NULL,
    processor     TEXT NOT NULL,
    role          TEXT NOT NULL CHECK (role IN ('in', 'out')),
    port          TEXT NOT NULL,
    idx           TEXT NOT NULL,
    value_json    TEXT,
    value_id      INTEGER REFERENCES value_pool(value_id)
);
CREATE INDEX IF NOT EXISTS ix_xform_io_lookup
    ON xform_io(run_id, processor, port, role, idx);
CREATE INDEX IF NOT EXISTS ix_xform_io_event
    ON xform_io(event_id, role);

CREATE TABLE IF NOT EXISTS xfer (
    run_id        TEXT NOT NULL REFERENCES runs(run_id) ON DELETE CASCADE,
    src_node      TEXT NOT NULL,
    src_port      TEXT NOT NULL,
    src_idx       TEXT NOT NULL,
    dst_node      TEXT NOT NULL,
    dst_port      TEXT NOT NULL,
    dst_idx       TEXT NOT NULL,
    value_json    TEXT,
    value_id      INTEGER REFERENCES value_pool(value_id)
);
CREATE INDEX IF NOT EXISTS ix_xfer_dst
    ON xfer(run_id, dst_node, dst_port, dst_idx);
CREATE INDEX IF NOT EXISTS ix_xfer_src
    ON xfer(run_id, src_node, src_port, src_idx);

-- Deduplicated payload storage (used when intern_values is enabled):
-- identical values across rows and runs share one pool entry.
CREATE TABLE IF NOT EXISTS value_pool (
    value_id      INTEGER PRIMARY KEY,
    digest        TEXT NOT NULL UNIQUE,
    value_json    TEXT NOT NULL
);
"""


@dataclass
class StoreStats:
    """Mutable counters of store access during a query."""

    queries: int = 0
    rows: int = 0

    def record(self, fetched: int) -> None:
        self.queries += 1
        self.rows += fetched

    def reset(self) -> None:
        self.queries = 0
        self.rows = 0


@dataclass(frozen=True)
class XformMatch:
    """One *xform* event matched by an output-index lookup."""

    event_id: int
    output_index: Index


def _encode_value(value: Any) -> str:
    return json.dumps(value, default=repr, separators=(",", ":"))


def _decode_value(text: Optional[str]) -> Any:
    if text is None:
        return None
    return json.loads(text)


def _prefixes(encoded: str) -> List[str]:
    """``p`` itself and every proper prefix, including the empty index."""
    if encoded == "":
        return [""]
    parts = encoded.split(".")
    return [""] + [".".join(parts[: i + 1]) for i in range(len(parts))]


class TraceStore:
    """A SQLite-backed multi-run trace database.

    Usable as a context manager; ``path=":memory:"`` (the default) builds
    an ephemeral store, any other path a persistent database file.
    """

    def __init__(self, path: str = ":memory:", intern_values: bool = False) -> None:
        self.path = path
        #: When enabled, payloads are normalized into ``value_pool`` and
        #: rows carry a ``value_id`` instead of inline JSON — identical
        #: values (which dominate real traces: the same list is transferred
        #: along every arc and consumed by many instances) are stored once.
        self.intern_values = intern_values
        self._conn = sqlite3.connect(path)
        self._conn.execute("PRAGMA foreign_keys = ON")
        if path != ":memory:":
            self._conn.execute("PRAGMA journal_mode = WAL")
            self._conn.execute("PRAGMA synchronous = NORMAL")
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def _value_ref(
        self, cursor: sqlite3.Cursor, value: Any
    ) -> Tuple[Optional[str], Optional[int]]:
        """``(value_json, value_id)`` for one payload, honouring interning."""
        encoded = _encode_value(value)
        if not self.intern_values:
            return encoded, None
        digest = hashlib.sha256(encoded.encode()).hexdigest()
        row = cursor.execute(
            "SELECT value_id FROM value_pool WHERE digest = ?", (digest,)
        ).fetchone()
        if row is not None:
            return None, row[0]
        cursor.execute(
            "INSERT INTO value_pool (digest, value_json) VALUES (?, ?)",
            (digest, encoded),
        )
        return None, cursor.lastrowid

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "TraceStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- ingestion ---------------------------------------------------------

    def insert_trace(self, trace: Trace) -> None:
        """Bulk-insert one run's events in a single transaction."""
        cursor = self._conn.cursor()
        try:
            cursor.execute("BEGIN")
            cursor.execute(
                "INSERT INTO runs (run_id, workflow) VALUES (?, ?)",
                (trace.run_id, trace.workflow),
            )
            io_rows: List[Tuple[Any, ...]] = []
            for event in trace.xforms:
                cursor.execute(
                    "INSERT INTO xform_event (run_id, processor) VALUES (?, ?)",
                    (trace.run_id, event.processor),
                )
                event_id = cursor.lastrowid
                for role, bindings in (("in", event.inputs), ("out", event.outputs)):
                    for binding in bindings:
                        value_json, value_id = self._value_ref(
                            cursor, binding.value
                        )
                        io_rows.append(
                            (
                                event_id,
                                trace.run_id,
                                event.processor,
                                role,
                                binding.port,
                                binding.index.encode(),
                                value_json,
                                value_id,
                            )
                        )
            cursor.executemany(
                "INSERT INTO xform_io (event_id, run_id, processor, role, "
                "port, idx, value_json, value_id) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                io_rows,
            )
            xfer_rows = []
            for event in trace.xfers:
                value_json, value_id = self._value_ref(
                    cursor, event.source.value
                )
                xfer_rows.append(
                    (
                        trace.run_id,
                        event.source.node,
                        event.source.port,
                        event.source.index.encode(),
                        event.sink.node,
                        event.sink.port,
                        event.sink.index.encode(),
                        value_json,
                        value_id,
                    )
                )
            cursor.executemany(
                "INSERT INTO xfer (run_id, src_node, src_port, src_idx, "
                "dst_node, dst_port, dst_idx, value_json, value_id) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
                xfer_rows,
            )
            self._conn.commit()
        except BaseException:
            self._conn.rollback()
            raise
        finally:
            cursor.close()

    def delete_run(self, run_id: str) -> None:
        """Remove one run and all of its events."""
        with self._conn:
            self._conn.execute("DELETE FROM runs WHERE run_id = ?", (run_id,))

    # -- index management (ablation support) --------------------------------

    _SECONDARY_INDEXES = (
        "ix_xform_event_proc",
        "ix_xform_io_lookup",
        "ix_xform_io_event",
        "ix_xfer_dst",
        "ix_xfer_src",
    )

    def drop_indexes(self) -> None:
        """Drop every secondary index.

        Exists for the index ablation (EXPERIMENTS.md): the paper's Fig. 6
        rests on "all of the queries on the traces involve the use of
        indexes, with none requiring full table scans"; dropping them shows
        the table-scan regime that design decision avoids.
        """
        with self._conn:
            for name in self._SECONDARY_INDEXES:
                self._conn.execute(f"DROP INDEX IF EXISTS {name}")

    def create_indexes(self) -> None:
        """Recreate the secondary indexes (inverse of :meth:`drop_indexes`)."""
        self._conn.executescript(_SCHEMA)
        self._conn.commit()

    def has_indexes(self) -> bool:
        """True when the secondary indexes are present."""
        rows = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index'"
        ).fetchall()
        names = {row[0] for row in rows}
        return all(name in names for name in self._SECONDARY_INDEXES)

    def load_trace(self, run_id: str) -> Trace:
        """Reconstruct one run's full in-memory trace from the store.

        Inverse of :meth:`insert_trace` (event order is preserved via
        rowids).  Used by exports and by round-trip tests.
        """
        workflow_row = self._conn.execute(
            "SELECT workflow FROM runs WHERE run_id = ?", (run_id,)
        ).fetchone()
        if workflow_row is None:
            raise KeyError(f"no run {run_id!r} in this store")
        trace = Trace(run_id=run_id, workflow=workflow_row[0])
        events = self._conn.execute(
            "SELECT event_id, processor FROM xform_event "
            "WHERE run_id = ? ORDER BY event_id",
            (run_id,),
        ).fetchall()
        io_rows = self._conn.execute(
            "SELECT event_id, role, port, idx, COALESCE(xform_io.value_json, vp.value_json) FROM xform_io LEFT JOIN value_pool vp ON vp.value_id = xform_io.value_id "
            "WHERE run_id = ? ORDER BY xform_io.rowid",
            (run_id,),
        ).fetchall()
        by_event: Dict[int, Dict[str, List[Binding]]] = {}
        processor_of = {event_id: processor for event_id, processor in events}
        for event_id, role, port, idx, value_json in io_rows:
            bucket = by_event.setdefault(event_id, {"in": [], "out": []})
            bucket[role].append(
                Binding(
                    PortRef(processor_of[event_id], port),
                    Index.decode(idx),
                    value=_decode_value(value_json),
                )
            )
        for event_id, processor in events:
            bucket = by_event.get(event_id, {"in": [], "out": []})
            trace.xforms.append(
                XformEvent(
                    processor,
                    inputs=tuple(bucket["in"]),
                    outputs=tuple(bucket["out"]),
                )
            )
        xfer_rows = self._conn.execute(
            "SELECT src_node, src_port, src_idx, dst_node, dst_port, dst_idx, "
            "COALESCE(xfer.value_json, vp.value_json) FROM xfer LEFT JOIN value_pool vp ON vp.value_id = xfer.value_id WHERE run_id = ? ORDER BY xfer.rowid",
            (run_id,),
        ).fetchall()
        for src_node, src_port, src_idx, dst_node, dst_port, dst_idx, vj in xfer_rows:
            value = _decode_value(vj)
            trace.xfers.append(
                XferEvent(
                    Binding(PortRef(src_node, src_port), Index.decode(src_idx),
                            value=value),
                    Binding(PortRef(dst_node, dst_port), Index.decode(dst_idx),
                            value=value),
                )
            )
        return trace

    # -- metadata ----------------------------------------------------------

    def run_ids(self, workflow: Optional[str] = None) -> List[str]:
        """All stored run ids, optionally restricted to one workflow."""
        if workflow is None:
            rows = self._conn.execute(
                "SELECT run_id FROM runs ORDER BY rowid"
            ).fetchall()
        else:
            rows = self._conn.execute(
                "SELECT run_id FROM runs WHERE workflow = ? ORDER BY rowid",
                (workflow,),
            ).fetchall()
        return [row[0] for row in rows]

    def record_count(self, run_id: Optional[str] = None) -> int:
        """Trace record count as Table 1 counts it (io rows + xfer rows)."""
        if run_id is None:
            io = self._conn.execute("SELECT COUNT(*) FROM xform_io").fetchone()[0]
            xf = self._conn.execute("SELECT COUNT(*) FROM xfer").fetchone()[0]
        else:
            io = self._conn.execute(
                "SELECT COUNT(*) FROM xform_io WHERE run_id = ?", (run_id,)
            ).fetchone()[0]
            xf = self._conn.execute(
                "SELECT COUNT(*) FROM xfer WHERE run_id = ?", (run_id,)
            ).fetchone()[0]
        return io + xf

    def statistics(self) -> Dict[str, int]:
        """Store-wide size summary."""
        counts = {
            "runs": "SELECT COUNT(*) FROM runs",
            "xform_events": "SELECT COUNT(*) FROM xform_event",
            "xform_io_rows": "SELECT COUNT(*) FROM xform_io",
            "xfer_rows": "SELECT COUNT(*) FROM xfer",
            "pooled_values": "SELECT COUNT(*) FROM value_pool",
        }
        result = {
            name: self._conn.execute(sql).fetchone()[0]
            for name, sql in counts.items()
        }
        result["records"] = result["xform_io_rows"] + result["xfer_rows"]
        return result

    # -- lookup primitives ---------------------------------------------------

    def find_xform_by_output(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[XformMatch]:
        """Events whose output on ``node:port`` matches ``index``.

        Matching prefers exact rows, then coarser rows (recorded index is a
        prefix of the query), then finer rows (query is a prefix of the
        recorded index) — within one processor the recorded index length is
        uniform, so exactly one class can be non-empty.
        """
        encoded = index.encode()
        prefixes = _prefixes(encoded)
        placeholders = ",".join("?" for _ in prefixes)
        like = f"{encoded}.%" if encoded else "_%"
        sql = (
            "SELECT event_id, idx FROM xform_io "
            "WHERE run_id = ? AND processor = ? AND port = ? AND role = 'out' "
            f"AND (idx IN ({placeholders}) OR idx LIKE ?)"
        )
        rows = self._conn.execute(
            sql, [run_id, node, port, *prefixes, like]
        ).fetchall()
        if stats is not None:
            stats.record(len(rows))
        exact = [r for r in rows if r[1] == encoded]
        if exact:
            chosen = exact
        else:
            coarser = [r for r in rows if encoded.startswith(r[1])]
            chosen = coarser if coarser else rows
        return [XformMatch(event_id=r[0], output_index=Index.decode(r[1])) for r in chosen]

    def xform_inputs(
        self,
        event_ids: Sequence[int],
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        """All input bindings of the given events, deduplicated."""
        if not event_ids:
            return []
        placeholders = ",".join("?" for _ in event_ids)
        rows = self._conn.execute(
            "SELECT processor, port, idx, COALESCE(xform_io.value_json, vp.value_json) FROM xform_io LEFT JOIN value_pool vp ON vp.value_id = xform_io.value_id "
            f"WHERE event_id IN ({placeholders}) AND role = 'in'",
            list(event_ids),
        ).fetchall()
        if stats is not None:
            stats.record(len(rows))
        return _dedupe_bindings(rows)

    def find_xform_inputs_matching(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        """``Q(P, X_i, p_i)`` of Alg. 2: input bindings matching a fragment.

        This is the only trace access INDEXPROJ performs, once per focus
        processor input port (times the number of runs in scope).
        """
        encoded = index.encode()
        prefixes = _prefixes(encoded)
        placeholders = ",".join("?" for _ in prefixes)
        like = f"{encoded}.%" if encoded else "_%"
        rows = self._conn.execute(
            "SELECT processor, port, idx, COALESCE(xform_io.value_json, vp.value_json) FROM xform_io LEFT JOIN value_pool vp ON vp.value_id = xform_io.value_id "
            "WHERE run_id = ? AND processor = ? AND port = ? AND role = 'in' "
            f"AND (idx IN ({placeholders}) OR idx LIKE ?)",
            [run_id, node, port, *prefixes, like],
        ).fetchall()
        if stats is not None:
            stats.record(len(rows))
        return _dedupe_bindings(rows)

    # -- forward (impact) lookup primitives ---------------------------------

    def find_xform_by_input(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[XformMatch]:
        """Events whose *input* on ``node:port`` matches ``index``.

        The forward mirror of :meth:`find_xform_by_output`, with the same
        exact/coarser/finer preference.
        """
        encoded = index.encode()
        prefixes = _prefixes(encoded)
        placeholders = ",".join("?" for _ in prefixes)
        like = f"{encoded}.%" if encoded else "_%"
        rows = self._conn.execute(
            "SELECT event_id, idx FROM xform_io "
            "WHERE run_id = ? AND processor = ? AND port = ? AND role = 'in' "
            f"AND (idx IN ({placeholders}) OR idx LIKE ?)",
            [run_id, node, port, *prefixes, like],
        ).fetchall()
        if stats is not None:
            stats.record(len(rows))
        exact = [r for r in rows if r[1] == encoded]
        if exact:
            chosen = exact
        else:
            coarser = [r for r in rows if encoded.startswith(r[1])]
            chosen = coarser if coarser else rows
        return [
            XformMatch(event_id=r[0], output_index=Index.decode(r[1]))
            for r in chosen
        ]

    def xform_outputs(
        self,
        event_ids: Sequence[int],
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        """All output bindings of the given events, deduplicated."""
        if not event_ids:
            return []
        placeholders = ",".join("?" for _ in event_ids)
        rows = self._conn.execute(
            "SELECT processor, port, idx, COALESCE(xform_io.value_json, vp.value_json) FROM xform_io LEFT JOIN value_pool vp ON vp.value_id = xform_io.value_id "
            f"WHERE event_id IN ({placeholders}) AND role = 'out'",
            list(event_ids),
        ).fetchall()
        if stats is not None:
            stats.record(len(rows))
        return _dedupe_bindings(rows)

    def find_xfer_from(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Tuple[Binding, Index]]:
        """Transfers out of ``node:port`` matching ``index`` — the forward
        mirror of :meth:`find_xfer_into`, with the same continuation rule
        (identity transfers keep the finer of the two indices)."""
        encoded = index.encode()
        prefixes = _prefixes(encoded)
        placeholders = ",".join("?" for _ in prefixes)
        like = f"{encoded}.%" if encoded else "_%"
        rows = self._conn.execute(
            "SELECT dst_node, dst_port, dst_idx, src_idx, COALESCE(xfer.value_json, vp.value_json) FROM xfer LEFT JOIN value_pool vp ON vp.value_id = xfer.value_id "
            "WHERE run_id = ? AND src_node = ? AND src_port = ? "
            f"AND (src_idx IN ({placeholders}) OR src_idx LIKE ?)",
            [run_id, node, port, *prefixes, like],
        ).fetchall()
        if stats is not None:
            stats.record(len(rows))
        results: List[Tuple[Binding, Index]] = []
        seen = set()
        for dst_node, dst_port, dst_idx, src_idx, value_json in rows:
            if len(src_idx) <= len(encoded):
                continue_index = index
            else:
                continue_index = Index.decode(src_idx)
            key = (dst_node, dst_port, continue_index.encode())
            if key in seen:
                continue
            seen.add(key)
            results.append(
                (
                    Binding(
                        PortRef(dst_node, dst_port),
                        Index.decode(dst_idx),
                        value=_decode_value(value_json),
                    ),
                    continue_index,
                )
            )
        return results

    def find_xform_outputs_matching_pattern(
        self,
        run_id: str,
        node: str,
        port: str,
        pattern: "IndexPattern",
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        """Output bindings whose index matches a (possibly wildcarded)
        pattern — the forward analogue of ``Q(P, X_i, p_i)``.

        The fixed leading run of the pattern drives an indexed prefix
        fetch; remaining wildcard constraints are applied client-side.
        """
        prefix = pattern.fixed_prefix()
        encoded = prefix.encode()
        prefixes = _prefixes(encoded)
        placeholders = ",".join("?" for _ in prefixes)
        like = f"{encoded}.%" if encoded else "_%"
        rows = self._conn.execute(
            "SELECT processor, port, idx, COALESCE(xform_io.value_json, vp.value_json) FROM xform_io LEFT JOIN value_pool vp ON vp.value_id = xform_io.value_id "
            "WHERE run_id = ? AND processor = ? AND port = ? AND role = 'out' "
            f"AND (idx IN ({placeholders}) OR idx LIKE ?)",
            [run_id, node, port, *prefixes, like],
        ).fetchall()
        if stats is not None:
            stats.record(len(rows))
        filtered = [
            row for row in rows if pattern.matches(Index.decode(row[2]))
        ]
        return _dedupe_bindings(filtered)

    def find_xform_inputs_matching_multi(
        self,
        run_ids: Sequence[str],
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> Dict[str, List[Binding]]:
        """Multi-run variant of :meth:`find_xform_inputs_matching`.

        One SQL round-trip covers every run in scope (``run_id IN (...)``);
        results come back grouped per run.  This is the batched execution
        mode of Section 3.4's multi-run queries — beyond the paper's
        per-run loop, but enabled by the same observation that "trace IDs
        are key attributes in our relational implementation".
        """
        if not run_ids:
            return {}
        encoded = index.encode()
        prefixes = _prefixes(encoded)
        like = f"{encoded}.%" if encoded else "_%"
        run_marks = ",".join("?" for _ in run_ids)
        prefix_marks = ",".join("?" for _ in prefixes)
        rows = self._conn.execute(
            "SELECT run_id, processor, port, idx, COALESCE(xform_io.value_json, vp.value_json) FROM xform_io LEFT JOIN value_pool vp ON vp.value_id = xform_io.value_id "
            f"WHERE run_id IN ({run_marks}) AND processor = ? AND port = ? "
            f"AND role = 'in' AND (idx IN ({prefix_marks}) OR idx LIKE ?)",
            [*run_ids, node, port, *prefixes, like],
        ).fetchall()
        if stats is not None:
            stats.record(len(rows))
        grouped: Dict[str, List[Tuple[str, str, str, Optional[str]]]] = {}
        for run_id, proc, port_name, idx, value_json in rows:
            grouped.setdefault(run_id, []).append(
                (proc, port_name, idx, value_json)
            )
        return {
            run_id: _dedupe_bindings(entries)
            for run_id, entries in grouped.items()
        }

    def find_xfer_into(
        self,
        run_id: str,
        node: str,
        port: str,
        index: Index,
        stats: Optional[StoreStats] = None,
    ) -> List[Tuple[Binding, Index]]:
        """Transfers into ``node:port`` matching ``index``.

        Returns ``(source binding, continuation index)`` pairs.  Transfers
        are identity on the payload, so when the recorded row is *coarser*
        than the query (whole-value transfer, element query) the traversal
        continues upstream with the original, finer query index; finer rows
        continue with their own recorded index.
        """
        encoded = index.encode()
        prefixes = _prefixes(encoded)
        placeholders = ",".join("?" for _ in prefixes)
        like = f"{encoded}.%" if encoded else "_%"
        rows = self._conn.execute(
            "SELECT src_node, src_port, src_idx, dst_idx, COALESCE(xfer.value_json, vp.value_json) FROM xfer LEFT JOIN value_pool vp ON vp.value_id = xfer.value_id "
            "WHERE run_id = ? AND dst_node = ? AND dst_port = ? "
            f"AND (dst_idx IN ({placeholders}) OR dst_idx LIKE ?)",
            [run_id, node, port, *prefixes, like],
        ).fetchall()
        if stats is not None:
            stats.record(len(rows))
        results: List[Tuple[Binding, Index]] = []
        seen = set()
        for src_node, src_port, src_idx, dst_idx, value_json in rows:
            if len(dst_idx) <= len(encoded):
                # Exact or coarser row: keep the query's finer index.
                continue_index = index
            else:
                continue_index = Index.decode(dst_idx)
            key = (src_node, src_port, continue_index.encode())
            if key in seen:
                continue
            seen.add(key)
            results.append(
                (
                    Binding(
                        PortRef(src_node, src_port),
                        Index.decode(src_idx),
                        value=_decode_value(value_json),
                    ),
                    continue_index,
                )
            )
        return results

    def has_binding(self, run_id: str, node: str, port: str) -> bool:
        """True when any trace row mentions ``node:port`` in ``run_id``."""
        row = self._conn.execute(
            "SELECT 1 FROM xform_io WHERE run_id = ? AND processor = ? "
            "AND port = ? LIMIT 1",
            (run_id, node, port),
        ).fetchone()
        if row:
            return True
        row = self._conn.execute(
            "SELECT 1 FROM xfer WHERE run_id = ? AND dst_node = ? "
            "AND dst_port = ? LIMIT 1",
            (run_id, node, port),
        ).fetchone()
        return bool(row)


def _dedupe_bindings(rows: Iterable[Tuple[str, str, str, Optional[str]]]) -> List[Binding]:
    seen = set()
    bindings: List[Binding] = []
    for node, port, idx, value_json in rows:
        key = (node, port, idx)
        if key in seen:
            continue
        seen.add(key)
        bindings.append(
            Binding(
                PortRef(node, port), Index.decode(idx), value=_decode_value(value_json)
            )
        )
    return bindings
