"""Index patterns: partially-constrained index paths for forward queries.

Backward lineage propagates *indices* upstream: Prop. 1 splits an output
index into per-port fragments.  Running the same machinery forward —
"which output elements depend on input element ``p``?" — inverts the
projection: an input fragment pins a contiguous slice of every downstream
instance index ``q`` and leaves the remaining positions free.  An
:class:`IndexPattern` captures exactly that: a tuple of positions, each a
fixed integer or a wildcard (``None``).

Matching follows the prefix discipline of the backward engines: a
recorded index matches a pattern when every *overlapping* position agrees
— shorter recorded indices (coarser events) and longer ones (finer
events) both match, mirroring how ``<P:X[]>`` bindings relate to
``<P:X[i]>`` bindings in Section 2.4.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

from repro.values.index import Index


class IndexPattern:
    """An index with wildcards: ``(0, None, 2)`` is ``[0, *, 2]``."""

    __slots__ = ("_positions",)

    def __init__(self, *positions: Optional[int]) -> None:
        checked = []
        for position in positions:
            if position is not None:
                position = int(position)
                if position < 0:
                    raise ValueError("fixed positions must be non-negative")
            checked.append(position)
        self._positions: Tuple[Optional[int], ...] = tuple(checked)

    # -- construction -----------------------------------------------------

    @classmethod
    def of(cls, positions: Iterable[Optional[int]]) -> "IndexPattern":
        return cls(*positions)

    @classmethod
    def from_index(cls, index: Index) -> "IndexPattern":
        """A fully-fixed pattern."""
        return cls(*index.path)

    @classmethod
    def wildcards(cls, length: int) -> "IndexPattern":
        """A fully-free pattern of the given length."""
        return cls(*([None] * length))

    # -- accessors ---------------------------------------------------------

    @property
    def positions(self) -> Tuple[Optional[int], ...]:
        return self._positions

    @property
    def is_fully_fixed(self) -> bool:
        return all(p is not None for p in self._positions)

    def fixed_prefix(self) -> Index:
        """The longest fixed leading run — usable as a sargable SQL prefix."""
        prefix = []
        for position in self._positions:
            if position is None:
                break
            prefix.append(position)
        return Index.of(prefix)

    def __len__(self) -> int:
        return len(self._positions)

    # -- operations ---------------------------------------------------------

    def matches(self, index: Index) -> bool:
        """Prefix-compatible match (see module docstring).

        >>> IndexPattern(0, None).matches(Index(0, 5))
        True
        >>> IndexPattern(0, None).matches(Index(1, 5))
        False
        >>> IndexPattern(0, None).matches(Index(0))   # coarser record
        True
        >>> IndexPattern(0, None).matches(Index(0, 5, 9))  # finer record
        True
        """
        for pattern_pos, index_pos in zip(self._positions, index.path, strict=False):
            if pattern_pos is not None and pattern_pos != index_pos:
                return False
        return True

    def place_fragment(
        self, total_length: int, offset: int, fragment: "IndexPattern"
    ) -> "IndexPattern":
        """A pattern of ``total_length`` wildcards with ``fragment`` written
        at ``offset`` — the forward image of one input fragment inside the
        instance index (inverse of Def. 4's slicing)."""
        positions: list = [None] * total_length
        for i, value in enumerate(fragment.positions):
            slot = offset + i
            if slot >= total_length:
                break  # excess constraint falls inside the black box
            positions[slot] = value
        return IndexPattern(*positions)

    def head(self, length: int) -> "IndexPattern":
        """The first ``length`` positions (clipped)."""
        return IndexPattern(*self._positions[:length])

    def slice(self, start: int, length: int) -> "IndexPattern":
        """Positions ``[start : start+length]``, clipped to the pattern."""
        return IndexPattern(*self._positions[start : start + length])

    # -- identity -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, IndexPattern)
            and self._positions == other._positions
        )

    def __hash__(self) -> int:
        return hash(self._positions)

    def encode(self) -> str:
        return ".".join(
            "*" if p is None else str(p) for p in self._positions
        )

    def __repr__(self) -> str:
        return f"IndexPattern({', '.join(repr(p) for p in self._positions)})"
