"""Index paths into nested list values.

An :class:`Index` identifies one element within an arbitrarily nested list,
following the paper's ``v[p1 ... pk]`` accessor notation (Section 2.1).  The
empty index ``Index()`` denotes the entire value — the paper writes this as
``[]``, e.g. ``<P:X[], v>`` binds the whole of ``v`` to port ``P:X``.

Positions are 0-based (the paper is agnostic; 0-based matches Python
sequence indexing, which keeps :func:`repro.values.nested.get_element`
trivially correct).

Indices are immutable, hashable and totally ordered, so they can be used as
dictionary keys, stored in sets of bindings, and compared deterministically
in test output.  The text codec (:meth:`Index.encode` /
:meth:`Index.decode`) is the canonical representation used by the relational
trace store: the empty index encodes to the empty string, ``[1, 2]`` to
``"1.2"``.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Tuple


class Index:
    """An immutable index path ``[p1, ..., pk]`` into a nested list.

    >>> Index(1, 2)
    Index(1, 2)
    >>> Index() .is_empty
    True
    >>> Index(1) + Index(2, 3)
    Index(1, 2, 3)
    """

    __slots__ = ("_path", "_encoded")

    def __init__(self, *positions: int) -> None:
        path: Tuple[int, ...] = tuple(int(p) for p in positions)
        for p in path:
            if p < 0:
                raise ValueError(f"index positions must be non-negative, got {p}")
        self._path = path
        self._encoded: str = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def of(cls, positions: Iterable[int]) -> "Index":
        """Build an index from any iterable of positions."""
        return cls(*positions)

    @classmethod
    def empty(cls) -> "Index":
        """The empty index ``[]``, denoting a whole value."""
        return _EMPTY

    @classmethod
    def decode(cls, text: str) -> "Index":
        """Inverse of :meth:`encode`.

        >>> Index.decode("1.2")
        Index(1, 2)
        >>> Index.decode("") == Index()
        True
        """
        if text == "":
            return _EMPTY
        if cls is Index:
            cached = _DECODE_CACHE.get(text)
            if cached is not None:
                return cached
        try:
            index = cls(*(int(part) for part in text.split(".")))
        except ValueError as exc:
            raise ValueError(f"malformed index text {text!r}") from exc
        # Indices are immutable and traces repeat a small set of them
        # millions of times, so decoded instances are shared through a
        # bounded cache (bulk lineage answers decode the same few dozen
        # strings per query; the cap only guards pathological key spaces).
        if cls is Index and len(_DECODE_CACHE) < 65536:
            _DECODE_CACHE[text] = index
        return index

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------

    @property
    def path(self) -> Tuple[int, ...]:
        """The positions as a tuple of ints."""
        return self._path

    @property
    def is_empty(self) -> bool:
        """True for the empty index ``[]`` (whole-value binding)."""
        return not self._path

    def encode(self) -> str:
        """Canonical dotted-text form used by the trace store."""
        if not self._encoded and self._path:
            self._encoded = ".".join(str(p) for p in self._path)
        return self._encoded

    def slice(self, start: int, length: int) -> "Index":
        """The fragment ``[p_start, ..., p_(start+length-1)]``.

        This is the primitive behind the index projection rule (Def. 4):
        projections carve consecutive fragments out of an output index.
        Requesting a fragment that extends past the end of the index raises
        ``ValueError`` — projections of well-formed traces never do.
        """
        if start < 0 or length < 0:
            raise ValueError("slice start and length must be non-negative")
        if start + length > len(self._path):
            raise ValueError(
                f"cannot take fragment [{start}:{start + length}] "
                f"of index of length {len(self._path)}"
            )
        return Index(*self._path[start : start + length])

    def head(self, length: int) -> "Index":
        """The first ``length`` positions."""
        return self.slice(0, length)

    def tail_from(self, start: int) -> "Index":
        """All positions from ``start`` onwards."""
        return self.slice(start, len(self._path) - start)

    # ------------------------------------------------------------------
    # Operators
    # ------------------------------------------------------------------

    def __add__(self, other: "Index") -> "Index":
        """Concatenation: ``q = p1 · p2`` as in Prop. 1."""
        if not isinstance(other, Index):
            return NotImplemented
        return Index(*(self._path + other._path))

    def extended(self, position: int) -> "Index":
        """Append a single position (one more nesting level)."""
        return Index(*(self._path + (position,)))

    def starts_with(self, prefix: "Index") -> bool:
        """True when ``prefix`` is a (possibly equal) prefix of this index."""
        return self._path[: len(prefix._path)] == prefix._path

    def __len__(self) -> int:
        return len(self._path)

    def __iter__(self) -> Iterator[int]:
        return iter(self._path)

    def __getitem__(self, i: int) -> int:
        return self._path[i]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Index) and self._path == other._path

    def __lt__(self, other: "Index") -> bool:
        if not isinstance(other, Index):
            return NotImplemented
        return self._path < other._path

    def __le__(self, other: "Index") -> bool:
        if not isinstance(other, Index):
            return NotImplemented
        return self._path <= other._path

    def __hash__(self) -> int:
        return hash(self._path)

    def __repr__(self) -> str:
        return f"Index({', '.join(str(p) for p in self._path)})"


#: Shared decoded-index cache (see :meth:`Index.decode`).
_DECODE_CACHE: dict = {}

_EMPTY = Index()
