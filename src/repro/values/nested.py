"""Structural operations over nested list values.

A *value* is either atomic (any non-list Python object: ``str``, ``int``,
``float``, ``bytes``, ``None``, ...) or a ``list`` of values.  The paper
assumes that all elements of a list sit at the same depth (Section 3.1,
assumption on homogeneous nesting); :func:`is_homogeneous` checks this and
:func:`depth` enforces it.

Tuples are deliberately *not* collections here: the execution engine uses
tuples internally to carry argument packs through the generalized cross
product (Def. 2), so they must read as atoms to the structural functions.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Tuple

from repro.values.index import Index


class MalformedValueError(ValueError):
    """Raised when a value violates the homogeneous-nesting assumption."""


def is_collection(value: Any) -> bool:
    """True when ``value`` is a list (the only collection constructor)."""
    return isinstance(value, list)


def depth(value: Any) -> int:
    """The nesting depth of ``value``.

    Atomic values have depth 0, ``list(tau)`` values depth ``1 + depth(tau)``.
    The depth of an empty list is the depth of a list whose elements are
    atoms, i.e. 1 — the value carries no deeper structure to address.

    Raises :class:`MalformedValueError` when sibling elements disagree on
    depth, since then no single depth describes the value.

    >>> depth("a")
    0
    >>> depth([["foo", "bar"], ["red", "fox"]])
    2
    """
    if not is_collection(value):
        return 0
    element_depths = {depth(v) for v in value}
    if not element_depths:
        return 1
    if len(element_depths) > 1:
        raise MalformedValueError(
            f"heterogeneous nesting depths {sorted(element_depths)} in {value!r}"
        )
    return 1 + element_depths.pop()


def is_homogeneous(value: Any) -> bool:
    """True when every list level of ``value`` nests uniformly."""
    try:
        depth(value)
    except MalformedValueError:
        return False
    return True


def get_element(value: Any, index: Index) -> Any:
    """Element ``value[p1]...[pk]``; the empty index returns ``value`` itself.

    >>> get_element([["foo", "bar"]], Index(0, 1))
    'bar'
    """
    current = value
    for position in index:
        if not is_collection(current):
            raise MalformedValueError(
                f"index {index!r} descends below an atomic value in {value!r}"
            )
        try:
            current = current[position]
        except IndexError as exc:
            raise IndexError(f"index {index!r} out of range for {value!r}") from exc
    return current


def set_element(value: Any, index: Index, element: Any) -> Any:
    """A copy of ``value`` with the element at ``index`` replaced.

    The original value is never mutated; only the lists along the path are
    copied (spine copy).  The empty index returns ``element`` itself.
    """
    if index.is_empty:
        return element
    if not is_collection(value):
        raise MalformedValueError(
            f"index {index!r} descends below an atomic value in {value!r}"
        )
    position = index[0]
    if position >= len(value):
        raise IndexError(f"index {index!r} out of range for {value!r}")
    copy = list(value)
    copy[position] = set_element(copy[position], index.tail_from(1), element)
    return copy


def enumerate_leaves(value: Any) -> Iterator[Tuple[Index, Any]]:
    """Yield ``(index, atom)`` for every atomic leaf, in document order.

    >>> list(enumerate_leaves([["a"], ["b", "c"]]))
    [(Index(0, 0), 'a'), (Index(1, 0), 'b'), (Index(1, 1), 'c')]
    """
    yield from _enumerate(value, Index())


def _enumerate(value: Any, prefix: Index) -> Iterator[Tuple[Index, Any]]:
    if not is_collection(value):
        yield prefix, value
        return
    for position, element in enumerate(value):
        yield from _enumerate(element, prefix.extended(position))


def iter_at_depth(value: Any, levels: int) -> Iterator[Tuple[Index, Any]]:
    """Yield ``(index, sub_value)`` pairs ``levels`` list-levels down.

    ``levels == 0`` yields the single pair ``(Index(), value)``.  This is the
    iteration primitive of the implicit-iteration model: a port with depth
    mismatch ``delta`` consumes the sub-values produced by
    ``iter_at_depth(v, delta)``, one per processor instance.

    >>> list(iter_at_depth([["a", "b"]], 1))
    [(Index(0), ['a', 'b'])]
    """
    if levels < 0:
        raise ValueError("levels must be non-negative")
    yield from _iter_levels(value, levels, Index())


def _iter_levels(value: Any, levels: int, prefix: Index) -> Iterator[Tuple[Index, Any]]:
    if levels == 0:
        yield prefix, value
        return
    if not is_collection(value):
        raise MalformedValueError(
            f"cannot iterate {levels} more level(s) into atomic value {value!r}"
        )
    for position, element in enumerate(value):
        yield from _iter_levels(element, levels - 1, prefix.extended(position))


def flatten(value: Any, levels: int = 1) -> Any:
    """Remove ``levels`` levels of nesting by concatenating sub-lists.

    Mirrors Taverna's list-flattening shim used in the right branch of the
    genes2Kegg workflow (Section 2.2): ``[[a, b], [c]] -> [a, b, c]``.

    >>> flatten([["a", "b"], ["c"]])
    ['a', 'b', 'c']
    """
    if levels < 0:
        raise ValueError("levels must be non-negative")
    result = value
    for _ in range(levels):
        if not is_collection(result):
            raise MalformedValueError(f"cannot flatten atomic value {result!r}")
        merged: List[Any] = []
        for element in result:
            if not is_collection(element):
                raise MalformedValueError(
                    f"cannot flatten {result!r}: element {element!r} is atomic"
                )
            merged.extend(element)
        result = merged
    return result


def wrap(value: Any, levels: int) -> Any:
    """Nest ``value`` inside ``levels`` singleton lists.

    Used when a port's depth mismatch is negative (Def. 2 commentary): a
    value shallower than the declared depth is promoted by building
    ``levels`` one-element lists around it.

    >>> wrap("a", 2)
    [['a']]
    """
    if levels < 0:
        raise ValueError("levels must be non-negative")
    for _ in range(levels):
        value = [value]
    return value


def shape(value: Any) -> Any:
    """The list skeleton of ``value`` with atoms replaced by ``None``.

    Useful for asserting iteration shapes without comparing payloads.

    >>> shape([["x"], ["y", "z"]])
    [[None], [None, None]]
    """
    if not is_collection(value):
        return None
    return [shape(v) for v in value]


def count_leaves(value: Any) -> int:
    """Number of atomic leaves in ``value`` (0-depth value counts as 1)."""
    if not is_collection(value):
        return 1
    return sum(count_leaves(v) for v in value)
