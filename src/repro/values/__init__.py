"""Nested-collection value model.

The paper's data model (Section 2.1) treats every value flowing through a
dataflow as either an *atomic* value (string, number, ...) or an arbitrarily
nested list of values.  Elements inside a nested list are addressed with
k-dimensional index paths ``v[p1, ..., pk]``.

This package provides:

``Index``
    Immutable index paths, including the empty index ``[]`` that denotes a
    whole value, concatenation (Prop. 1 builds output indices by
    concatenating input fragments) and a compact text encoding used by the
    relational trace store.

``nested``
    Structural operations on nested list values: depth computation, element
    access and iteration, flattening, wrapping, and shape extraction.

``types``
    Declared port types: a small algebra of base types closed under
    ``list(tau)``, with the declared-depth accessor ``dd`` used throughout
    the static analysis of Section 3.1.
"""

from repro.values.index import Index
from repro.values.nested import (
    depth,
    enumerate_leaves,
    flatten,
    get_element,
    is_homogeneous,
    iter_at_depth,
    set_element,
    shape,
    wrap,
)
from repro.values.types import BaseType, ListType, ValueType, infer_type

__all__ = [
    "BaseType",
    "Index",
    "ListType",
    "ValueType",
    "depth",
    "enumerate_leaves",
    "flatten",
    "get_element",
    "infer_type",
    "is_homogeneous",
    "iter_at_depth",
    "set_element",
    "shape",
    "wrap",
]
