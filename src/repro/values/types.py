"""Declared port types: base types closed under ``list(tau)``.

Section 2.1: every port ``X`` has a declared type ``type(X)`` which is either
one of a set of basic types or ``list(tau)`` for some type ``tau``.  The only
property the lineage machinery ever consumes is the *declared depth*
``dd(X)`` — the number of ``list`` constructors — but modelling the full
type algebra lets the workflow validator catch mis-wired ports early and
keeps workflow serialization faithful.
"""

from __future__ import annotations

from typing import Any

from repro.values import nested


class ValueType:
    """Abstract base of the port type algebra.  Immutable and hashable."""

    @property
    def depth(self) -> int:
        """The declared depth ``dd``: number of ``list`` constructors."""
        raise NotImplementedError

    @property
    def element_type(self) -> "ValueType":
        """For ``list(tau)``, the type ``tau``.  Atoms raise ``TypeError``."""
        raise TypeError(f"{self!r} is not a list type")

    def base(self) -> "BaseType":
        """The innermost base type."""
        current: ValueType = self
        while isinstance(current, ListType):
            current = current.element_type
        assert isinstance(current, BaseType)
        return current

    def listify(self, levels: int = 1) -> "ValueType":
        """This type wrapped in ``levels`` list constructors."""
        if levels < 0:
            raise ValueError("levels must be non-negative")
        result: ValueType = self
        for _ in range(levels):
            result = ListType(result)
        return result

    # -- serialization ---------------------------------------------------

    def encode(self) -> str:
        """Compact textual form, e.g. ``list(list(string))``."""
        raise NotImplementedError

    @staticmethod
    def decode(text: str) -> "ValueType":
        """Inverse of :meth:`encode`.

        >>> ValueType.decode("list(string)")
        ListType(BaseType('string'))
        """
        text = text.strip()
        levels = 0
        while text.startswith("list(") and text.endswith(")"):
            text = text[len("list(") : -1].strip()
            levels += 1
        if not text or "(" in text or ")" in text:
            raise ValueError(f"malformed type text {text!r}")
        return BaseType(text).listify(levels)


class BaseType(ValueType):
    """An opaque basic type, identified by name (``string``, ``integer`` ...)."""

    __slots__ = ("_name",)

    def __init__(self, name: str) -> None:
        if not name:
            raise ValueError("base type name must be non-empty")
        self._name = name

    @property
    def name(self) -> str:
        return self._name

    @property
    def depth(self) -> int:
        return 0

    def encode(self) -> str:
        return self._name

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BaseType) and self._name == other._name

    def __hash__(self) -> int:
        return hash(("BaseType", self._name))

    def __repr__(self) -> str:
        return f"BaseType({self._name!r})"


class ListType(ValueType):
    """The ``list(tau)`` constructor."""

    __slots__ = ("_element",)

    def __init__(self, element: ValueType) -> None:
        if not isinstance(element, ValueType):
            raise TypeError("list element type must be a ValueType")
        self._element = element

    @property
    def element_type(self) -> ValueType:
        return self._element

    @property
    def depth(self) -> int:
        return 1 + self._element.depth

    def encode(self) -> str:
        return f"list({self._element.encode()})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, ListType) and self._element == other._element

    def __hash__(self) -> int:
        return hash(("ListType", self._element))

    def __repr__(self) -> str:
        return f"ListType({self._element!r})"


#: Convenience singletons for the common base types.
STRING = BaseType("string")
INTEGER = BaseType("integer")
FLOAT = BaseType("float")
BOOLEAN = BaseType("boolean")

_PYTHON_BASE_TYPES = {
    bool: BOOLEAN,  # must precede int: bool is a subclass of int
    int: INTEGER,
    float: FLOAT,
    str: STRING,
}


def infer_type(value: Any) -> ValueType:
    """Infer the :class:`ValueType` of a concrete value.

    Nested lists map to nested ``ListType``; the base type is derived from
    the leaves (all leaves must agree).  An empty list infers
    ``list(string)`` by convention — the paper's model never needs to
    distinguish element types of empty collections.

    >>> infer_type([["foo"]]).encode()
    'list(list(string))'
    """
    value_depth = nested.depth(value)
    leaf_types = {
        _python_base_type(atom) for _, atom in nested.enumerate_leaves(value)
    }
    if len(leaf_types) > 1:
        raise TypeError(f"mixed leaf types {sorted(t.name for t in leaf_types)}")
    base = leaf_types.pop() if leaf_types else STRING
    return base.listify(value_depth)


def _python_base_type(atom: Any) -> BaseType:
    for python_type, base in _PYTHON_BASE_TYPES.items():
        if isinstance(atom, python_type):
            return base
    return BaseType(type(atom).__name__)
