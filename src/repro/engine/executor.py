"""Data-driven workflow execution with provenance capture.

The executor implements the pure dataflow model of Section 2.1: the run is
triggered by binding the top-level workflow inputs; a processor fires as
soon as every connected input port holds a value; values move along arcs as
soon as they are produced.  Because the dataflow graph is acyclic and
single-assignment, firing processors in topological order is an admissible
schedule of the data-driven semantics and yields the identical trace, so
that is what we do — deterministically, which keeps traces reproducible.

Every run emits the observable events of Section 2.3 to an
:class:`~repro.provenance.capture.TraceBuilder`-compatible listener:

* one *xform* event per processor instance, with per-port input index
  fragments ``p_i`` and the instance index ``q`` (from
  :mod:`repro.engine.iteration`);
* *xfer* events along each arc at the granularity at which the downstream
  port will consume the value — one event per iterated element (plus a
  whole-value event when the downstream consumes the value whole).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol

from repro.engine.events import Binding, XferEvent, XformEvent
from repro.engine.iteration import PortValue, evaluate
from repro.engine.processors import ProcessorRegistry, default_registry
from repro.obs.core import NO_OBS, Observability
from repro.values import nested
from repro.values.index import Index
from repro.workflow.depths import DepthAnalysis, propagate_depths
from repro.workflow.model import Dataflow, PortRef, Processor
from repro.workflow.visit import topological_sort


class ExecutionError(RuntimeError):
    """Raised when a workflow cannot be executed to completion."""


class TraceListener(Protocol):
    """Receiver of provenance events during a run."""

    def on_xform(self, event: XformEvent) -> None: ...

    def on_xfer(self, event: XferEvent) -> None: ...


class _NullListener:
    """Discards events — used when provenance capture is not wanted."""

    def on_xform(self, event: XformEvent) -> None:  # pragma: no cover - trivial
        pass

    def on_xfer(self, event: XferEvent) -> None:  # pragma: no cover - trivial
        pass


@dataclass
class RunResult:
    """Outcome of one workflow run."""

    workflow: Dataflow
    outputs: Dict[str, Any]
    port_values: Dict[PortRef, Any] = field(default_factory=dict)
    analysis: Optional[DepthAnalysis] = None

    def output(self, name: str) -> Any:
        try:
            return self.outputs[name]
        except KeyError:
            raise ExecutionError(f"run produced no output named {name!r}") from None


class WorkflowRunner:
    """Executes dataflows against a processor registry.

    A runner is stateless between runs and safe to reuse; the depth analysis
    of each (flattened) workflow is cached on the instance since the static
    annotation never changes for a given definition (the paper: Alg. 1 runs
    "only once for every new workflow definition graph").
    """

    def __init__(
        self,
        registry: Optional[ProcessorRegistry] = None,
        xfer_granularity: str = "fine",
        check_output_depths: bool = True,
        error_handling: str = "raise",
        obs: Optional[Observability] = None,
    ) -> None:
        if xfer_granularity not in ("fine", "coarse"):
            raise ValueError(
                f"xfer_granularity must be 'fine' or 'coarse', "
                f"got {xfer_granularity!r}"
            )
        if error_handling not in ("raise", "token"):
            raise ValueError(
                f"error_handling must be 'raise' or 'token', "
                f"got {error_handling!r}"
            )
        #: "raise" aborts the run on the first failing instance; "token"
        #: converts per-instance failures into propagating error tokens
        #: (Taverna semantics — see repro.engine.errors).
        self.error_handling = error_handling
        self.registry = registry if registry is not None else default_registry()
        #: "fine" records one *xfer* event per element the consumer will
        #: iterate over (the paper's Fig. 2 granularity); "coarse" records a
        #: single whole-value event per arc — smaller traces, identical
        #: lineage answers (transfers are identity on indices, so queries
        #: carry their index across coarse hops), used by the granularity
        #: ablation benchmark.
        self.xfer_granularity = xfer_granularity
        #: Enforce assumption 1 (Section 3.1) at run time: every processor
        #: instance must return values of the declared output depth.
        self.check_output_depths = check_output_depths
        #: Observability handle (``repro.obs``): per-run/per-processor
        #: spans plus ``engine.*`` counters (xform/xfer events, iteration
        #: fan-out).  Disabled by default at near-zero cost.
        self.obs = obs if obs is not None else NO_OBS
        self._analysis_cache: Dict[int, DepthAnalysis] = {}

    # ------------------------------------------------------------------

    def analysis_for(self, flow: Dataflow) -> DepthAnalysis:
        """The cached static depth analysis of ``flow`` (flattened)."""
        key = id(flow)
        if key not in self._analysis_cache:
            self._analysis_cache[key] = propagate_depths(flow.flattened())
        return self._analysis_cache[key]

    def run(
        self,
        flow: Dataflow,
        inputs: Dict[str, Any],
        listener: Optional[TraceListener] = None,
        strict_inputs: bool = True,
    ) -> RunResult:
        """Execute ``flow`` on ``inputs`` (workflow input port name → value).

        With ``strict_inputs`` (the default), every supplied value must have
        exactly the declared depth of its port — assumption 2 of Section
        3.1, on which the static mismatch computation rests.  Disable it
        only to experiment with deliberately mis-shaped inputs.
        """
        sink = listener if listener is not None else _NullListener()
        analysis = self.analysis_for(flow)
        flat = analysis.flow
        self._check_inputs(flat, inputs, strict_inputs)

        port_values: Dict[PortRef, Any] = {}
        for port in flat.inputs:
            if port.name in inputs:
                port_values[PortRef(flat.name, port.name)] = inputs[port.name]

        with self.obs.span("engine.run", workflow=flat.name):
            for processor in topological_sort(flat):
                self._fire(flat, analysis, processor, port_values, sink)

            outputs: Dict[str, Any] = {}
            for port in flat.outputs:
                ref = PortRef(flat.name, port.name)
                arc = flat.incoming_arc(ref)
                if arc is None or arc.source not in port_values:
                    continue
                value = port_values[arc.source]
                port_values[ref] = value
                outputs[port.name] = value
                self._emit_xfers(flat, analysis, arc.source, ref, value, sink)
        if self.obs.enabled:
            self.obs.inc("engine.runs")
        return RunResult(
            workflow=flat, outputs=outputs, port_values=port_values, analysis=analysis
        )

    # ------------------------------------------------------------------

    def _check_inputs(
        self, flat: Dataflow, inputs: Dict[str, Any], strict: bool
    ) -> None:
        known = {p.name for p in flat.inputs}
        unknown = set(inputs) - known
        if unknown:
            raise ExecutionError(
                f"unknown workflow input(s) {sorted(unknown)}; "
                f"declared inputs are {sorted(known)}"
            )
        if not strict:
            return
        for port in flat.inputs:
            if port.name not in inputs:
                continue
            actual = nested.depth(inputs[port.name])
            if actual != port.declared_depth:
                raise ExecutionError(
                    f"input {port.name!r} has depth {actual}, but the port "
                    f"declares depth {port.declared_depth} (assumption 2, "
                    "Section 3.1); pass strict_inputs=False to override"
                )

    def _fire(
        self,
        flat: Dataflow,
        analysis: DepthAnalysis,
        processor: Processor,
        port_values: Dict[PortRef, Any],
        sink: TraceListener,
    ) -> None:
        obs = self.obs
        if not obs.enabled:
            self._fire_inner(flat, analysis, processor, port_values, sink)
            return
        with obs.span("engine.fire", processor=processor.name) as span:
            instances = self._fire_inner(
                flat, analysis, processor, port_values, sink
            )
            span.set(instances=instances)
        obs.inc("engine.xform_events", instances)
        obs.observe("engine.instance_fanout", instances)

    def _fire_inner(
        self,
        flat: Dataflow,
        analysis: DepthAnalysis,
        processor: Processor,
        port_values: Dict[PortRef, Any],
        sink: TraceListener,
    ) -> int:
        """Fire one processor; returns its iteration fan-out (instances)."""
        bound: List[PortValue] = []
        for port in processor.inputs:
            ref = PortRef(processor.name, port.name)
            arc = flat.incoming_arc(ref)
            if arc is not None:
                if arc.source not in port_values:
                    raise ExecutionError(
                        f"processor {processor.name!r} is not fireable: "
                        f"no value on upstream port {arc.source}"
                    )
                value = port_values[arc.source]
                port_values[ref] = value
                self._emit_xfers(flat, analysis, arc.source, ref, value, sink)
            else:
                # Unconnected input: bound to the design-time default
                # (Section 2.1, footnote 5), or None when none is declared.
                value = processor.config.get("defaults", {}).get(port.name)
                port_values[ref] = value
            bound.append(PortValue(port.name, value, analysis.mismatch(ref)))

        operation = self._resolve_operation(processor)
        output_names = [p.name for p in processor.outputs]
        declared = {p.name: p.declared_depth for p in processor.outputs}

        def checked_operation(args: Dict[str, Any]) -> Dict[str, Any]:
            if self.error_handling == "token":
                from repro.engine.errors import ErrorToken, contains_error

                # Taverna error semantics: an instance fed any error token
                # short-circuits; an instance that raises produces tokens.
                if any(contains_error(value) for value in args.values()):
                    token = ErrorToken("upstream error", processor.name)
                    return {port_name: token for port_name in declared}
                try:
                    outputs = operation(args, processor.config)
                except Exception as exc:
                    token = ErrorToken(str(exc), processor.name)
                    return {port_name: token for port_name in declared}
            else:
                outputs = operation(args, processor.config)
            if self.check_output_depths:
                from repro.engine.errors import is_error

                # Assumption 1 (Section 3.1): every instance must return
                # values of the declared depth, or the whole static index
                # machinery becomes unsound — fail loudly, not wrongly.
                # Error tokens are exempt: they stand in for a value of any
                # declared depth (Taverna error documents do the same).
                for port_name, dd in declared.items():
                    if port_name not in outputs:
                        continue  # evaluate() reports missing ports itself
                    if is_error(outputs[port_name]):
                        continue
                    actual = nested.depth(outputs[port_name])
                    if actual != dd:
                        raise ExecutionError(
                            f"processor {processor.name!r} returned a value "
                            f"of depth {actual} on output {port_name!r}, "
                            f"which declares depth {dd} (assumption 1, "
                            "Section 3.1)"
                        )
            return outputs

        result = evaluate(
            checked_operation,
            bound,
            output_names,
            strategy=processor.iteration,
        )
        for instance in result.instances:
            input_bindings = tuple(
                Binding(
                    PortRef(processor.name, port_name),
                    fragment,
                    value=instance.arguments[port_name],
                )
                for port_name, fragment in instance.fragments
            )
            output_bindings = tuple(
                Binding(
                    PortRef(processor.name, port_name),
                    instance.q,
                    value=instance.outputs[port_name],
                )
                for port_name in output_names
            )
            sink.on_xform(
                XformEvent(processor.name, input_bindings, output_bindings)
            )
        for port_name in output_names:
            port_values[PortRef(processor.name, port_name)] = result.outputs[
                port_name
            ]
        return len(result.instances)

    def _resolve_operation(self, processor: Processor):
        if processor.is_subflow:
            raise ExecutionError(
                f"processor {processor.name!r} is a subflow; flatten the "
                "workflow before execution"
            )
        if processor.operation is None:
            raise ExecutionError(
                f"processor {processor.name!r} declares no operation"
            )
        return self.registry.operation(processor.operation)

    def _emit_xfers(
        self,
        flat: Dataflow,
        analysis: DepthAnalysis,
        source: PortRef,
        sink_ref: PortRef,
        value: Any,
        sink: TraceListener,
    ) -> None:
        """Emit per-element transfer events for one arc.

        Granularity follows the downstream consumption: if the sink port
        iterates ``delta`` levels, one event is emitted per iterated
        element (index length ``delta``); a sink that consumes the value
        whole gets a single whole-value event.  This makes every *xfer*
        destination index coincide with an *xform* input index downstream,
        so the naive traversal can join the two relations hop by hop.
        """
        if sink_ref.node == flat.name or self.xfer_granularity == "coarse":
            delta = 0  # workflow outputs receive the value whole
        else:
            delta = max(analysis.mismatch(sink_ref), 0)
        if delta == 0:
            sink.on_xfer(
                XferEvent(
                    Binding(source, Index(), value=value),
                    Binding(sink_ref, Index(), value=value),
                )
            )
            if self.obs.enabled:
                self.obs.inc("engine.xfer_events")
            return
        emitted = 0
        for index, element in nested.iter_at_depth(value, delta):
            sink.on_xfer(
                XferEvent(
                    Binding(source, index, value=element),
                    Binding(sink_ref, index, value=element),
                )
            )
            emitted += 1
        if self.obs.enabled:
            self.obs.inc("engine.xfer_events", emitted)


def run_workflow(
    flow: Dataflow,
    inputs: Dict[str, Any],
    listener: Optional[TraceListener] = None,
    registry: Optional[ProcessorRegistry] = None,
) -> RunResult:
    """Convenience one-shot execution (see :class:`WorkflowRunner`)."""
    return WorkflowRunner(registry).run(flow, inputs, listener=listener)
