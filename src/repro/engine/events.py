"""Observable provenance events: bindings, *xform* and *xfer* records.

Section 2.3 defines a trace as the collection of two kinds of observable
events:

* *xform* — one processor instance consuming a tuple of input bindings and
  producing output bindings:
  ``<P:X1[p1], v1> ... <P:Xn[pn], vn>  ->  <P:Y[q], w>`` (relation (1));
* *xfer* — one element moving along an arc:
  ``<P:Y[p], v> -> <P':X[p'], v>`` (relation (2)).

A :class:`Binding` pairs a fully-qualified port with an index into the value
bound to that port.  The *value payload* is carried alongside but excluded
from equality/hashing: two bindings are the same lineage node exactly when
they name the same port and index within a run, which is how the provenance
graph of Section 2.4 identifies nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Tuple

from repro.values.index import Index
from repro.workflow.model import PortRef


@dataclass(frozen=True)
class Binding:
    """``<node:port[index], value>`` — a node of the provenance graph."""

    ref: PortRef
    index: Index
    value: Any = field(default=None, compare=False, hash=False)

    @property
    def node(self) -> str:
        return self.ref.node

    @property
    def port(self) -> str:
        return self.ref.port

    def key(self) -> Tuple[str, str, str]:
        """Stable identity triple ``(node, port, encoded index)``."""
        return (self.ref.node, self.ref.port, self.index.encode())

    def __str__(self) -> str:
        return f"<{self.ref}[{self.index.encode()}]>"


@dataclass(frozen=True)
class XformEvent:
    """One processor-instance execution: input bindings → output bindings.

    All output bindings of a single instance share the same instance index
    ``q`` (Prop. 1); inputs carry their per-port fragments ``p_i``.
    """

    processor: str
    inputs: Tuple[Binding, ...]
    outputs: Tuple[Binding, ...]

    def __post_init__(self) -> None:
        for binding in self.inputs + self.outputs:
            if binding.ref.node != self.processor:
                raise ValueError(
                    f"binding {binding} does not belong to processor "
                    f"{self.processor!r}"
                )

    def __str__(self) -> str:
        ins = ", ".join(str(b) for b in self.inputs)
        outs = ", ".join(str(b) for b in self.outputs)
        return f"{ins} -> {outs}"


@dataclass(frozen=True)
class XferEvent:
    """One element transferred along an arc (identity on the payload)."""

    source: Binding
    sink: Binding

    def __str__(self) -> str:
        return f"{self.source} -> {self.sink}"
