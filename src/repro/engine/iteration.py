"""Implicit list-iteration semantics (Defs. 2 and 3, Section 3.2).

When a value bound to a port is nested ``delta`` levels deeper than the
port's declared depth, the processor runs once per element ``delta`` levels
down, and the iteration structure re-wraps the per-instance results into an
output nested ``level = sum(delta_i)`` lists above the declared output
depth.  Multiple iterated ports combine through the generalized cross
product (Def. 2) — outer index positions come from earlier ports — or, with
the *dot* combinator (footnote 7), advance in lockstep and share one index.

:func:`evaluate` runs an operation under these semantics and returns both
the assembled output values and one :class:`InstanceRecord` per elementary
application — carrying exactly the per-port input index fragments ``p_i``
and instance index ``q = p_1 ... p_n`` that Prop. 1 reasons about.  The
provenance capture layer turns those records into *xform* events verbatim,
so the trace's index discipline is the executed semantics, not a parallel
re-implementation.

:func:`cross_product` is a direct transcription of Def. 2 for the binary and
n-ary cases, used by the property tests to cross-check :func:`evaluate`'s
iteration order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.strategy import (
    StrategyError,
    StrategySpec,
    build_struct,
    node_level,
    parse_strategy,
)
from repro.values import nested
from repro.values.index import Index


class IterationError(ValueError):
    """Raised when values cannot be iterated as the static analysis expects."""


@dataclass(frozen=True)
class PortValue:
    """One input port's bound value with its depth mismatch ``delta``.

    ``delta`` may be negative; :func:`evaluate` repairs that by singleton
    wrapping (Def. 2 commentary) before iterating.
    """

    name: str
    value: Any
    delta: int


@dataclass(frozen=True)
class InstanceRecord:
    """One elementary processor application (one future *xform* event)."""

    q: Index
    fragments: Tuple[Tuple[str, Index], ...]  # (port, p_i) in port order
    arguments: Dict[str, Any]
    outputs: Dict[str, Any]

    def fragment(self, port: str) -> Index:
        for name, index in self.fragments:
            if name == port:
                return index
        raise KeyError(f"no fragment recorded for port {port!r}")


@dataclass
class EvaluationResult:
    """Assembled outputs plus the per-instance records."""

    outputs: Dict[str, Any]
    instances: List[InstanceRecord]
    level: int


Operation = Callable[[Dict[str, Any]], Dict[str, Any]]


def evaluate(
    operation: Operation,
    ports: Sequence[PortValue],
    output_ports: Sequence[str],
    strategy: StrategySpec = "cross",
) -> EvaluationResult:
    """Run ``operation`` under the implicit iteration semantics.

    ``operation`` receives a dict of declared-depth arguments and must
    return a dict with exactly the ``output_ports`` keys.  The result's
    ``outputs`` maps each output port to the re-wrapped nested value whose
    element at instance index ``q`` is that instance's output (Def. 3).

    ``strategy`` is ``"cross"`` (Def. 2, the default), ``"dot"``
    (footnote 7's zip), or a full combinator expression such as
    ``{"cross": [{"dot": ["x1", "x2"]}, "x3"]}`` — see
    :mod:`repro.strategy`.
    """
    prepared: List[PortValue] = []
    for port in ports:
        if port.delta < 0:
            # Negative mismatch: promote the value with singleton lists; no
            # iteration and no index positions result.
            prepared.append(
                PortValue(port.name, nested.wrap(port.value, -port.delta), 0)
            )
        else:
            prepared.append(port)
    port_names = [p.name for p in prepared]
    deltas = {p.name: p.delta for p in prepared}
    bindings = {p.name: (p.value, p.delta) for p in prepared}
    try:
        node = parse_strategy(strategy, port_names)
        level = node_level(node, deltas)
        struct = build_struct(node, bindings)
    except StrategyError as exc:
        raise IterationError(str(exc)) from exc

    instances: List[InstanceRecord] = []
    output_names = tuple(output_ports)

    def apply_leaf(leaf: Dict[str, Tuple[Any, Index]], q: Index) -> Dict[str, Any]:
        arguments = {name: leaf[name][0] for name in port_names}
        outputs = operation(dict(arguments))
        missing = set(output_names) - set(outputs)
        if missing:
            raise IterationError(
                f"operation produced no value for output port(s) "
                f"{sorted(missing)}"
            )
        instances.append(
            InstanceRecord(
                q=q,
                fragments=tuple((name, leaf[name][1]) for name in port_names),
                arguments=arguments,
                outputs={name: outputs[name] for name in output_names},
            )
        )
        return {name: outputs[name] for name in output_names}

    def walk(sub: Any, q: Index) -> Dict[str, Any]:
        if isinstance(sub, list):
            per_element = [
                walk(element, q.extended(position))
                for position, element in enumerate(sub)
            ]
            return {
                name: [result[name] for result in per_element]
                for name in output_names
            }
        return apply_leaf(sub, q)

    outputs = walk(struct, Index())
    return EvaluationResult(outputs=outputs, instances=instances, level=level)


# ---------------------------------------------------------------------------
# Def. 2 — generalized cross product, transcribed for testing
# ---------------------------------------------------------------------------


def cross_product(left: Tuple[Any, int], right: Tuple[Any, int]) -> Any:
    """Binary generalized cross product ``(v, d1) ⊗ (w, d2)`` (Def. 2).

    Returns nested lists of 2-tuples; the nesting mirrors which operands
    iterate.  Only the top iteration level of each operand is consumed —
    exactly as in the paper, where repeated ``map`` applications consume
    deeper levels.
    """
    (v, d1), (w, d2) = left, right
    if d1 > 0 and d2 > 0:
        return [[(vi, wj) for wj in w] for vi in v]
    if d1 > 0:
        return [(vi, w) for vi in v]
    if d2 > 0:
        return [(v, wj) for wj in w]
    return (v, w)


def nary_cross_product(operands: Sequence[Tuple[Any, int]]) -> Any:
    """Left-associative n-ary ``⊗`` with tuple flattening.

    ``⊗_{i:1..n}(v_i, d_i)``: the binary operator is applied left to right;
    nested pair results are flattened into flat argument tuples so that the
    result's leaves are n-tuples, matching the paper's worked example
    ``(a_1, c, b_1)``.
    """
    if not operands:
        return ()
    deltas = [d for _, d in operands]

    def build(index: int, picked: Tuple[Any, ...]) -> Any:
        if index == len(operands):
            return picked
        value, delta = operands[index]
        if delta > 0:
            return [build(index + 1, picked + (element,)) for element in value]
        return build(index + 1, picked + (value,))

    # The left-associative pairing of Def. 2 orders iteration outer-to-inner
    # by operand position, which is what this direct construction does;
    # only the pair/tuple shape differs, and we normalize to flat tuples.
    del deltas
    return build(0, ())
