"""Processor behaviour registry and built-in operations.

Processors are *black boxes* (Section 1): the engine only knows each one as
a function from an input-port dictionary to an output-port dictionary.  The
registry maps the ``operation`` name declared on a
:class:`~repro.workflow.model.Processor` to a Python callable

    ``op(inputs: dict[str, Any], config: dict[str, Any]) -> dict[str, Any]``

where keys are port names.  The built-ins below cover everything the
paper's workloads need: identity/renaming shims, string transforms, list
generation and flattening, joins, and aggregation.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.values import nested

Operation = Callable[[Dict[str, Any], Dict[str, Any]], Dict[str, Any]]


class UnknownOperationError(KeyError):
    """Raised when a workflow references an unregistered operation."""


class ProcessorRegistry:
    """A named collection of processor operations.

    Registries compose: ``registry.extended()`` returns a child that falls
    back to its parent, so workloads can add bespoke services without
    mutating the shared defaults.
    """

    def __init__(self, parent: Optional["ProcessorRegistry"] = None) -> None:
        self._operations: Dict[str, Operation] = {}
        self._parent = parent

    def register(self, name: str, operation: Operation) -> None:
        """Bind ``name`` to ``operation``; re-registration overrides locally."""
        if not name:
            raise ValueError("operation name must be non-empty")
        self._operations[name] = operation

    def operation(self, name: str) -> Operation:
        """Resolve ``name``, consulting parents; raise if absent everywhere."""
        registry: Optional[ProcessorRegistry] = self
        while registry is not None:
            if name in registry._operations:
                return registry._operations[name]
            registry = registry._parent
        raise UnknownOperationError(f"no operation registered under {name!r}")

    def __contains__(self, name: str) -> bool:
        try:
            self.operation(name)
        except UnknownOperationError:
            return False
        return True

    def extended(self) -> "ProcessorRegistry":
        """A child registry that inherits this one's operations."""
        return ProcessorRegistry(parent=self)

    def names(self) -> Iterator[str]:
        """All locally registered names (parents excluded)."""
        return iter(self._operations)


def _single_input(inputs: Dict[str, Any]) -> Any:
    if len(inputs) != 1:
        raise ValueError(f"expected exactly one input port, got {sorted(inputs)}")
    return next(iter(inputs.values()))


# ---------------------------------------------------------------------------
# Built-in operations
# ---------------------------------------------------------------------------


def op_identity(inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, Any]:
    """Copy the single input to the output port named by ``config['out']``
    (default ``"y"``).  The workhorse of the synthetic testbed chains."""
    return {config.get("out", "y"): _single_input(inputs)}


def op_tag(inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, Any]:
    """Append ``config['suffix']`` to a string — a visible one-to-one
    transformation so example output shows which processors touched it."""
    value = _single_input(inputs)
    suffix = config.get("suffix", "'")
    return {config.get("out", "y"): f"{value}{suffix}"}


def op_uppercase(inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, Any]:
    """Uppercase a string."""
    return {config.get("out", "y"): str(_single_input(inputs)).upper()}


def op_list_generator(
    inputs: Dict[str, Any], config: Dict[str, Any]
) -> Dict[str, Any]:
    """Generate a flat list of ``size`` synthetic items.

    ``size`` comes from the input port ``size`` when connected, else from
    ``config['size']``.  This reproduces the testbed's ``ListGen`` processor
    whose output length is controlled by the ``ListSize`` workflow input.
    """
    size = inputs.get("size", config.get("size"))
    if size is None:
        raise ValueError("list_generator needs a 'size' input or config entry")
    prefix = config.get("prefix", "item")
    return {config.get("out", "list"): [f"{prefix}-{i}" for i in range(int(size))]}


def op_flatten(inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, Any]:
    """Remove one nesting level: ``[[a, b], [c]] -> [a, b, c]``.

    A many-to-many list operation — exactly the kind of processor that
    destroys fine granularity (Section 2.3's processor ``R`` discussion).
    """
    value = _single_input(inputs)
    return {config.get("out", "y"): nested.flatten(value, config.get("levels", 1))}


def op_concat_pair(inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, Any]:
    """Join two atomic inputs into one string — the testbed's final
    cross-product processor applies this to every pair of chain outputs."""
    left = inputs.get(config.get("left", "a"))
    right = inputs.get(config.get("right", "b"))
    joiner = config.get("joiner", "+")
    return {config.get("out", "y"): f"{left}{joiner}{right}"}


def op_concat_all(inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, Any]:
    """Join any number of atomic inputs, in port-name order — the n-ary
    generalization of :func:`op_concat_pair` for wide testbed variants."""
    joiner = config.get("joiner", "+")
    joined = joiner.join(str(inputs[name]) for name in sorted(inputs))
    return {config.get("out", "y"): joined}


def op_merge_lists(inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, Any]:
    """Concatenate all input lists (port order) into one list.

    Many-to-many: the output depends on every element of every input, so
    provenance through this processor is intrinsically coarse.
    """
    merged: List[Any] = []
    for name in sorted(inputs):
        value = inputs[name]
        merged.extend(value if isinstance(value, list) else [value])
    return {config.get("out", "y"): merged}


def op_intersect_lists(
    inputs: Dict[str, Any], config: Dict[str, Any]
) -> Dict[str, Any]:
    """Intersection of the elements of all input lists, order-preserving
    on the first input.  Used for ``commonPathways`` in genes2Kegg."""
    values = [inputs[name] for name in sorted(inputs)]
    if not values:
        return {config.get("out", "y"): []}
    survivors = list(values[0])
    for other in values[1:]:
        keep = set(other)
        survivors = [v for v in survivors if v in keep]
    return {config.get("out", "y"): survivors}


def op_count(inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, Any]:
    """Aggregate a list to its leaf count — a many-to-one processor."""
    return {config.get("out", "y"): nested.count_leaves(_single_input(inputs))}


def op_constant(inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, Any]:
    """Emit ``config['value']``, ignoring inputs (source node)."""
    if "value" not in config:
        raise ValueError("constant operation needs config['value']")
    return {config.get("out", "y"): config["value"]}


def op_split_words(inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, Any]:
    """Split a string into a list of tokens (one-to-many)."""
    return {config.get("out", "y"): str(_single_input(inputs)).split()}


def op_synth_value(inputs: Dict[str, Any], config: Dict[str, Any]) -> Dict[str, Any]:
    """Produce a deterministic value of ``config['out_depth']`` nesting.

    The payload encodes a stable hash of the inputs, so distinct argument
    tuples produce distinct outputs — which the property-based tests rely
    on to tell processor instances apart.  ``width`` (default 2) controls
    the fan-out of each generated list level.
    """
    import hashlib

    out_depth = int(config.get("out_depth", 0))
    width = int(config.get("width", 2))
    salt = str(config.get("salt", ""))
    payload = repr(sorted(inputs.items())) + salt
    seed = int.from_bytes(hashlib.sha256(payload.encode()).digest()[:4], "big")

    def build(levels: int, path: str) -> Any:
        if levels == 0:
            return f"s{seed % 99991}{'-' + path if path else ''}"
        return [build(levels - 1, f"{path}{i}") for i in range(width)]

    return {config.get("out", "y"): build(out_depth, "")}


def default_registry() -> ProcessorRegistry:
    """A fresh registry with every built-in operation installed."""
    registry = ProcessorRegistry()
    registry.register("identity", op_identity)
    registry.register("tag", op_tag)
    registry.register("uppercase", op_uppercase)
    registry.register("list_generator", op_list_generator)
    registry.register("flatten", op_flatten)
    registry.register("concat_pair", op_concat_pair)
    registry.register("concat_all", op_concat_all)
    registry.register("merge_lists", op_merge_lists)
    registry.register("intersect_lists", op_intersect_lists)
    registry.register("count", op_count)
    registry.register("constant", op_constant)
    registry.register("split_words", op_split_words)
    registry.register("synth_value", op_synth_value)
    return registry
