"""Dataflow execution engine with Taverna-style implicit iteration.

The engine executes a :class:`~repro.workflow.model.Dataflow` under the pure
data-driven model of Section 2.1: a processor fires as soon as all of its
connected input ports are bound, and the implicit iteration semantics
(Defs. 2 and 3) decide how many *instances* of the processor run when input
values are nested more deeply than the ports declare.

Executing a workflow produces a :class:`~repro.engine.executor.RunResult`
holding the workflow outputs and the full provenance trace: one *xform*
event per processor instance and *xfer* events for every element moved
along an arc — exactly the observable events of Section 2.3.
"""

from repro.engine.errors import ErrorToken, contains_error, count_errors, is_error
from repro.engine.events import Binding, XferEvent, XformEvent
from repro.engine.executor import (
    ExecutionError,
    RunResult,
    WorkflowRunner,
    run_workflow,
)
from repro.engine.iteration import IterationError, cross_product, evaluate
from repro.engine.processors import ProcessorRegistry, default_registry

__all__ = [
    "Binding",
    "ErrorToken",
    "contains_error",
    "count_errors",
    "is_error",
    "ExecutionError",
    "IterationError",
    "ProcessorRegistry",
    "RunResult",
    "WorkflowRunner",
    "XferEvent",
    "XformEvent",
    "cross_product",
    "default_registry",
    "evaluate",
    "run_workflow",
]
