"""Error tokens: per-instance failure propagation (Taverna semantics).

In Taverna, a service failure does not abort the whole workflow: the
failing *instance* produces an error document, which flows through the
rest of the dataflow like any value — downstream instances that consume
it short-circuit to errors themselves, while sibling instances (other
elements of the iterated collections) proceed normally.

This module provides that behaviour for the reproduction's engine when
:class:`~repro.engine.executor.WorkflowRunner` runs with
``error_handling="token"``:

* an instance whose operation raises produces an :class:`ErrorToken` on
  each output port (instead of killing the run);
* an instance any of whose arguments *contains* an error token
  short-circuits without invoking the operation;
* provenance records the error tokens as ordinary bindings — which is the
  payoff: ``lin(<wf:out[i]>, ...)`` on an errored element leads straight
  to the culprit input, and an impact query from a poisoned input
  enumerates every contaminated output.

Known limitation (documented, checked): an error token standing in for a
whole collection cannot be *iterated over* by a downstream port — that
instance fails with the engine's usual atomic-value iteration error.  The
common per-element pipelines (tokens as collection elements) propagate
cleanly.
"""

from __future__ import annotations

from typing import Any

from repro.values import nested


class ErrorToken:
    """An error document standing in for a failed instance's output."""

    __slots__ = ("message", "processor")

    def __init__(self, message: str, processor: str) -> None:
        self.message = message
        self.processor = processor

    def __repr__(self) -> str:
        return f"ErrorToken({self.processor}: {self.message})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ErrorToken)
            and self.message == other.message
            and self.processor == other.processor
        )

    def __hash__(self) -> int:
        return hash((self.message, self.processor))


def is_error(value: Any) -> bool:
    """True for an error token itself."""
    return isinstance(value, ErrorToken)


def contains_error(value: Any) -> bool:
    """True when ``value`` is, or nests, an error token."""
    if is_error(value):
        return True
    if nested.is_collection(value):
        return any(contains_error(element) for element in value)
    return False


def count_errors(value: Any) -> int:
    """Number of error-token leaves inside ``value``."""
    if is_error(value):
        return 1
    if nested.is_collection(value):
        return sum(count_errors(element) for element in value)
    return 0
