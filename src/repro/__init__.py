"""repro — fine-grained, efficient lineage querying of collection-based
workflow provenance.

A from-scratch Python reproduction of Missier, Paton & Belhajjame,
*"Fine-grained and efficient lineage querying of collection-based workflow
provenance"*, EDBT 2010.  The package contains every layer the paper's
system needs:

* :mod:`repro.values` — nested list values, index paths, port types;
* :mod:`repro.workflow` — dataflow specifications and the static depth
  analysis (Alg. 1);
* :mod:`repro.engine` — a Taverna-style execution engine implementing the
  implicit iteration semantics (Defs. 2–3);
* :mod:`repro.provenance` — trace capture and the relational trace store;
* :mod:`repro.query` — the naive (NI) and INDEXPROJ lineage strategies;
* :mod:`repro.testbed` — the paper's synthetic workflow generator (Fig. 5)
  and the genes2Kegg / protein-discovery workloads;
* :mod:`repro.bench` — the measurement harness behind the reproduction of
  every table and figure in the paper's evaluation;
* :mod:`repro.obs` — the unified tracing & metrics layer (nested spans,
  counters/histograms, JSON + Prometheus exporters) every other layer
  reports into.

Quickstart
----------

>>> from repro import (
...     DataflowBuilder, capture_run, TraceStore,
...     IndexProjEngine, LineageQuery,
... )
>>> flow = (
...     DataflowBuilder("wf")
...     .input("size", "integer")
...     .processor("GEN", inputs=[("size", "integer")],
...                outputs=[("list", "list(string)")],
...                operation="list_generator", config={"out": "list"})
...     .processor("STEP", inputs=[("x", "string")],
...                outputs=[("y", "string")], operation="tag")
...     .output("out", "list(string)")
...     .arc("wf:size", "GEN:size").arc("GEN:list", "STEP:x")
...     .arc("STEP:y", "wf:out").build()
... )
>>> captured = capture_run(flow, {"size": 3})
>>> store = TraceStore()
>>> store.insert_trace(captured.trace)
>>> engine = IndexProjEngine(store, flow)
>>> query = LineageQuery.create("wf", "out", [1], focus=["GEN"])
>>> [str(b) for b in engine.lineage(captured.run_id, query).bindings]
['<GEN:size[]>']
"""

from repro.engine import (
    Binding,
    ProcessorRegistry,
    RunResult,
    WorkflowRunner,
    default_registry,
    run_workflow,
)
from repro.obs import NO_OBS, MetricsRegistry, Observability, Tracer
from repro.provenance import (
    StreamingTraceWriter,
    Trace,
    TraceBuilder,
    TraceStore,
    capture_run,
    reference_lineage,
    to_prov_document,
)
from repro.query import (
    IndexProjEngine,
    LineageDiff,
    LineageQuery,
    LineageResult,
    NaiveEngine,
    UserView,
    build_plan,
    diff_lineage,
    explain,
)
from repro.service import ProvenanceService
from repro.values import Index
from repro.workflow import (
    Dataflow,
    DataflowBuilder,
    DepthAnalysis,
    PortRef,
    Processor,
    propagate_depths,
)

__version__ = "1.0.0"

__all__ = [
    "Binding",
    "Dataflow",
    "DataflowBuilder",
    "DepthAnalysis",
    "Index",
    "IndexProjEngine",
    "LineageDiff",
    "LineageQuery",
    "LineageResult",
    "MetricsRegistry",
    "NO_OBS",
    "NaiveEngine",
    "Observability",
    "PortRef",
    "Processor",
    "ProcessorRegistry",
    "ProvenanceService",
    "RunResult",
    "StreamingTraceWriter",
    "Trace",
    "TraceBuilder",
    "TraceStore",
    "Tracer",
    "UserView",
    "WorkflowRunner",
    "build_plan",
    "capture_run",
    "default_registry",
    "diff_lineage",
    "explain",
    "propagate_depths",
    "reference_lineage",
    "run_workflow",
    "to_prov_document",
    "__version__",
]
