"""ProvenanceService — the integration façade.

The paper describes its implementation as "the provenance management
component of the Taverna workflow system": one long-lived object that
owns the trace database, watches workflow executions, and answers lineage
queries.  This module is that component for the reproduction: a single
entry point wiring together the runner, the store, the per-workflow
static analyses, and both query directions, with all the caching the
paper calls for (one depth analysis per workflow definition, plans shared
across queries and runs).

    service = ProvenanceService("traces.db")
    service.register_workflow(flow)
    run_id = service.run("wf", {"size": 3})
    service.lineage("lin(<wf:out[1.2]>, {A, B})")       # all runs of wf
    service.lineage("lin(<wf:out[1.2]>, {A, B})", workers=8)  # parallel s2
    service.lineage_many(queries, max_workers=8)        # concurrent batch
    service.impact("wf", "size", [], focus=["F"])

Passing ``obs=Observability()`` at construction threads one tracing +
metrics handle through the store, the runners, and both query strategies;
``service.metrics_snapshot()`` then reports every counter/histogram and
``service.obs.span_roots()`` the collected span trees (see
docs/OBSERVABILITY.md).

The service is thread-safe: runs may be captured while lineage queries
are answered from other threads (see the store's concurrency contract in
:mod:`repro.provenance.store`).
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.cost import (
    PlanExplanation,
    choose_strategy as _choose_strategy,
    explain_plan as _explain_plan,
)
from repro.analysis.precheck import QueryValidationError, precheck_query
from repro.cache import (
    CacheConfig,
    LineageResultCache,
    ResultCacheKey,
    TraceReadCache,
    workflow_fingerprint,
)
from repro.engine.executor import WorkflowRunner
from repro.engine.processors import ProcessorRegistry
from repro.obs.core import NO_OBS, Observability
from repro.provenance.capture import capture_run
from repro.provenance.faults import FaultInjector
from repro.provenance.store import (
    BatchConfig,
    DuplicateRunError,
    RetryPolicy,
    TraceStore,
)
from repro.query.base import LineageQuery, LineageResult, MultiRunResult
from repro.query.explain import QueryExplanation, explain as _explain
from repro.query.impact import ImpactQuery, IndexProjImpactEngine
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.query.parser import parse_query
from repro.workflow.depths import propagate_depths
from repro.workflow.model import Dataflow, WorkflowError

QueryLike = Union[str, LineageQuery]


class ProvenanceService:
    """Own a trace store and answer provenance questions about runs.

    Workflows are registered once (their flattened form and depth analysis
    are cached); every ``run`` stores a full trace; queries accept either
    :class:`LineageQuery` objects or the paper's text notation and default
    to spanning every stored run of the owning workflow.
    """

    def __init__(
        self,
        store_path: str = ":memory:",
        intern_values: bool = False,
        error_handling: str = "raise",
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultInjector] = None,
        obs: Optional[Observability] = None,
        cache: Union[bool, CacheConfig, None] = True,
        store: Optional[Any] = None,
        shards: Optional[int] = None,
        compiled: bool = True,
    ) -> None:
        #: Observability handle (``repro.obs``), threaded through the
        #: store, every runner, and both query strategies.  Pass an
        #: enabled :class:`~repro.obs.core.Observability` to collect
        #: spans/metrics; read them back via :meth:`metrics_snapshot`
        #: and ``service.obs.span_roots()``.
        self.obs = obs if obs is not None else NO_OBS
        #: The trace storage backend.  Three ways to pick one, most
        #: specific wins: ``store=`` injects any ready-made
        #: :class:`~repro.storage.StorageBackend` (the service adopts
        #: it, including ``close()``); ``shards=N`` opens ``store_path``
        #: as a run-sharded scatter-gather directory of N SQLite shards;
        #: otherwise ``store_path`` opens the single-file reference
        #: backend — unless it already is a shard directory, which
        #: reopens sharded (see :func:`repro.storage.open_store`).
        if store is not None:
            self.store = store
        elif shards is not None or store_path != ":memory:":
            from repro.storage import open_store

            self.store = open_store(
                store_path, shards=shards, intern_values=intern_values,
                retry=retry, faults=faults, obs=self.obs,
            )
        else:
            self.store = TraceStore(
                store_path, intern_values=intern_values, retry=retry,
                faults=faults, obs=self.obs,
            )
        #: Lineage cache stack (``repro.cache``), on by default: a
        #: trace-lookup cache inside s2 plus a full result cache above
        #: both strategies, kept coherent by the store's write
        #: generations.  Pass ``cache=False`` (or a tuned
        #: :class:`~repro.cache.CacheConfig`) to change it; per-call
        #: ``lineage(..., cache=False)`` bypasses it for one query.
        self.cache_config = CacheConfig.of(cache)
        if self.cache_config.enabled:
            self._trace_cache: Optional[TraceReadCache] = TraceReadCache(
                self.store,
                max_entries=self.cache_config.trace_entries,
                max_bytes=self.cache_config.trace_bytes,
                obs=self.obs,
            )
            self._result_cache: Optional[LineageResultCache] = (
                LineageResultCache(
                    self.store,
                    max_entries=self.cache_config.result_entries,
                    max_bytes=self.cache_config.result_bytes,
                    obs=self.obs,
                )
            )
        else:
            self._trace_cache = None
            self._result_cache = None
        #: Compiled query plans (``repro.query.compiled``), on by
        #: default: INDEXPROJ queries execute through a generation-aware
        #: registry of pre-compiled programs instead of re-planning per
        #: call.  ``compiled=False`` here disables the registry;
        #: ``lineage(..., compiled=False)`` opts a single call out.
        self.compiled_default = bool(compiled)
        if self.compiled_default:
            from repro.query.compiled import PlanRegistry

            self._plan_registry: Optional[Any] = PlanRegistry(
                self.store, obs=self.obs
            )
        else:
            self._plan_registry = None
        #: Optional :class:`~repro.obs.slowlog.SlowQueryJournal`; when
        #: attached (constructor-independent — the server's registry sets
        #: it on lazily opened tenants), every :meth:`lineage` call whose
        #: wall time crosses the journal's threshold leaves a structured
        #: record (strategy, cache state, per-level timings, round-trips).
        self.slowlog = None
        self._runners: Dict[str, WorkflowRunner] = {}
        self._flows: Dict[str, Dataflow] = {}
        self._fingerprints: Dict[str, str] = {}
        self._lineage_engines: Dict[str, IndexProjEngine] = {}
        self._impact_engines: Dict[str, IndexProjImpactEngine] = {}
        self._naive = NaiveEngine(
            self.store, obs=self.obs, trace_cache=self._trace_cache
        )
        self._error_handling = error_handling
        # Guards the registration dicts so queries may run concurrently
        # with register_workflow (dict iteration during mutation raises).
        self._registry_lock = threading.Lock()
        # Membership-generation-validated memo of per-workflow run lists:
        # resolving the default query scope on a warm cache path must not
        # cost a store read.
        self._run_list_lock = threading.Lock()
        self._run_list_memo: Dict[str, Tuple[int, List[str]]] = {}

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        self.store.close()

    def __enter__(self) -> "ProvenanceService":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- registration and execution -----------------------------------------

    def register_workflow(
        self,
        flow: Dataflow,
        registry: Optional[ProcessorRegistry] = None,
    ) -> None:
        """Register a workflow definition (idempotent by name).

        Performs the paper's one-off pre-processing: flattening plus depth
        propagation (Alg. 1), cached for every later run and query.
        """
        flat = flow.flattened()
        analysis = propagate_depths(flat)
        with self._registry_lock:
            self._flows[flow.name] = flat
            self._fingerprints[flow.name] = workflow_fingerprint(flat)
            self._runners[flow.name] = WorkflowRunner(
                registry, error_handling=self._error_handling, obs=self.obs
            )
            self._lineage_engines[flow.name] = IndexProjEngine(
                self.store, flat, analysis=analysis, obs=self.obs,
                trace_cache=self._trace_cache,
                plan_registry=self._plan_registry,
                fingerprint=self._fingerprints[flow.name],
            )
            self._impact_engines[flow.name] = IndexProjImpactEngine(
                self.store, flat, analysis=analysis
            )

    def registered_workflows(self) -> List[str]:
        """Names of every workflow registered with this service."""
        with self._registry_lock:
            return list(self._flows)

    def workflow(self, name: str) -> Dataflow:
        try:
            return self._flows[name]
        except KeyError:
            raise WorkflowError(
                f"workflow {name!r} is not registered with this service"
            ) from None

    def run(
        self, workflow_name: str, inputs: Dict[str, Any],
        run_id: Optional[str] = None,
    ) -> str:
        """Execute a registered workflow and store its trace.

        Safe to call from many threads at once (the store serializes the
        insert).  An explicit ``run_id`` that is already stored raises
        :class:`~repro.provenance.store.DuplicateRunError` *before* the
        workflow executes — previously the duplicate was only detected
        after the (wasted) execution, surfacing as a bare constraint
        violation.  The store re-checks inside the insert transaction, so
        two racing runs with the same id can never both land.
        """
        flow = self.workflow(workflow_name)
        if run_id is not None and self.store.has_run(run_id):
            raise DuplicateRunError(run_id)
        captured = capture_run(
            flow, inputs, runner=self._runners[workflow_name], run_id=run_id
        )
        self.store.insert_trace(captured.trace)
        return captured.run_id

    def runs_of(self, workflow_name: str) -> List[str]:
        """Stored run ids of one workflow, in execution order.

        Memoized against the store's membership generation: resolving the
        default query scope on a warm result-cache path must not cost a
        store read.  The generation is captured *before* the read, so a
        racing ingest leaves the memo conservatively stale (refreshed on
        the next call), never missing a committed run it was told about.
        """
        self.workflow(workflow_name)  # raise early on unknown names
        membership = self.store.membership_generation
        with self._run_list_lock:
            memo = self._run_list_memo.get(workflow_name)
            if memo is not None and memo[0] == membership:
                return list(memo[1])
        run_ids = self.store.run_ids(workflow=workflow_name)
        with self._run_list_lock:
            self._run_list_memo[workflow_name] = (membership, run_ids)
        return list(run_ids)

    # -- queries --------------------------------------------------------------

    def _owning_workflow(self, query: LineageQuery) -> str:
        with self._registry_lock:
            flows = list(self._flows.items())
        for name, flow in flows:
            if query.node == name or flow.has_processor(query.node):
                return name
        from repro.analysis.precheck import suggest_names

        candidates = [name for name, _ in flows]
        for _, flow in flows:
            candidates.extend(flow.processor_names)
        close = suggest_names(query.node, candidates)
        hint = f" (did you mean: {', '.join(close)}?)" if close else ""
        raise WorkflowError(
            f"no registered workflow contains node {query.node!r}{hint}"
        )

    def _as_query(self, query: QueryLike, focus: Iterable[str]) -> LineageQuery:
        if isinstance(query, str):
            parsed = parse_query(query)
            if focus:
                parsed = LineageQuery.create(
                    parsed.node, parsed.port, parsed.index, focus
                )
            return parsed
        return query

    def _precheck(
        self, workflow_name: str, parsed: LineageQuery,
        runs: Optional[Iterable[str]],
    ) -> Optional[MultiRunResult]:
        """Static fast-reject (``repro.analysis``): triage before any read.

        Returns a ready (empty) :class:`MultiRunResult` when the query is
        provably empty, raises :class:`QueryValidationError` when it is
        invalid, and returns ``None`` for viable queries.  The empty
        answer is produced with **zero** trace-store accesses — when the
        caller did not pin a run scope, ``per_run`` is empty rather than
        enumerating runs (which would cost a read).
        """
        report = precheck_query(
            self._lineage_engines[workflow_name].analysis, parsed
        )
        if self.obs.enabled:
            self.obs.inc("analysis.precheck_total")
            self.obs.inc(f"analysis.precheck_{report.verdict}")
        if report.is_invalid:
            raise QueryValidationError(report)
        if not report.is_empty:
            return None
        if self.obs.enabled:
            self.obs.inc("analysis.fast_rejects")
        scope = list(runs) if runs is not None else []
        return MultiRunResult(
            query=parsed,
            per_run={
                run_id: LineageResult(query=parsed, run_id=run_id, bindings=[])
                for run_id in scope
            },
            wall_seconds=0.0,
        )

    def lineage(
        self,
        query: QueryLike,
        runs: Optional[Iterable[str]] = None,
        strategy: str = "indexproj",
        focus: Iterable[str] = (),
        batched: bool = False,
        batch: Union[bool, "BatchConfig", None] = None,
        workers: Optional[int] = None,
        precheck: bool = True,
        cache: Optional[bool] = None,
        compiled: Optional[bool] = None,
    ) -> MultiRunResult:
        """Answer a lineage query over ``runs`` (default: every stored run
        of the owning workflow).

        ``batch`` selects the set-based execution path: ``True`` (or a
        :class:`~repro.provenance.store.BatchConfig` carrying a custom
        chunk size) collapses the per-key SQL round-trips of either
        strategy into chunked multi-key lookups — INDEXPROJ resolves the
        whole ``plan × run-set`` grid in ``ceil(keys/chunk)`` statements,
        NI traverses level-synchronously across all runs.  Answers are
        identical to the unbatched path.  ``batch`` wins over
        ``workers``; the legacy ``batched=True`` flag is kept as an alias
        for ``batch=True``.

        ``workers > 1`` fans the per-run trace lookups across a thread
        pool sharing the single cached plan (INDEXPROJ only) — identical
        answers, lower wall-clock on file-backed stores with many runs.

        ``strategy`` may be ``"indexproj"``, ``"naive"``, or ``"auto"``
        (pick by the static cost model, :mod:`repro.analysis.cost`).

        With ``precheck`` (the default), the query is first triaged on
        the workflow specification alone: queries with unresolvable names
        raise :class:`~repro.analysis.precheck.QueryValidationError` with
        did-you-mean suggestions, and provably-empty queries (no dataflow
        path from any focus processor to the binding) return their empty
        answer without a single trace read.

        ``cache=None`` (default) consults the service-level lineage
        result cache when the service was built with one: a valid warm
        entry for (workflow fingerprint, resolved strategy, target,
        focus, run scope) is served with **zero** store reads
        (``result.from_cache`` is then True).  ``cache=False`` bypasses
        the result cache entirely for this call — neither consulted nor
        populated; ``cache=True`` on a cache-disabled service is a
        silent no-op.

        ``compiled=None`` (default) executes INDEXPROJ queries through
        the service's compiled-plan registry when it has one (warm plans
        skip (s1) and bind prepared statements; see
        :mod:`repro.query.compiled`) — unless explicit ``workers > 1``
        asked for the parallel path.  ``compiled=False`` opts this call
        out (interpreted execution); ``compiled=True`` forces the
        compiled path, winning over ``workers``.  Answers are identical
        either way.
        """
        slowlog = self.slowlog
        if not self.obs.enabled and slowlog is None:
            # Fast path: no tracing, no journal — zero added work.
            return self._lineage_impl(
                query, runs=runs, strategy=strategy, focus=focus,
                batched=batched, batch=batch, workers=workers,
                precheck=precheck, cache=cache, compiled=compiled,
            )
        meta: Dict[str, Any] = {}
        started = time.perf_counter()
        with self.obs.span("service.lineage") as span:
            result = self._lineage_impl(
                query, runs=runs, strategy=strategy, focus=focus,
                batched=batched, batch=batch, workers=workers,
                precheck=precheck, cache=cache, compiled=compiled,
                _meta=meta,
            )
            if span.sampled:
                parsed = meta.get("parsed")
                span.set(
                    query=str(parsed) if parsed is not None else str(query),
                    strategy=meta.get("strategy", strategy),
                    from_cache=result.from_cache,
                    runs=len(result.per_run),
                )
        if slowlog is not None:
            # Failed queries raise out of the span above and leave no
            # journal entry — the slowlog records slow *answers*.  The
            # threshold is checked here too, so fast answers skip the
            # record construction (and its aggregate_stats pass) outright.
            wall_ms = (time.perf_counter() - started) * 1000.0
            if wall_ms >= slowlog.threshold_ms:
                trace_id = span.trace_id if self.obs.enabled else ""
                slowlog.record(
                    self._slowlog_entry(meta, result, wall_ms, trace_id)
                )
        return result

    @staticmethod
    def _slowlog_entry(
        meta: Dict[str, Any],
        result: MultiRunResult,
        wall_ms: float,
        trace_id: str,
    ) -> Dict[str, Any]:
        """One structured slow-query record (schema: docs/OBSERVABILITY.md).

        The store counters come from ``aggregate_stats()`` — the same
        identity-deduped aggregation the result itself reports — so the
        journal's round-trip numbers match ``result.sql_queries`` exactly.
        """
        stats = result.aggregate_stats()
        return {
            "query": str(result.query),
            "strategy": meta.get("strategy", ""),
            "from_cache": result.from_cache,
            "wall_ms": round(wall_ms, 3),
            "t1_ms": round(result.traversal_seconds * 1000.0, 3),
            "t2_ms": round(result.lookup_seconds * 1000.0, 3),
            "runs": len(result.per_run),
            "bindings": sum(
                len(r.bindings) for r in result.per_run.values()
            ),
            "sql_queries": stats.queries,
            "rows": stats.rows,
            "batch_lookups": stats.batch_lookups,
            "batch_keys": stats.batch_keys,
            "batch_chunk_size": stats.batch_chunk_size,
            "trace_id": trace_id,
        }

    def _lineage_impl(
        self,
        query: QueryLike,
        runs: Optional[Iterable[str]] = None,
        strategy: str = "indexproj",
        focus: Iterable[str] = (),
        batched: bool = False,
        batch: Union[bool, "BatchConfig", None] = None,
        workers: Optional[int] = None,
        precheck: bool = True,
        cache: Optional[bool] = None,
        compiled: Optional[bool] = None,
        _meta: Optional[Dict[str, Any]] = None,
    ) -> MultiRunResult:
        parsed = self._as_query(query, focus)
        if _meta is not None:
            # The parsed object, not its rendering — callers format the
            # query text only when a sampled span or slowlog entry needs it.
            _meta["parsed"] = parsed
        batch_config = BatchConfig.of(
            batch if batch is not None else bool(batched)
        )
        workflow_name = self._owning_workflow(parsed)
        if precheck:
            rejected = self._precheck(workflow_name, parsed, runs)
            if rejected is not None:
                return rejected
        scope = list(runs) if runs is not None else self.runs_of(workflow_name)
        if strategy == "auto":
            strategy = _choose_strategy(
                self._lineage_engines[workflow_name].analysis,
                parsed,
                runs=len(scope),
            )
            if self.obs.enabled:
                self.obs.inc(f"analysis.auto_{strategy}")
        if _meta is not None:
            _meta["strategy"] = strategy
        use_cache = self._result_cache is not None and cache is not False
        key: Optional[ResultCacheKey] = None
        generations = None
        if use_cache:
            key = ResultCacheKey(
                fingerprint=self._fingerprints[workflow_name],
                strategy=strategy,
                node=parsed.node,
                port=parsed.port,
                index=parsed.index.encode(),
                focus=parsed.focus,
                runs=tuple(scope),
            )
            assert self._result_cache is not None
            hit = self._result_cache.get(key, parsed)
            if hit is not None:
                return hit
            # Miss: capture the scope's generation vector *before*
            # executing, so an entry built while a writer raced us
            # self-invalidates instead of serving stale data.
            generations = self.store.generation_vector(scope)
        if strategy == "naive":
            if batch_config.enabled:
                result = self._naive.lineage_multirun_batched(
                    scope, parsed, chunk_size=batch_config.chunk_size
                )
            else:
                result = self._naive.lineage_multirun(scope, parsed)
        else:
            engine = self._lineage_engines[workflow_name]
            # Compiled execution is the INDEXPROJ default when the
            # service owns a plan registry.  A compiled program already
            # executes as one batched grid per level, so it subsumes
            # ``batch`` (whose chunk size it honours); explicit
            # ``workers > 1`` keeps the parallel path unless the caller
            # forces ``compiled=True``.
            use_compiled = (
                compiled is True
                or (compiled is None and self._plan_registry is not None)
            ) and (
                compiled is True or workers is None or workers <= 1
            )
            if use_compiled:
                result = engine.lineage_multirun_compiled(
                    scope, parsed,
                    chunk_size=(
                        batch_config.chunk_size
                        if batch_config.enabled
                        else None
                    ),
                )
            elif batch_config.enabled:
                result = engine.lineage_multirun_batched(
                    scope, parsed, chunk_size=batch_config.chunk_size
                )
            elif workers is not None and workers > 1:
                result = engine.lineage_multirun_parallel(
                    scope, parsed, max_workers=workers
                )
            else:
                result = engine.lineage_multirun(scope, parsed)
        if use_cache and key is not None and generations is not None:
            result.generations = generations
            assert self._result_cache is not None
            self._result_cache.put(key, result, generations)
        return result

    def lineage_many(
        self,
        queries: Sequence[QueryLike],
        max_workers: int = 4,
        runs: Optional[Iterable[str]] = None,
        strategy: str = "indexproj",
        focus: Iterable[str] = (),
        batch: Union[bool, "BatchConfig", None] = None,
        precheck: bool = True,
        cache: Optional[bool] = None,
        compiled: Optional[bool] = None,
    ) -> List[MultiRunResult]:
        """Answer many lineage queries concurrently.

        Results come back in the order the queries were given, and each is
        exactly what a sequential :meth:`lineage` call would have returned
        — the thread pool only overlaps their store lookups.  Engines,
        plan caches, and the lineage cache stack are shared across the
        pool, so repeated shapes pay planning once (the paper's Section
        3.4 sharing, applied across a query *batch*) and duplicate
        queries inside one batch can warm each other.
        """
        query_list = list(queries)
        if not query_list:
            return []
        scope = list(runs) if runs is not None else None
        workers = max(1, min(max_workers, len(query_list)))
        if workers == 1:
            return [
                self.lineage(
                    q, runs=scope, strategy=strategy, focus=focus,
                    batch=batch, precheck=precheck, cache=cache,
                    compiled=compiled,
                )
                for q in query_list
            ]
        # Each pooled query runs in a copy of the caller's context, so
        # its service.lineage span still nests under the caller's active
        # span (one trace id per request even across this pool).  One
        # copy per query — a Context cannot be entered concurrently.
        tasks = [
            (contextvars.copy_context(), q) for q in query_list
        ]

        def run_one(task: Tuple[contextvars.Context, QueryLike]):
            ctx, q = task
            return ctx.run(
                self.lineage, q, runs=scope, strategy=strategy,
                focus=focus, batch=batch, precheck=precheck, cache=cache,
                compiled=compiled,
            )

        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_one, tasks))

    def impact(
        self,
        node: str,
        port: str,
        index: Iterable[int] = (),
        focus: Iterable[str] = (),
        runs: Optional[Iterable[str]] = None,
    ) -> MultiRunResult:
        """Answer a forward (impact) query over ``runs``."""
        query = ImpactQuery.create(node, port, index, focus)
        workflow_name = self._owning_workflow(query)
        scope = list(runs) if runs is not None else self.runs_of(workflow_name)
        return self._impact_engines[workflow_name].impact_multirun(scope, query)

    def explain(
        self, query: QueryLike, runs: Optional[int] = None,
        focus: Iterable[str] = (),
    ) -> QueryExplanation:
        """Static cost estimate for a query (no trace access)."""
        parsed = self._as_query(query, focus)
        workflow_name = self._owning_workflow(parsed)
        run_count = runs if runs is not None else max(
            1, len(self.runs_of(workflow_name))
        )
        return _explain(
            self._lineage_engines[workflow_name].analysis, parsed, run_count
        )

    def explain_plan(
        self, query: QueryLike, runs: Optional[int] = None,
        focus: Iterable[str] = (),
    ) -> PlanExplanation:
        """Full static plan: pre-check verdict, cost model, auto strategy,
        the exact INDEXPROJ trace lookups, and the result-cache state —
        all without trace access (run count defaults to the stored-run
        count, which may read; the cache probe itself never does)."""
        parsed = self._as_query(query, focus)
        workflow_name = self._owning_workflow(parsed)
        run_count = runs if runs is not None else max(
            1, len(self.runs_of(workflow_name))
        )
        cache_state: Optional[str] = None
        if self._result_cache is not None:
            # Probe both strategies over the stored-run scope — the scope
            # a plain ``lineage(query)`` call would execute against.
            scope = tuple(self.runs_of(workflow_name))
            fingerprint = self._fingerprints[workflow_name]
            warm = any(
                self._result_cache.probe(
                    ResultCacheKey(
                        fingerprint=fingerprint,
                        strategy=candidate,
                        node=parsed.node,
                        port=parsed.port,
                        index=parsed.index.encode(),
                        focus=parsed.focus,
                        runs=scope,
                    )
                )
                for candidate in ("indexproj", "naive")
            )
            cache_state = "warm" if warm else "cold"
        plan_state: Optional[str] = None
        execution = "interpreted"
        stmt_hits = 0
        if self._plan_registry is not None:
            execution = "compiled"
            plan_state = self._plan_registry.probe(
                self._fingerprints[workflow_name], parsed
            )
            stmt_stats = getattr(
                self.store, "statement_cache_stats", lambda: {}
            )()
            stmt_hits = stmt_stats.get("hits", 0)
        return _explain_plan(
            self._lineage_engines[workflow_name].analysis, parsed, run_count,
            cache_state=cache_state,
            execution=execution,
            plan_state=plan_state,
            stmt_cache_hits=stmt_hits,
        )

    def statistics(self) -> Dict[str, int]:
        """Store-wide size summary plus registration count."""
        stats = self.store.statistics()
        stats["registered_workflows"] = len(self._flows)
        return stats

    # -- cache control ------------------------------------------------------

    def cache_stats(self) -> Dict[str, Any]:
        """Point-in-time view of the lineage cache stack.

        ``{"enabled": ..., "config": {...}, "result": {...},
        "trace": {...}}`` — the per-level dicts carry hits, misses,
        evictions, invalidations, entries, and byte accounting (empty
        when the stack is disabled).  See docs/CACHING.md.
        """
        config = {
            "result_entries": self.cache_config.result_entries,
            "result_bytes": self.cache_config.result_bytes,
            "trace_entries": self.cache_config.trace_entries,
            "trace_bytes": self.cache_config.trace_bytes,
        }
        plans = (
            self._plan_registry.stats()
            if self._plan_registry is not None
            else {}
        )
        if self._result_cache is None or self._trace_cache is None:
            return {
                "enabled": False, "config": config,
                "result": {}, "trace": {}, "plans": plans,
            }
        return {
            "enabled": True,
            "config": config,
            "result": self._result_cache.stats(),
            "trace": self._trace_cache.stats(),
            "plans": plans,
        }

    def invalidate_caches(self) -> Dict[str, int]:
        """Drop every cached lineage artifact (both levels + scope memo).

        Returns the number of entries evicted per level.  Generations are
        untouched — this is an operator hammer (e.g. after out-of-band
        database surgery), not part of normal coherence, which the write
        generations handle automatically.
        """
        with self._run_list_lock:
            self._run_list_memo.clear()
        plans = (
            self._plan_registry.clear()
            if self._plan_registry is not None
            else 0
        )
        if self._result_cache is None or self._trace_cache is None:
            return {"result": 0, "trace": 0, "plans": plans}
        return {
            "result": self._result_cache.clear(),
            "trace": self._trace_cache.clear(),
            "plans": plans,
        }

    def metrics_snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Point-in-time view of every ``repro.obs`` instrument.

        Empty sections when the service was built without an enabled
        observability handle (the default).  See docs/OBSERVABILITY.md
        for the instrument inventory.
        """
        return self.obs.metrics_snapshot()
