"""Value-predicated queries: finding bindings by payload.

The paper scopes its contribution to *structural* queries and notes that
"a query that explicitly predicates on the presence of a specific value
on the trace ... can still be answered using a standard graph traversal
technique, but would not benefit from our approach" (Section 1.1).  This
module supplies that complementary capability:

* :func:`find_value` locates every binding whose payload equals (or
  contains) a value — a full scan over the payload column, exactly the
  access pattern the index projection rule cannot help with;
* combined with the lineage/impact engines, it answers the natural
  two-step questions: "this value looks wrong — where did it enter the
  workflow, and what did it contaminate?" (:func:`trace_value`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.engine.events import Binding
from repro.provenance.store import StoreStats, TraceStore, _decode_value
from repro.values.index import Index
from repro.workflow.model import PortRef


@dataclass(frozen=True)
class ValueHit:
    """One place a searched value appears in a trace."""

    binding: Binding
    role: str  # 'in', 'out', or 'xfer'

    def key(self):
        return self.binding.key() + (self.role,)


def find_value(
    store: TraceStore,
    run_id: str,
    value: Any = None,
    substring: Optional[str] = None,
    stats: Optional[StoreStats] = None,
) -> List[ValueHit]:
    """Bindings whose payload equals ``value`` or contains ``substring``.

    Exactly one of ``value`` / ``substring`` must be given.  Equality is
    on the canonical JSON encoding; substring search applies to the same
    encoding (so it sees inside lists).  Both require scanning the payload
    column — no index can serve them, which is the paper's point about
    value-predicated queries.
    """
    if (value is None) == (substring is None):
        raise ValueError("pass exactly one of value= or substring=")
    stats = stats if stats is not None else StoreStats()
    if substring is not None:
        escaped = (
            substring.replace("\\", "\\\\")
            .replace("%", "\\%")
            .replace("_", "\\_")
        )
        condition = "LIKE ? ESCAPE '\\'"
        parameter = f"%{escaped}%"
    else:
        condition = "= ?"
        parameter = json.dumps(value, default=repr, separators=(",", ":"))

    hits: Dict[tuple, ValueHit] = {}
    io_rows = store._conn.execute(
        "SELECT processor, port, idx, role, "
        "COALESCE(xform_io.value_json, vp.value_json) AS payload "
        "FROM xform_io LEFT JOIN value_pool vp "
        "ON vp.value_id = xform_io.value_id "
        f"WHERE run_id = ? AND payload {condition}",
        (run_id, parameter),
    ).fetchall()
    stats.record(len(io_rows))
    for node, port, idx, role, payload in io_rows:
        hit = ValueHit(
            binding=Binding(
                PortRef(node, port), Index.decode(idx),
                value=_decode_value(payload),
            ),
            role=role,
        )
        hits.setdefault(hit.key(), hit)
    xfer_rows = store._conn.execute(
        "SELECT src_node, src_port, src_idx, "
        "COALESCE(xfer.value_json, vp.value_json) AS payload "
        "FROM xfer LEFT JOIN value_pool vp ON vp.value_id = xfer.value_id "
        f"WHERE run_id = ? AND payload {condition}",
        (run_id, parameter),
    ).fetchall()
    stats.record(len(xfer_rows))
    for node, port, idx, payload in xfer_rows:
        hit = ValueHit(
            binding=Binding(
                PortRef(node, port), Index.decode(idx),
                value=_decode_value(payload),
            ),
            role="xfer",
        )
        hits.setdefault(hit.key(), hit)
    return sorted(hits.values(), key=lambda h: h.key())


@dataclass
class ValueTrace:
    """Where a value entered the dataflow and what it reached."""

    hits: List[ValueHit]
    origins: List[Binding]
    affected: List[Binding]


def trace_value(
    store: TraceStore,
    flow,
    run_id: str,
    value: Any = None,
    substring: Optional[str] = None,
    focus: Optional[List[str]] = None,
) -> ValueTrace:
    """Two-step value investigation: find, then trace both directions.

    ``origins`` is the union of the lineage of every hit (relative to
    ``focus``, defaulting to all processors); ``affected`` the union of
    their impact.  The find step is a scan; the tracing steps enjoy the
    full intensional machinery.
    """
    from repro.query.base import LineageQuery
    from repro.query.impact import ImpactQuery, IndexProjImpactEngine
    from repro.query.indexproj import IndexProjEngine

    flat = flow.flattened()
    focus_set = list(focus) if focus is not None else list(flat.processor_names)
    hits = find_value(store, run_id, value=value, substring=substring)
    lineage_engine = IndexProjEngine(store, flat)
    impact_engine = IndexProjImpactEngine(
        store, flat, analysis=lineage_engine.analysis
    )
    origins: Dict[tuple, Binding] = {}
    affected: Dict[tuple, Binding] = {}
    for hit in hits:
        binding = hit.binding
        if binding.node == flat.name or not flat.has_processor(binding.node):
            continue
        lineage = lineage_engine.lineage(
            run_id,
            LineageQuery.create(
                binding.node, binding.port, binding.index, focus_set
            ),
        )
        for found in lineage.bindings:
            origins.setdefault(found.key(), found)
        impact = impact_engine.impact(
            run_id,
            ImpactQuery.create(
                binding.node, binding.port, binding.index, focus_set
            ),
        )
        for found in impact.bindings:
            affected.setdefault(found.key(), found)
    return ValueTrace(
        hits=hits,
        origins=sorted(origins.values(), key=lambda b: b.key()),
        affected=sorted(affected.values(), key=lambda b: b.key()),
    )
