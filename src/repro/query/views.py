"""User views: group-level focus and answer roll-up.

Section 1.2 positions the Zoom*UserView system [6, 7] as complementary to
the paper's approach: users define named aggregations of adjacent
processors, and provenance is reported at the granularity of those groups
rather than of individual processors.  This module provides that
complement on top of the query engines:

* a :class:`UserView` names disjoint groups of processors;
* :func:`focus_for_groups` expands group names into the processor-level
  focus set 𝒫 the engines consume — so a user can ask "lineage relative
  to the *alignment* stage" without listing its processors; and
* :func:`rollup` aggregates a processor-level answer back to groups,
  collapsing the per-processor bindings inside each group.

Views are purely a query-time lens: traces and engines are untouched,
exactly the composition the paper envisages.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.engine.events import Binding
from repro.workflow.model import Dataflow, WorkflowError


@dataclass(frozen=True)
class GroupedBinding:
    """One lineage answer entry attributed to a view group."""

    group: str
    binding: Binding

    def key(self) -> Tuple[str, str, str, str]:
        return (self.group,) + self.binding.key()


class UserView:
    """A named partition of (some of) a workflow's processors into groups.

    Groups must be disjoint; processors left out of every group are
    reported under their own name (singleton implicit groups), mirroring
    Zoom's behaviour of showing unaggregated processors as-is.
    """

    def __init__(self, name: str, groups: Mapping[str, Iterable[str]]) -> None:
        if not name:
            raise WorkflowError("view name must be non-empty")
        self.name = name
        self._groups: Dict[str, FrozenSet[str]] = {
            group: frozenset(members) for group, members in groups.items()
        }
        self._owner: Dict[str, str] = {}
        for group, members in self._groups.items():
            if not members:
                raise WorkflowError(f"view group {group!r} is empty")
            for processor in members:
                if processor in self._owner:
                    raise WorkflowError(
                        f"processor {processor!r} belongs to both "
                        f"{self._owner[processor]!r} and {group!r}"
                    )
                self._owner[processor] = group

    @property
    def group_names(self) -> Tuple[str, ...]:
        return tuple(self._groups)

    def members(self, group: str) -> FrozenSet[str]:
        try:
            return self._groups[group]
        except KeyError:
            raise WorkflowError(
                f"view {self.name!r} has no group {group!r}"
            ) from None

    def group_of(self, processor: str) -> Optional[str]:
        """The group owning ``processor``, or None if ungrouped."""
        return self._owner.get(processor)

    def validate_against(self, flow: Dataflow) -> None:
        """Check that every grouped processor exists in ``flow``."""
        known = set(flow.processor_names)
        unknown = set(self._owner) - known
        if unknown:
            raise WorkflowError(
                f"view {self.name!r} mentions unknown processor(s) "
                f"{sorted(unknown)}"
            )


def focus_for_groups(view: UserView, groups: Iterable[str]) -> FrozenSet[str]:
    """Expand group names into the processor-level focus set 𝒫."""
    focus: set = set()
    for group in groups:
        focus.update(view.members(group))
    return frozenset(focus)


def rollup(bindings: Iterable[Binding], view: UserView) -> List[GroupedBinding]:
    """Attribute each answer binding to its view group.

    Bindings of ungrouped processors keep the processor name as their
    group.  Results are sorted by (group, binding key) and deduplicated.
    """
    seen = set()
    grouped: List[GroupedBinding] = []
    for binding in bindings:
        group = view.group_of(binding.node) or binding.node
        entry = GroupedBinding(group=group, binding=binding)
        if entry.key() in seen:
            continue
        seen.add(entry.key())
        grouped.append(entry)
    grouped.sort(key=lambda e: e.key())
    return grouped


def group_summary(
    grouped: Iterable[GroupedBinding],
) -> Dict[str, List[Binding]]:
    """Bindings per group, in stable order — the view-level answer."""
    summary: Dict[str, List[Binding]] = {}
    for entry in grouped:
        summary.setdefault(entry.group, []).append(entry.binding)
    return summary
