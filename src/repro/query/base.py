"""Shared lineage query/result types."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.engine.events import Binding
from repro.provenance.store import StoreStats
from repro.values.index import Index


@dataclass(frozen=True)
class LineageQuery:
    """``lin(<node:port[index]>, focus)`` — what the user asks.

    ``focus`` is the paper's set 𝒫 of "interesting" processors: the answer
    contains only input bindings of processors in this set.  An *unfocused*
    query passes every processor of the workflow.  The empty ``index``
    requests coarse-grained lineage of the whole value bound to the port.
    """

    node: str
    port: str
    index: Index
    focus: FrozenSet[str]

    @classmethod
    def create(
        cls, node: str, port: str, index: Iterable[int] = (), focus: Iterable[str] = ()
    ) -> "LineageQuery":
        """Convenience constructor from plain values.

        >>> LineageQuery.create("P", "Y", [1, 2], ["Q", "R"]).index
        Index(1, 2)
        """
        return cls(
            node=node,
            port=port,
            index=index if isinstance(index, Index) else Index.of(index),
            focus=frozenset(focus),
        )

    def __str__(self) -> str:
        focus = "{" + ", ".join(sorted(self.focus)) + "}"
        return f"lin(<{self.node}:{self.port}[{self.index.encode()}]>, {focus})"


@dataclass
class LineageResult:
    """One strategy's answer to one query over one run."""

    query: LineageQuery
    run_id: str
    bindings: List[Binding]
    stats: StoreStats = field(default_factory=StoreStats)
    #: seconds spent traversing (graph or trace) before/between lookups —
    #: the paper's t1 for INDEXPROJ; for NI traversal and lookups are one
    #: interleaved process, so t1 is 0 and everything lands in t2.
    traversal_seconds: float = 0.0
    #: seconds spent executing trace lookups (the paper's t2).
    lookup_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.traversal_seconds + self.lookup_seconds

    def binding_keys(self) -> FrozenSet[Tuple[str, str, str]]:
        """Value-independent identity of the answer set."""
        return frozenset(b.key() for b in self.bindings)


@dataclass
class MultiRunResult:
    """One strategy's answer to one query over a set of runs (§3.4)."""

    query: LineageQuery
    per_run: Dict[str, LineageResult]
    traversal_seconds: float = 0.0
    lookup_seconds: float = 0.0
    #: Wall-clock seconds for the whole multi-run execution.  Equal to
    #: ``total_seconds`` for sequential execution; smaller when per-run
    #: lookups ran on a thread pool (``lookup_seconds`` then sums the
    #: per-run CPU times, which overlap in real time).  ``None`` when the
    #: executing engine predates the distinction.
    wall_seconds: Optional[float] = None
    #: True when this answer was served by the lineage result cache
    #: (:mod:`repro.cache`) instead of executed: timings are then ~0 and
    #: every per-run ``StoreStats`` is all-zero (no store access).
    from_cache: bool = False
    #: Generation vector of the run scope this answer is coherent with —
    #: ``(global generation, per-run generations)``, captured *before*
    #: the reads that produced the answer.  ``None`` when the executing
    #: path did not track generations (e.g. engine used directly).
    generations: Optional[Tuple[int, Tuple[int, ...]]] = None

    @property
    def total_seconds(self) -> float:
        return self.traversal_seconds + self.lookup_seconds

    @property
    def run_ids(self) -> List[str]:
        return list(self.per_run)

    def all_bindings(self) -> Dict[str, List[Binding]]:
        return {run_id: result.bindings for run_id, result in self.per_run.items()}

    def binding_keys_by_run(self) -> Dict[str, FrozenSet[Tuple[str, str, str]]]:
        """Value-independent identity of the whole multi-run answer.

        The canonical equality check for differential tests: two executions
        agree iff these dictionaries are equal, regardless of per-run
        ordering or timing fields.
        """
        return {
            run_id: result.binding_keys()
            for run_id, result in self.per_run.items()
        }

    def aggregate_stats(self) -> StoreStats:
        """Store counters of the whole execution, multi-count free.

        Batched executions share one :class:`StoreStats` object across
        every per-run result (a set-based lookup answers all runs at
        once, so its round-trips cannot be attributed to a single run);
        summing ``result.stats.queries`` over ``per_run`` would then
        multiply-count each round-trip by the number of runs.  This
        aggregation dedupes by object identity first, so it is correct
        for both the per-run (unbatched) and the shared (batched) shape.
        """
        total = StoreStats()
        seen: set = set()
        for result in self.per_run.values():
            if id(result.stats) in seen:
                continue
            seen.add(id(result.stats))
            total.merge(result.stats)
        return total

    @property
    def sql_queries(self) -> int:
        """Total SQL round-trips of this execution (EXPERIMENTS.md counter)."""
        return self.aggregate_stats().queries
