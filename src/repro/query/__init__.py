"""Lineage query engines.

Two strategies answer the same query ``lin(<P:Y[p], v>, focus)`` (Def. 1):

``NaiveEngine`` (**NI**, Section 2.4)
    Recursive traversal of the *provenance graph*: every hop issues indexed
    lookups against the relational trace store, for every processor on
    every upward path — interesting or not.  Cost grows with the length of
    the provenance path and must be paid again for every run in scope.

``IndexProjEngine`` (**INDEXPROJ**, Section 3)
    Traverses the *workflow specification graph* instead, inverting each
    processor intensionally with the index projection rule (Prop. 1 /
    corrected Def. 4).  The trace is touched only at focus processors —
    step (s2) — and the graph traversal — step (s1) — is shared by all
    runs of the same workflow, and cacheable across queries.

Both return :class:`LineageResult` objects carrying the bindings, the
store-access statistics, and the timing breakdown the paper's evaluation
reports (t1 = traversal/planning, t2 = trace lookups).
"""

from repro.query.base import LineageQuery, LineageResult, MultiRunResult
from repro.query.diff import LineageDiff, diff_lineage, diff_multirun
from repro.query.explain import QueryExplanation, explain
from repro.query.impact import (
    ImpactQuery,
    IndexProjImpactEngine,
    NaiveImpactEngine,
    build_impact_plan,
)
from repro.query.indexproj import IndexProjEngine, QueryPlan, TraceQuery, build_plan
from repro.query.naive import NaiveEngine
from repro.query.parser import QueryParseError, format_query, parse_query
from repro.query.projection import project_output_index
from repro.query.value_search import ValueHit, ValueTrace, find_value, trace_value
from repro.query.views import UserView, focus_for_groups, group_summary, rollup

__all__ = [
    "ValueHit",
    "ValueTrace",
    "find_value",
    "trace_value",
    "ImpactQuery",
    "IndexProjImpactEngine",
    "NaiveImpactEngine",
    "build_impact_plan",
    "QueryParseError",
    "format_query",
    "parse_query",
    "LineageDiff",
    "diff_lineage",
    "diff_multirun",
    "IndexProjEngine",
    "LineageQuery",
    "LineageResult",
    "MultiRunResult",
    "NaiveEngine",
    "QueryExplanation",
    "QueryPlan",
    "TraceQuery",
    "UserView",
    "build_plan",
    "explain",
    "focus_for_groups",
    "group_summary",
    "project_output_index",
    "rollup",
]
