"""Cost estimation and strategy recommendation for lineage queries.

The paper's analysis (Section 3 and the Fig. 9/10 discussion) implies a
simple, accurate cost model over the static workflow graph:

* **INDEXPROJ** performs one graph traversal (cost ∝ ports visited
  upstream of the query binding) plus **one indexed trace lookup per
  focus-processor input port, per run** — the traversal is shared across
  runs and cacheable across queries.
* **NI** performs one or two indexed lookups **per binding hop on every
  upward path**, re-done **per run**; the hop count is a static property
  of the workflow graph upstream of the query port.

:func:`explain` evaluates both sides of that model without touching the
trace, returning a :class:`QueryExplanation` whose INDEXPROJ lookup count
is exact (it equals the plan size) and whose NI hop count is the exact
number of distinct (port, index-class) states the naive traversal visits
when the trace is fine-grained.  The recommendation follows the paper's
conclusion — INDEXPROJ never does worse — with the estimated ratio as the
evidence.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set

from repro.query.base import LineageQuery
from repro.query.indexproj import build_plan
from repro.workflow.depths import DepthAnalysis
from repro.workflow.model import PortRef


@dataclass(frozen=True)
class QueryExplanation:
    """Static cost breakdown for one query over ``runs`` runs."""

    query: LineageQuery
    runs: int
    #: ports visited by the (shared) INDEXPROJ graph traversal
    indexproj_traversal_ports: int
    #: indexed trace lookups INDEXPROJ issues in total (plan size x runs)
    indexproj_lookups: int
    #: upstream port-states the naive traversal visits per run
    naive_hops: int
    #: indexed trace lookups NI issues in total (<= 2 per hop, x runs)
    naive_lookups: int
    recommendation: str

    @property
    def lookup_ratio(self) -> float:
        """NI lookups per INDEXPROJ lookup (>= 1 in all but empty cases)."""
        if self.indexproj_lookups == 0:
            return float("inf") if self.naive_lookups else 1.0
        return self.naive_lookups / self.indexproj_lookups

    def summary(self) -> str:
        return (
            f"{self.query} over {self.runs} run(s): "
            f"INDEXPROJ {self.indexproj_lookups} lookups "
            f"(+ {self.indexproj_traversal_ports}-port traversal, shared); "
            f"NI ~{self.naive_lookups} lookups "
            f"({self.naive_hops} hops per run) -> {self.recommendation}"
        )


def explain(
    analysis: DepthAnalysis, query: LineageQuery, runs: int = 1
) -> QueryExplanation:
    """Estimate both strategies' trace-access cost from the static graph."""
    plan = build_plan(analysis, query)
    hops = _upstream_port_states(analysis, query)
    naive_lookups = 2 * hops * runs  # one xform probe + one xfer probe max
    indexproj_lookups = len(plan.trace_queries) * runs
    if indexproj_lookups <= naive_lookups:
        recommendation = "indexproj"
    else:  # pragma: no cover - the model never reaches this branch
        recommendation = "naive"
    return QueryExplanation(
        query=query,
        runs=runs,
        indexproj_traversal_ports=plan.visited_ports,
        indexproj_lookups=indexproj_lookups,
        naive_hops=hops,
        naive_lookups=naive_lookups,
        recommendation=recommendation,
    )


def _upstream_port_states(analysis: DepthAnalysis, query: LineageQuery) -> int:
    """Ports the naive traversal must visit: the full upstream closure.

    NI cannot skip uninteresting processors — every upward path is walked
    to its sources regardless of the focus set (Section 3: accesses are
    "wasted" on regions without interesting processors).
    """
    flow = analysis.flow
    visited: Set[PortRef] = set()
    stack: List[PortRef] = [PortRef(query.node, query.port)]
    while stack:
        ref = stack.pop()
        if ref in visited:
            continue
        visited.add(ref)
        if ref.node == flow.name:
            arc = flow.incoming_arc(ref)
            if arc is not None:
                stack.append(arc.source)
            continue
        processor = flow.processor(ref.node)
        if processor.has_output(ref.port):
            stack.extend(
                PortRef(processor.name, port.name) for port in processor.inputs
            )
        else:
            arc = flow.incoming_arc(ref)
            if arc is not None:
                stack.append(arc.source)
    return len(visited)
