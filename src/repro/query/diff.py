"""Differencing lineage answers across runs and workflow versions.

Section 3.4 motivates multi-run queries with "comparing data products
across multiple runs of the same workflow, as well as across runs of
different versions of a workflow" (full provenance differencing, per Bao
et al. [2], is out of the paper's scope — and of ours; what we provide is
the answer-level comparison that multi-run lineage enables directly).

:func:`diff_lineage` compares two single-run answers; :func:`diff_multirun`
sweeps a multi-run result against a baseline run, reporting for every run
which lineage bindings appeared, disappeared, or changed value.  Because
binding identity is ``(processor, port, index)`` — stable across runs of
the same workflow, and across versions that keep processor/port names —
the comparison is well-defined in exactly the scenarios the paper names.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Tuple

from repro.engine.events import Binding
from repro.query.base import LineageResult, MultiRunResult

BindingKey = Tuple[str, str, str]


@dataclass(frozen=True)
class ValueChange:
    """One binding present in both answers with different payloads."""

    key: BindingKey
    left_value: object
    right_value: object


@dataclass
class LineageDiff:
    """Difference between two lineage answers (``left`` vs ``right``)."""

    only_left: List[Binding] = field(default_factory=list)
    only_right: List[Binding] = field(default_factory=list)
    changed: List[ValueChange] = field(default_factory=list)
    unchanged: List[Binding] = field(default_factory=list)

    @property
    def is_empty(self) -> bool:
        """True when the two answers are identical, values included."""
        return not (self.only_left or self.only_right or self.changed)

    def summary(self) -> str:
        return (
            f"{len(self.unchanged)} unchanged, {len(self.changed)} changed, "
            f"{len(self.only_left)} only-left, {len(self.only_right)} "
            "only-right"
        )


def diff_bindings(
    left: Iterable[Binding], right: Iterable[Binding]
) -> LineageDiff:
    """Compare two binding collections by identity, then by value."""
    left_map: Dict[BindingKey, Binding] = {b.key(): b for b in left}
    right_map: Dict[BindingKey, Binding] = {b.key(): b for b in right}
    diff = LineageDiff()
    for key in sorted(set(left_map) | set(right_map)):
        if key not in right_map:
            diff.only_left.append(left_map[key])
        elif key not in left_map:
            diff.only_right.append(right_map[key])
        elif left_map[key].value != right_map[key].value:
            diff.changed.append(
                ValueChange(
                    key=key,
                    left_value=left_map[key].value,
                    right_value=right_map[key].value,
                )
            )
        else:
            diff.unchanged.append(left_map[key])
    return diff


def diff_lineage(left: LineageResult, right: LineageResult) -> LineageDiff:
    """Compare two single-run lineage answers."""
    return diff_bindings(left.bindings, right.bindings)


def diff_multirun(
    results: MultiRunResult, baseline_run: str
) -> Dict[str, LineageDiff]:
    """Compare every run's answer against one baseline run's answer.

    The parameter-sweep reading: "which sweep points changed the lineage
    of this output, and how?"  Returns ``{run_id: diff vs baseline}`` for
    every non-baseline run in the result.
    """
    if baseline_run not in results.per_run:
        raise KeyError(f"baseline run {baseline_run!r} not in the result")
    baseline = results.per_run[baseline_run]
    return {
        run_id: diff_lineage(baseline, result)
        for run_id, result in results.per_run.items()
        if run_id != baseline_run
    }
