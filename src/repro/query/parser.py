"""Textual lineage-query notation, matching the paper's own syntax.

The paper writes queries as ``lin(<P:Y[p]>, {Q, R})``.  This parser
accepts exactly that (with the decorations optional), so the CLI and
interactive sessions can take queries as single strings:

    lin(<2TO1_FINAL:y[0.1]>, {LISTGEN_1})
    lin(genes2kegg:paths_per_gene[0], {get_pathways_by_genes})
    wf:out[1.2]                      # bare binding, empty focus
    lin(<P:Y[]>, {})                 # coarse query, empty focus

Grammar (whitespace-insensitive)::

    query    := "lin(" binding ("," focus)? ")" | binding
    binding  := "<"? node ":" port ("[" index "]")? ">"?
    index    := ""            (empty: whole value)
              | INT ("." INT)*
    focus    := "{" (name ("," name)*)? "}"
"""

from __future__ import annotations

import re
from typing import List

from repro.query.base import LineageQuery
from repro.values.index import Index


class QueryParseError(ValueError):
    """Raised for text that does not follow the query grammar."""


_BINDING = re.compile(
    r"^<?\s*(?P<node>[^:<>\[\]{},\s]+)\s*:\s*(?P<port>[^:<>\[\]{},\s]+)"
    r"\s*(?:\[\s*(?P<index>[0-9.\s]*)\s*\])?\s*>?$"
)

#: Focus-set entries are processor names: same charset as binding names.
_NAME = re.compile(r"^[^:<>\[\]{},\s]+$")


def parse_query(text: str) -> LineageQuery:
    """Parse the paper's ``lin(...)`` notation into a :class:`LineageQuery`.

    >>> q = parse_query("lin(<P:Y[0.1]>, {Q, R})")
    >>> (q.node, q.port, q.index.encode(), sorted(q.focus))
    ('P', 'Y', '0.1', ['Q', 'R'])
    """
    stripped = text.strip()
    focus: List[str] = []
    if stripped.startswith("lin(") and stripped.endswith(")"):
        body = stripped[len("lin(") : -1].strip()
        binding_text, focus = _split_body(body)
    else:
        binding_text = stripped
    match = _BINDING.match(binding_text.strip())
    if not match:
        raise QueryParseError(
            f"malformed binding {binding_text!r}; expected node:port[index]"
        )
    index_text = (match.group("index") or "").replace(" ", "")
    try:
        index = Index.decode(index_text)
    except ValueError as exc:
        raise QueryParseError(str(exc)) from exc
    return LineageQuery.create(
        match.group("node"), match.group("port"), index, focus
    )


def _split_body(body: str) -> tuple:
    """Split ``binding, {focus}`` respecting the braces."""
    brace = body.find("{")
    if brace == -1:
        return body, []
    if not body.rstrip().endswith("}"):
        raise QueryParseError(f"unterminated focus set in {body!r}")
    binding_text = body[:brace].rstrip()
    if binding_text.endswith(","):
        binding_text = binding_text[:-1].rstrip()
    else:
        raise QueryParseError(
            f"expected ',' between binding and focus set in {body!r}"
        )
    focus_text = body[brace:].strip()
    inner = focus_text[1:-1].strip()
    if not inner:
        return binding_text, []
    names = [name.strip() for name in inner.split(",")]
    if any(not name for name in names):
        raise QueryParseError(f"empty name in focus set {focus_text!r}")
    if any(not _NAME.match(name) for name in names):
        raise QueryParseError(
            f"invalid processor name in focus set {focus_text!r}"
        )
    return binding_text, names


def format_query(query: LineageQuery) -> str:
    """Inverse of :func:`parse_query` (canonical form)."""
    focus = ", ".join(sorted(query.focus))
    return f"lin(<{query.node}:{query.port}[{query.index.encode()}]>, {{{focus}}})"
