"""Compiled INDEXPROJ programs — s1 + s2 baked into reusable plans.

The paper's central observation (Section 3.3) is that the (s1) traversal
is a pure function of the workflow *specification*: for a fixed
(workflow, strategy, target port, focus set) the set of trace queries —
and therefore the whole matching-rule arithmetic of (s2) — is static.
This module compiles that static part **once** into a
:class:`CompiledPlan`:

* the spec-graph traversal runs at compile time and is folded into a
  tuple of :data:`~repro.provenance.store.CompiledLookup` constants —
  per trace query, the encoded fragment, its enumerated prefixes, the
  ``LIKE`` pattern, the extension range and the bound-variable cost the
  chunker charges, all pre-derived;
* the run id is the **only** late-bound value — executing the plan for a
  run scope is a pure cross product ``lookups × runs`` handed to
  :meth:`~repro.provenance.store.TraceStore.find_xform_inputs_matching_compiled`,
  which binds parameters against pre-rendered (and per-connection
  prepared) SQL text.

Plans live in a :class:`PlanRegistry` — an LRU keyed like the PR-4
result cache (workflow fingerprint + strategy + target + focus) and
invalidated by the same store generation vectors: any maintenance or
membership bump makes every cached program stale, and the next request
recompiles against the current schema.  Recompilation is a spec-graph
traversal (microseconds), so eager full eviction is both correct and
cheap.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.obs.core import NO_OBS, Observability
from repro.provenance.store import CompiledLookup, compile_lookup
from repro.query.base import LineageQuery
from repro.query.indexproj import build_plan
from repro.workflow.depths import DepthAnalysis

#: Default capacity of the registry LRU — plans are tiny (a few hundred
#: bytes of tuples), so this comfortably covers every distinct query
#: shape a service sees while still bounding adversarial workloads.
DEFAULT_PLAN_CAPACITY = 256


@dataclass(frozen=True)
class PlanKey:
    """Identity of one compiled program.

    The run-independent prefix of
    :class:`repro.cache.results.ResultCacheKey`: one compiled program
    serves *every* run scope of the same logical query, so the key
    deliberately omits the runs.
    """

    fingerprint: str
    strategy: str
    node: str
    port: str
    index: str
    focus: frozenset

    @classmethod
    def of(
        cls, fingerprint: str, query: LineageQuery, strategy: str = "indexproj"
    ) -> "PlanKey":
        return cls(
            fingerprint=fingerprint,
            strategy=strategy,
            node=query.node,
            port=query.port,
            index=query.index.encode(),
            focus=query.focus,
        )


@dataclass(frozen=True)
class CompiledPlan:
    """One (s1) traversal frozen into an executable program.

    ``generations`` records the store's ``(global, membership)``
    generations at compile time; the registry revalidates it on every
    fetch, so a plan compiled before index maintenance or a membership
    change is never executed afterwards.
    """

    key: PlanKey
    lookups: Tuple[CompiledLookup, ...]
    visited_ports: int
    generations: Tuple[int, int]
    compile_seconds: float

    @property
    def trace_queries(self) -> int:
        return len(self.lookups)

    def pairs(self, run_ids: Any) -> list:
        """The executable key grid for a run scope (run id late-bound)."""
        return [
            (run_id, lookup) for run_id in run_ids for lookup in self.lookups
        ]


def compile_plan(
    analysis: DepthAnalysis,
    query: LineageQuery,
    fingerprint: str,
    strategy: str = "indexproj",
    generations: Tuple[int, int] = (0, 0),
) -> CompiledPlan:
    """Run (s1) once and fold its outcome into constants.

    Pure apart from the clock: traverses the specification graph via
    :func:`repro.query.indexproj.build_plan` and pre-derives every
    matching-rule constant of every planned trace query.
    """
    started = time.perf_counter()
    plan = build_plan(analysis, query)
    lookups = tuple(
        compile_lookup(tq.processor, tq.port, tq.fragment)
        for tq in plan.trace_queries
    )
    return CompiledPlan(
        key=PlanKey.of(fingerprint, query, strategy),
        lookups=lookups,
        visited_ports=plan.visited_ports,
        generations=generations,
        compile_seconds=time.perf_counter() - started,
    )


class PlanRegistry:
    """Generation-aware LRU of compiled programs.

    Shares the coherence protocol of :mod:`repro.cache`: entries carry
    the store's ``(global, membership)`` generations from compile time
    and are served only while the current generations compare equal; the
    store's invalidation listener additionally evicts eagerly, so a
    maintenance bump empties the registry the moment it happens (no
    stale prepared program can survive a schema change even if the
    generation check were skipped).  Thread-safe; counters mirror into
    ``compiled.plan_hits`` / ``compiled.plan_misses`` when observability
    is enabled.
    """

    def __init__(
        self,
        store: Any,
        max_entries: int = DEFAULT_PLAN_CAPACITY,
        obs: Optional[Observability] = None,
    ) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.store = store
        self.max_entries = max_entries
        self.obs = obs if obs is not None else NO_OBS
        self._lock = threading.Lock()
        self._plans: "OrderedDict[PlanKey, CompiledPlan]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        store.add_invalidation_listener(self._on_generation_bump)

    # ------------------------------------------------------------------

    def _generations(self) -> Tuple[int, int]:
        return (self.store.global_generation, self.store.membership_generation)

    def _on_generation_bump(self, run_id: Optional[str]) -> None:
        # A compiled program depends on the schema (prepared statements)
        # and on nothing about any single run's *data* — but membership
        # bumps share a channel with data bumps, and recompiling is a
        # microsecond spec traversal, so the conservative reaction to any
        # bump is a full clear.
        with self._lock:
            if self._plans:
                self.invalidations += len(self._plans)
                self._plans.clear()

    # ------------------------------------------------------------------

    def get_or_compile(
        self,
        analysis: DepthAnalysis,
        query: LineageQuery,
        fingerprint: str,
        strategy: str = "indexproj",
    ) -> CompiledPlan:
        """Fetch the program for a query, compiling on miss/stale."""
        key = PlanKey.of(fingerprint, query, strategy)
        current = self._generations()
        with self._lock:
            plan = self._plans.get(key)
            if plan is not None and plan.generations == current:
                self._plans.move_to_end(key)
                self.hits += 1
                hit = True
            else:
                self.misses += 1
                hit = False
        if hit:
            if self.obs.enabled:
                self.obs.inc("compiled.plan_hits")
            return plan
        if self.obs.enabled:
            self.obs.inc("compiled.plan_misses")
        plan = compile_plan(
            analysis, query, fingerprint, strategy, generations=current
        )
        with self._lock:
            self._plans[key] = plan
            self._plans.move_to_end(key)
            while len(self._plans) > self.max_entries:
                self._plans.popitem(last=False)
                self.evictions += 1
        return plan

    def probe(
        self,
        fingerprint: str,
        query: LineageQuery,
        strategy: str = "indexproj",
    ) -> str:
        """``"warm"``/``"cold"`` without compiling (explain support)."""
        key = PlanKey.of(fingerprint, query, strategy)
        current = self._generations()
        with self._lock:
            plan = self._plans.get(key)
            return (
                "warm"
                if plan is not None and plan.generations == current
                else "cold"
            )

    def clear(self) -> int:
        """Drop every plan; returns how many were evicted."""
        with self._lock:
            dropped = len(self._plans)
            self._plans.clear()
        return dropped

    def __len__(self) -> int:
        with self._lock:
            return len(self._plans)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._plans),
                "capacity": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
            }
