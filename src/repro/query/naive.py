"""NI — the naive lineage strategy (Section 2.4).

NI answers ``lin(<node:port[p]>, focus)`` by traversing the provenance
graph extensionally: starting from the query binding it alternates the two
inductive cases of Def. 1 —

* *xform* case: find the trace events whose output matches the current
  binding, collect their input bindings (into the answer when the
  processor is in focus), and continue from each input binding;
* *xfer* case: when no *xform* produced the binding, follow the transfer
  event into it back to its source binding.

Every hop issues one or two indexed SQL lookups against the store, so the
number of round-trips grows with the number of bindings on all upward
paths — the behaviour the paper's Figs. 6, 7 and 9 quantify.  Multi-run
queries repeat the whole traversal per run (NI has no static structure to
share), which is the contrast behind Fig. 4.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Set, Tuple

from repro.engine.events import Binding
from repro.obs.core import NO_OBS, Observability
from repro.provenance.store import StoreStats, TraceStore
from repro.query.base import LineageQuery, LineageResult, MultiRunResult
from repro.values.index import Index


class NaiveEngine:
    """Database-backed implementation of Def. 1 by graph traversal."""

    def __init__(
        self,
        store: TraceStore,
        obs: Optional[Observability] = None,
        trace_cache: Optional[Any] = None,
    ) -> None:
        self.store = store
        #: Observability handle (``repro.obs``): per-run traversal spans
        #: plus the ``naive.node_visits`` counter that makes the
        #: trace-size-dependent cost of NI (Figs. 6, 7, 9) observable.
        self.obs = obs if obs is not None else NO_OBS
        #: Optional :class:`repro.cache.trace.TraceReadCache`: when set,
        #: every traversal hop (xform-by-output, event inputs, xfer-into)
        #: is memoized per run, so repeated NI traversals over unchanged
        #: runs skip the store entirely.
        self.trace_cache = trace_cache

    def lineage(
        self,
        run_id: str,
        query: LineageQuery,
        stats: Optional[StoreStats] = None,
    ) -> LineageResult:
        """Answer one query over one run."""
        stats = stats if stats is not None else StoreStats()
        with self.obs.timer("naive.traverse", run=run_id) as timer:
            bindings = self._traverse(run_id, query, stats)
        return LineageResult(
            query=query,
            run_id=run_id,
            bindings=bindings,
            stats=stats,
            traversal_seconds=0.0,
            lookup_seconds=timer.seconds,
        )

    def lineage_multirun(
        self, run_ids: Iterable[str], query: LineageQuery
    ) -> MultiRunResult:
        """Answer one query over several runs: one full traversal each."""
        per_run = {}
        total = 0.0
        for run_id in run_ids:
            result = self.lineage(run_id, query)
            per_run[run_id] = result
            total += result.lookup_seconds
        return MultiRunResult(
            query=query, per_run=per_run, traversal_seconds=0.0,
            lookup_seconds=total,
        )

    def lineage_multirun_batched(
        self,
        run_ids: Iterable[str],
        query: LineageQuery,
        chunk_size: Optional[int] = None,
    ) -> MultiRunResult:
        """Level-synchronous multi-run traversal (batched NI).

        Instead of popping one binding at a time per run, the traversal
        advances a *frontier* of ``(run, node, port, index)`` keys across
        all runs in scope at once: each BFS level is resolved with one
        batched xform-by-output call, one batched event-inputs fetch for
        the hits, and one batched xfer fallback for the misses — three
        chunked statements per level regardless of run count.  The
        visited set and the per-key expansion rule are identical to
        :meth:`_traverse`, so the reachable set (and therefore the
        answer) per run matches the depth-first single-run traversal
        exactly.  Per-run results share one :class:`StoreStats`; use
        :meth:`~repro.query.base.MultiRunResult.aggregate_stats` to
        total round-trips without multi-counting.
        """
        scope = list(run_ids)
        stats = StoreStats()
        reader = self.trace_cache if self.trace_cache is not None else self.store
        collected: dict = {run_id: {} for run_id in scope}
        visited: Set[Tuple[str, str, str, str]] = set()
        frontier: List[Tuple[str, str, str, Index]] = []
        for run_id in scope:
            key = (run_id, query.node, query.port, query.index.encode())
            visited.add(key)
            frontier.append((run_id, query.node, query.port, query.index))
        visits = 0
        levels = 0
        with self.obs.timer(
            "naive.traverse_batched", runs=len(scope)
        ) as timer:
            while frontier:
                levels += 1
                visits += len(frontier)
                matches = reader.find_xform_by_output_many(
                    frontier, stats, chunk_size=chunk_size
                )
                groups: List[Tuple[str, Tuple[int, ...]]] = []
                group_owner: List[Tuple[str, str, str, Index]] = []
                misses: List[Tuple[str, str, str, Index]] = []
                for probe in frontier:
                    run_id, node, port, index = probe
                    matched = matches[(run_id, node, port, index.encode())]
                    if matched:
                        groups.append(
                            (run_id, tuple(m.event_id for m in matched))
                        )
                        group_owner.append(probe)
                    else:
                        misses.append(probe)
                next_frontier: List[Tuple[str, str, str, Index]] = []

                def push(run_id: str, node: str, port: str, index: Index) -> None:
                    key = (run_id, node, port, index.encode())
                    if key not in visited:
                        visited.add(key)
                        next_frontier.append((run_id, node, port, index))

                if groups:
                    inputs = reader.xform_inputs_many(
                        groups, stats, chunk_size=chunk_size
                    )
                    for (run_id, event_ids), _probe in zip(groups, group_owner, strict=False):
                        for binding in inputs[(run_id, event_ids)]:
                            if binding.node in query.focus:
                                collected[run_id][binding.key()] = binding
                            push(run_id, binding.node, binding.port, binding.index)
                if misses:
                    xfers = reader.find_xfer_into_many(
                        misses, stats, chunk_size=chunk_size
                    )
                    for run_id, node, port, index in misses:
                        for source, continue_index in xfers[
                            (run_id, node, port, index.encode())
                        ]:
                            push(run_id, source.node, source.port, continue_index)
                frontier = next_frontier
        elapsed = timer.seconds
        if self.obs.enabled:
            self.obs.inc("naive.node_visits", visits)
            self.obs.inc("naive.traversals", len(scope))
            self.obs.observe("naive.batched_levels", levels)
        per_run: dict = {}
        for run_id in scope:
            per_run[run_id] = LineageResult(
                query=query,
                run_id=run_id,
                bindings=sorted(collected[run_id].values(), key=lambda b: b.key()),
                stats=stats,
                traversal_seconds=0.0,
                lookup_seconds=elapsed / max(len(scope), 1),
            )
        return MultiRunResult(
            query=query,
            per_run=per_run,
            traversal_seconds=0.0,
            lookup_seconds=elapsed,
            wall_seconds=elapsed,
        )

    # ------------------------------------------------------------------

    def _traverse(
        self, run_id: str, query: LineageQuery, stats: StoreStats
    ) -> List[Binding]:
        cache = self.trace_cache
        collected: dict = {}
        visited: Set[Tuple[str, str, str]] = set()
        stack: List[Tuple[str, str, Index]] = [(query.node, query.port, query.index)]
        visits = 0
        while stack:
            node, port, index = stack.pop()
            key = (node, port, index.encode())
            if key in visited:
                continue
            visited.add(key)
            visits += 1
            reader = cache if cache is not None else self.store
            matches = reader.find_xform_by_output(
                run_id, node, port, index, stats
            )
            if matches:
                event_ids = [m.event_id for m in matches]
                if cache is not None:
                    # The cache keys event lookups by run: event ids may
                    # be reused after a run is deleted, so they only
                    # identify rows together with the run's generation.
                    inputs = cache.xform_inputs(run_id, event_ids, stats)
                else:
                    inputs = self.store.xform_inputs(event_ids, stats)
                for binding in inputs:
                    if binding.node in query.focus:
                        collected[binding.key()] = binding
                    stack.append((binding.node, binding.port, binding.index))
                continue
            for source, continue_index in reader.find_xfer_into(
                run_id, node, port, index, stats
            ):
                stack.append((source.node, source.port, continue_index))
        if self.obs.enabled:
            self.obs.inc("naive.node_visits", visits)
            self.obs.inc("naive.traversals")
        return sorted(collected.values(), key=lambda b: b.key())
