"""Impact queries: forward provenance, intensionally and extensionally.

Lineage asks "where did this output come from?"; *impact* asks the
symmetric question — "which outputs does this input element affect?" —
the workhorse of change assessment ("file X turned out corrupt; which
published results must be retracted?").

Both of the paper's strategies transfer:

* :class:`NaiveImpactEngine` walks the provenance graph *downward*, one
  indexed lookup pair per hop, exactly mirroring NI.
* :class:`IndexProjImpactEngine` runs Alg. 2 in reverse over the workflow
  specification graph.  Where the backward direction *slices* an output
  index into input fragments (Def. 4), the forward direction *embeds* an
  input fragment into an instance-index **pattern** — fixed at the port's
  static (offset, length) slot, wildcard elsewhere
  (:class:`repro.values.pattern.IndexPattern`).  Trace access again
  happens only at focus processors: one pattern lookup per focus output
  port.  Patterns whose constraints sit behind a wildcard are not fully
  index-sargable (the store falls back to a prefix fetch + client filter),
  which is the forward analogue of the paper's remark that value-based
  queries "would not benefit from our approach" as much as structural
  ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.engine.events import Binding
from repro.provenance.store import StoreStats, TraceStore
from repro.query.base import LineageQuery, LineageResult, MultiRunResult
from repro.values.index import Index
from repro.values.pattern import IndexPattern
from repro.workflow.depths import DepthAnalysis, propagate_depths
from repro.workflow.model import Dataflow, PortRef

#: Impact queries reuse the LineageQuery shape: a start binding + focus.
ImpactQuery = LineageQuery


class NaiveImpactEngine:
    """Extensional forward traversal over the relational trace."""

    def __init__(self, store: TraceStore) -> None:
        self.store = store

    def impact(
        self,
        run_id: str,
        query: ImpactQuery,
        stats: Optional[StoreStats] = None,
    ) -> LineageResult:
        """Output bindings of focus processors downstream of the binding."""
        stats = stats if stats is not None else StoreStats()
        started = time.perf_counter()
        collected: Dict[Tuple[str, str, str], Binding] = {}
        visited: Set[Tuple[str, str, str]] = set()
        stack: List[Tuple[str, str, Index]] = [
            (query.node, query.port, query.index)
        ]
        while stack:
            node, port, index = stack.pop()
            key = (node, port, index.encode())
            if key in visited:
                continue
            visited.add(key)
            matches = self.store.find_xform_by_input(
                run_id, node, port, index, stats
            )
            if matches:
                outputs = self.store.xform_outputs(
                    [m.event_id for m in matches], stats
                )
                for binding in outputs:
                    if binding.node in query.focus:
                        collected[binding.key()] = binding
                    stack.append((binding.node, binding.port, binding.index))
                continue
            for sink, continue_index in self.store.find_xfer_from(
                run_id, node, port, index, stats
            ):
                stack.append((sink.node, sink.port, continue_index))
        elapsed = time.perf_counter() - started
        return LineageResult(
            query=query,
            run_id=run_id,
            bindings=sorted(collected.values(), key=lambda b: b.key()),
            stats=stats,
            traversal_seconds=0.0,
            lookup_seconds=elapsed,
        )


@dataclass(frozen=True)
class PatternTraceQuery:
    """One planned forward lookup: outputs of a processor port matching a
    pattern."""

    processor: str
    port: str
    pattern: IndexPattern

    def __str__(self) -> str:
        return f"Q+({self.processor}, {self.port}, [{self.pattern.encode()}])"


@dataclass
class ImpactPlan:
    """Step (s1) of a forward query."""

    query: ImpactQuery
    trace_queries: Tuple[PatternTraceQuery, ...]
    visited_ports: int

    def __len__(self) -> int:
        return len(self.trace_queries)


def build_impact_plan(analysis: DepthAnalysis, query: ImpactQuery) -> ImpactPlan:
    """Traverse the specification graph downstream, propagating patterns.

    At a processor input port, the incoming pattern's leading positions
    are written into the instance-index slot the static layout assigns to
    that port (inverse of Def. 4); the resulting pattern annotates every
    output port.  At an output port, every outgoing arc forwards the
    pattern unchanged (transfers are identity on indices).
    """
    flow = analysis.flow
    planned: Dict[PatternTraceQuery, None] = {}
    visited: Set[Tuple[str, str, str]] = set()
    stack: List[Tuple[PortRef, IndexPattern]] = [
        (PortRef(query.node, query.port), IndexPattern.of(query.index.path))
    ]
    while stack:
        ref, pattern = stack.pop()
        key = (ref.node, ref.port, pattern.encode())
        if key in visited:
            continue
        visited.add(key)
        if ref.node == flow.name:
            # Workflow input port: fan out along its arcs; workflow output
            # ports are terminal.
            for arc in flow.outgoing_arcs(ref):
                stack.append((arc.sink, pattern))
            continue
        processor = flow.processor(ref.node)
        if processor.has_input(ref.port):
            level = analysis.iteration_level(ref.node)
            layout = {
                f.port: (f.offset, f.length)
                for f in analysis.fragment_layout(ref.node)
            }
            offset, length = layout[ref.port]
            instance_pattern = IndexPattern.wildcards(level).place_fragment(
                level, offset, pattern.head(length)
            )
            for output in processor.outputs:
                if ref.node in query.focus:
                    planned.setdefault(
                        PatternTraceQuery(
                            ref.node, output.name, instance_pattern
                        )
                    )
                stack.append(
                    (PortRef(ref.node, output.name), instance_pattern)
                )
        else:
            for arc in flow.outgoing_arcs(ref):
                stack.append((arc.sink, pattern))
    return ImpactPlan(
        query=query,
        trace_queries=tuple(planned),
        visited_ports=len(visited),
    )


class IndexProjImpactEngine:
    """Forward Alg. 2: pattern planning over the workflow graph, pattern
    lookups against the trace only at focus processors."""

    def __init__(
        self,
        store: TraceStore,
        flow: Dataflow,
        analysis: Optional[DepthAnalysis] = None,
        cache_plans: bool = True,
    ) -> None:
        self.store = store
        self.analysis = (
            analysis if analysis is not None else propagate_depths(flow.flattened())
        )
        self.cache_plans = cache_plans
        self._plan_cache: Dict[Tuple[str, str, str, frozenset], ImpactPlan] = {}

    def plan(self, query: ImpactQuery) -> Tuple[ImpactPlan, float]:
        key = (query.node, query.port, query.index.encode(), query.focus)
        started = time.perf_counter()
        if self.cache_plans and key in self._plan_cache:
            return self._plan_cache[key], time.perf_counter() - started
        plan = build_impact_plan(self.analysis, query)
        if self.cache_plans:
            self._plan_cache[key] = plan
        return plan, time.perf_counter() - started

    def execute_plan(
        self,
        plan: ImpactPlan,
        run_id: str,
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        stats = stats if stats is not None else StoreStats()
        collected: Dict[Tuple[str, str, str], Binding] = {}
        for trace_query in plan.trace_queries:
            for binding in self.store.find_xform_outputs_matching_pattern(
                run_id,
                trace_query.processor,
                trace_query.port,
                trace_query.pattern,
                stats,
            ):
                collected[binding.key()] = binding
        return sorted(collected.values(), key=lambda b: b.key())

    def impact(
        self,
        run_id: str,
        query: ImpactQuery,
        stats: Optional[StoreStats] = None,
    ) -> LineageResult:
        stats = stats if stats is not None else StoreStats()
        plan, plan_seconds = self.plan(query)
        started = time.perf_counter()
        bindings = self.execute_plan(plan, run_id, stats)
        lookup_seconds = time.perf_counter() - started
        return LineageResult(
            query=query,
            run_id=run_id,
            bindings=bindings,
            stats=stats,
            traversal_seconds=plan_seconds,
            lookup_seconds=lookup_seconds,
        )

    def impact_multirun(
        self, run_ids: Iterable[str], query: ImpactQuery
    ) -> MultiRunResult:
        """One plan shared by every run, like backward multi-run (§3.4)."""
        plan, plan_seconds = self.plan(query)
        per_run: Dict[str, LineageResult] = {}
        total = 0.0
        for run_id in run_ids:
            stats = StoreStats()
            started = time.perf_counter()
            bindings = self.execute_plan(plan, run_id, stats)
            elapsed = time.perf_counter() - started
            total += elapsed
            per_run[run_id] = LineageResult(
                query=query,
                run_id=run_id,
                bindings=bindings,
                stats=stats,
                traversal_seconds=0.0,
                lookup_seconds=elapsed,
            )
        return MultiRunResult(
            query=query,
            per_run=per_run,
            traversal_seconds=plan_seconds,
            lookup_seconds=total,
        )
