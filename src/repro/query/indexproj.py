"""INDEXPROJ — lineage by workflow-graph traversal (Alg. 2, Section 3.3).

The strategy splits a lineage query into the two steps the paper times
separately (Section 4):

* **(s1) planning** — traverse the *workflow specification graph* upstream
  from the query port, applying the index projection rule at every
  processor to carry the query index backwards; record one
  :class:`TraceQuery` per input port of every focus processor met.  No
  trace access happens in this step, so its cost depends only on the size
  of the specification graph.
* **(s2) execution** — run each planned trace query (``Q(P, X_i, p_i)`` in
  Alg. 2) against the store: one indexed lookup per focus input port, per
  run in scope.

Because (s1) is independent of run data, a plan is shared by all runs of a
multi-run query (Section 3.4) and cached across repeated queries on the
same workflow ("it is feasible to cache the nodes visited in one query to
speed up their access in subsequent queries").
"""

from __future__ import annotations

import contextvars
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Set, Tuple

from repro.engine.events import Binding
from repro.obs.core import NO_OBS, Observability
from repro.provenance.store import StoreStats, TraceStore
from repro.query.base import LineageQuery, LineageResult, MultiRunResult
from repro.query.projection import project_output_index
from repro.values.index import Index
from repro.workflow.depths import DepthAnalysis, propagate_depths
from repro.workflow.model import Dataflow, PortRef


@dataclass(frozen=True)
class TraceQuery:
    """One planned trace lookup: ``Q(processor, port, fragment)``."""

    processor: str
    port: str
    fragment: Index

    def __str__(self) -> str:
        return f"Q({self.processor}, {self.port}, [{self.fragment.encode()}])"


@dataclass
class QueryPlan:
    """The outcome of step (s1) for one query."""

    query: LineageQuery
    trace_queries: Tuple[TraceQuery, ...]
    visited_ports: int

    def __len__(self) -> int:
        return len(self.trace_queries)


def build_plan(analysis: DepthAnalysis, query: LineageQuery) -> QueryPlan:
    """Traverse the specification graph and plan the trace lookups.

    Pure function of the static analysis and the query — never touches the
    store.  Follows Alg. 2: at a processor output port, project the index
    onto the input ports (querying the trace is *deferred* into the plan
    when the processor is in focus) and continue from each input port; at
    an input port or a workflow output port, follow the incoming arc.
    """
    flow = analysis.flow
    planned: Dict[TraceQuery, None] = {}  # insertion-ordered set
    visited: Set[Tuple[str, str, str]] = set()
    stack: List[Tuple[PortRef, Index]] = [
        (PortRef(query.node, query.port), query.index)
    ]
    while stack:
        ref, index = stack.pop()
        key = (ref.node, ref.port, index.encode())
        if key in visited:
            continue
        visited.add(key)
        if ref.node == flow.name:
            # Workflow-level port: outputs have incoming arcs; inputs are
            # the traversal's terminal nodes.
            arc = flow.incoming_arc(ref)
            if arc is not None:
                stack.append((arc.source, index))
            continue
        processor = flow.processor(ref.node)
        if processor.has_output(ref.port):
            for port_name, fragment in project_output_index(
                analysis, ref.node, index
            ):
                if ref.node in query.focus:
                    planned.setdefault(
                        TraceQuery(ref.node, port_name, fragment)
                    )
                stack.append((PortRef(ref.node, port_name), fragment))
        else:
            arc = flow.incoming_arc(ref)
            if arc is not None:
                stack.append((arc.source, index))
    return QueryPlan(
        query=query,
        trace_queries=tuple(planned),
        visited_ports=len(visited),
    )


class IndexProjEngine:
    """Alg. 2 over a trace store, with plan caching.

    The static depth analysis is computed once per engine (the paper's
    offline pre-processing, Fig. 8) and exposed as
    ``preprocess_seconds``.
    """

    def __init__(
        self,
        store: TraceStore,
        flow: Dataflow,
        analysis: Optional[DepthAnalysis] = None,
        cache_plans: bool = True,
        obs: Optional[Observability] = None,
        trace_cache: Optional[Any] = None,
        plan_registry: Optional[Any] = None,
        fingerprint: Optional[str] = None,
    ) -> None:
        self.store = store
        #: Optional :class:`repro.query.compiled.PlanRegistry` shared with
        #: the owning service; lazily created on first compiled execution
        #: when absent.  ``fingerprint`` identifies the workflow in plan
        #: keys and is derived from the flow when not injected.
        self.plan_registry = plan_registry
        self.fingerprint = fingerprint
        self._flow = flow
        #: Optional :class:`repro.cache.trace.TraceReadCache`: when set,
        #: every s2 lookup goes through it, so repeated (run, processor,
        #: port, fragment) lookups are answered without touching the
        #: store.  It mirrors the store's lookup signatures, making it a
        #: drop-in reader.
        self.trace_cache = trace_cache
        self._reader: Any = trace_cache if trace_cache is not None else store
        #: Observability handle (``repro.obs``): every (s1)/(s2) timing
        #: below is derived from its spans, so the numbers in results and
        #: in a ``--profile`` span tree are the same measurement.
        self.obs = obs if obs is not None else NO_OBS
        with self.obs.timer("indexproj.preprocess", workflow=flow.name) as t:
            self.analysis = (
                analysis
                if analysis is not None
                else propagate_depths(flow.flattened())
            )
        #: Time spent running Alg. 1 (zero when a prebuilt analysis is
        #: injected); part of the paper's pre-processing cost.
        self.preprocess_seconds = t.seconds
        self.cache_plans = cache_plans
        self._plan_cache: Dict[
            Tuple[str, str, str, frozenset], QueryPlan
        ] = {}

    # ------------------------------------------------------------------

    def plan(self, query: LineageQuery) -> Tuple[QueryPlan, float]:
        """Step (s1): return the (possibly cached) plan and its build time.

        A cache hit reports the time of the lookup itself — effectively
        zero — which is exactly the saving the paper attributes to sharing
        the traversal across queries and runs.  Hits and misses land in
        the ``indexproj.plan_cache_hits`` / ``..._misses`` counters.
        """
        key = (query.node, query.port, query.index.encode(), query.focus)
        with self.obs.timer("indexproj.plan", query=str(query)) as span:
            hit = self.cache_plans and key in self._plan_cache
            if hit:
                plan = self._plan_cache[key]
            else:
                plan = build_plan(self.analysis, query)
                if self.cache_plans:
                    self._plan_cache[key] = plan
        if self.obs.enabled:
            self.obs.inc(
                "indexproj.plan_cache_hits"
                if hit
                else "indexproj.plan_cache_misses"
            )
            span.set(
                cache="hit" if hit else "miss",
                trace_queries=len(plan),
                visited_ports=plan.visited_ports,
            )
        return plan, span.seconds

    def execute_plan(
        self,
        plan: QueryPlan,
        run_id: str,
        stats: Optional[StoreStats] = None,
    ) -> List[Binding]:
        """Step (s2): run the planned lookups against one run's trace.

        Per-:class:`TraceQuery` lookup latency is sampled into the
        ``indexproj.trace_lookup_seconds`` histogram when observability is
        enabled.
        """
        stats = stats if stats is not None else StoreStats()
        obs = self.obs
        collected: Dict[Tuple[str, str, str], Binding] = {}
        for trace_query in plan.trace_queries:
            lookup_started = time.perf_counter() if obs.enabled else 0.0
            for binding in self._reader.find_xform_inputs_matching(
                run_id,
                trace_query.processor,
                trace_query.port,
                trace_query.fragment,
                stats,
            ):
                collected[binding.key()] = binding
            if obs.enabled:
                obs.inc("indexproj.trace_lookups")
                obs.observe(
                    "indexproj.trace_lookup_seconds",
                    time.perf_counter() - lookup_started,
                )
        return sorted(collected.values(), key=lambda b: b.key())

    # ------------------------------------------------------------------

    def lineage(
        self,
        run_id: str,
        query: LineageQuery,
        stats: Optional[StoreStats] = None,
    ) -> LineageResult:
        """Answer one query over one run: plan, then execute."""
        stats = stats if stats is not None else StoreStats()
        plan, plan_seconds = self.plan(query)
        with self.obs.timer("indexproj.execute", run=run_id) as timer:
            bindings = self.execute_plan(plan, run_id, stats)
        lookup_seconds = timer.seconds
        return LineageResult(
            query=query,
            run_id=run_id,
            bindings=bindings,
            stats=stats,
            traversal_seconds=plan_seconds,
            lookup_seconds=lookup_seconds,
        )

    def lineage_multirun_batched(
        self,
        run_ids: Iterable[str],
        query: LineageQuery,
        chunk_size: Optional[int] = None,
    ) -> MultiRunResult:
        """Set-based multi-run execution: the full ``plan × run-set``
        key grid resolves in ``O(ceil(keys/chunk))`` SQL round-trips.

        Beyond the paper's per-run loop (which :meth:`lineage_multirun`
        implements at ``len(plan) * runs`` round-trips): every
        ``(run, TraceQuery)`` pair becomes one key of a single batched
        :meth:`~repro.provenance.store.TraceStore.find_xform_inputs_matching_many`
        call, and the rows are demultiplexed per run afterwards.  Answers
        are identical per run; the per-run results share one
        :class:`StoreStats` (use
        :meth:`~repro.query.base.MultiRunResult.aggregate_stats` to total
        them without multi-counting).
        """
        scope = list(run_ids)
        plan, plan_seconds = self.plan(query)
        stats = StoreStats()
        grid: List[Tuple[str, str, str, Index]] = [
            (run_id, tq.processor, tq.port, tq.fragment)
            for run_id in scope
            for tq in plan.trace_queries
        ]
        collected: Dict[str, Dict[Tuple[str, str, str], Binding]] = {
            run_id: {} for run_id in scope
        }
        with self.obs.timer(
            "indexproj.execute_batched", runs=len(scope), keys=len(grid)
        ) as timer:
            answers = self._reader.find_xform_inputs_matching_many(
                grid, stats, chunk_size=chunk_size
            )
            for run_id, node, port, index in grid:
                bucket = collected[run_id]
                for binding in answers[(run_id, node, port, index.encode())]:
                    bucket[binding.key()] = binding
        elapsed = timer.seconds
        if self.obs.enabled:
            self.obs.inc("indexproj.trace_lookups", len(grid))
            self.obs.inc("indexproj.batched_keys", len(grid))
        per_run_results: Dict[str, LineageResult] = {}
        for run_id in scope:
            per_run_results[run_id] = LineageResult(
                query=query,
                run_id=run_id,
                bindings=sorted(collected[run_id].values(), key=lambda b: b.key()),
                stats=stats,
                traversal_seconds=0.0,
                lookup_seconds=elapsed / max(len(scope), 1),
            )
        return MultiRunResult(
            query=query,
            per_run=per_run_results,
            traversal_seconds=plan_seconds,
            lookup_seconds=elapsed,
            wall_seconds=plan_seconds + elapsed,
        )

    def _compiled_registry(self) -> Any:
        if self.plan_registry is None:
            # Local import: repro.query.compiled imports build_plan from
            # this module, so the dependency must stay lazy here.
            from repro.query.compiled import PlanRegistry

            self.plan_registry = PlanRegistry(self.store, obs=self.obs)
        return self.plan_registry

    def _workflow_fingerprint(self) -> str:
        if self.fingerprint is None:
            from repro.cache import workflow_fingerprint

            self.fingerprint = workflow_fingerprint(self._flow)
        return self.fingerprint

    def lineage_multirun_compiled(
        self,
        run_ids: Iterable[str],
        query: LineageQuery,
        chunk_size: Optional[int] = None,
    ) -> MultiRunResult:
        """Execute a compiled program: warm plans skip (s1) entirely.

        The registry returns the pre-compiled
        :class:`~repro.query.compiled.CompiledPlan` for this query shape
        (compiling on first sight or after a generation bump); execution
        is then the bare minimum — cross the frozen lookup constants with
        the run scope and hand the grid to the store's compiled
        primitive, which binds against prepared statements.  Answers are
        identical to :meth:`lineage_multirun` /
        :meth:`lineage_multirun_batched`, per run.
        """
        scope = list(run_ids)
        registry = self._compiled_registry()
        hits_before = registry.hits
        with self.obs.timer("indexproj.plan", query=str(query)) as plan_timer:
            plan = registry.get_or_compile(
                self.analysis, query, self._workflow_fingerprint()
            )
        plan_seconds = plan_timer.seconds
        if self.obs.enabled:
            plan_timer.set(
                cache="hit" if registry.hits > hits_before else "miss",
                trace_queries=plan.trace_queries,
                visited_ports=plan.visited_ports,
                execution="compiled",
            )
        stats = StoreStats()
        pairs = plan.pairs(scope)
        collected: Dict[str, Dict[Tuple[str, str, str], Binding]] = {
            run_id: {} for run_id in scope
        }
        with self.obs.timer("indexproj.execute", runs=len(scope)) as timer:
            if pairs:
                answers = self._reader.find_xform_inputs_matching_compiled(
                    pairs, stats, chunk_size=chunk_size
                )
                for run_id, lookup in pairs:
                    bucket = collected[run_id]
                    for binding in answers[
                        (run_id, lookup[0], lookup[1], lookup[2])
                    ]:
                        bucket[binding.key()] = binding
        elapsed = timer.seconds
        if self.obs.enabled:
            self.obs.inc("indexproj.trace_lookups", len(pairs))
            self.obs.inc("indexproj.compiled_keys", len(pairs))
        per_run_results: Dict[str, LineageResult] = {}
        for run_id in scope:
            per_run_results[run_id] = LineageResult(
                query=query,
                run_id=run_id,
                bindings=sorted(
                    collected[run_id].values(), key=lambda b: b.key()
                ),
                stats=stats,
                traversal_seconds=0.0,
                lookup_seconds=elapsed / max(len(scope), 1),
            )
        return MultiRunResult(
            query=query,
            per_run=per_run_results,
            traversal_seconds=plan_seconds,
            lookup_seconds=elapsed,
            wall_seconds=plan_seconds + elapsed,
        )

    def lineage_multirun(
        self, run_ids: Iterable[str], query: LineageQuery
    ) -> MultiRunResult:
        """One plan, executed once per run (Section 3.4).

        The trace-side cost is ``len(plan)`` lookups per run; the planning
        cost is paid exactly once regardless of how many runs are swept.
        """
        plan, plan_seconds = self.plan(query)
        per_run: Dict[str, LineageResult] = {}
        total_lookup = 0.0
        for run_id in run_ids:
            stats = StoreStats()
            with self.obs.timer("indexproj.execute", run=run_id) as timer:
                bindings = self.execute_plan(plan, run_id, stats)
            elapsed = timer.seconds
            total_lookup += elapsed
            per_run[run_id] = LineageResult(
                query=query,
                run_id=run_id,
                bindings=bindings,
                stats=stats,
                traversal_seconds=0.0,
                lookup_seconds=elapsed,
            )
        return MultiRunResult(
            query=query,
            per_run=per_run,
            traversal_seconds=plan_seconds,
            lookup_seconds=total_lookup,
            wall_seconds=plan_seconds + total_lookup,
        )

    def lineage_multirun_parallel(
        self,
        run_ids: Iterable[str],
        query: LineageQuery,
        max_workers: Optional[int] = None,
    ) -> MultiRunResult:
        """Parallel multi-run execution on a thread pool.

        The paper's Section 3.4 observation — one static traversal (s1) is
        shared by every run in scope — is here exploited for *throughput*:
        the single cached plan fans out across a ``ThreadPoolExecutor``,
        and each worker executes the per-run lookups (s2) on its own
        store connection.  Requires the store's concurrent read path
        (file-backed stores read genuinely in parallel; in-memory stores
        serialize internally, so parallelism degrades gracefully).

        Workers take contiguous chunks of the run list and execute the
        per-run lookups of their chunk sequentially — one worker, one
        store connection, many runs — so pool task overhead is paid per
        chunk, not per run, and the indexed per-run seeks (which SQLite
        executes off the GIL) overlap across workers.  Answers are
        identical to :meth:`lineage_multirun`, per run, regardless of
        worker count or scheduling order.
        """
        scope = list(run_ids)
        plan, plan_seconds = self.plan(query)
        if not scope:
            return MultiRunResult(
                query=query,
                per_run={},
                traversal_seconds=plan_seconds,
                lookup_seconds=0.0,
                wall_seconds=plan_seconds,
            )
        workers = max_workers if max_workers is not None else min(8, len(scope))
        workers = max(1, min(workers, len(scope)))
        chunk_size = (len(scope) + workers - 1) // workers
        chunks = [
            scope[i : i + chunk_size] for i in range(0, len(scope), chunk_size)
        ]

        def run_chunk(chunk: List[str]) -> List[LineageResult]:
            # Each chunk runs on a pool thread inside a copied context, so
            # its span nests under ``indexproj.parallel_fanout`` — one
            # request, one rooted tree, even across the fan-out.
            results: List[LineageResult] = []
            with self.obs.span("indexproj.chunk", runs=len(chunk)):
                for run_id in chunk:
                    stats = StoreStats()
                    with self.obs.timer(
                        "indexproj.execute", run=run_id
                    ) as timer:
                        bindings = self.execute_plan(plan, run_id, stats)
                    results.append(
                        LineageResult(
                            query=query,
                            run_id=run_id,
                            bindings=bindings,
                            stats=stats,
                            traversal_seconds=0.0,
                            lookup_seconds=timer.seconds,
                        )
                    )
            return results

        if self.obs.enabled:
            self.obs.inc("indexproj.multirun_runs", len(scope))
            self.obs.inc("indexproj.parallel_chunks", len(chunks))
        with self.obs.timer(
            "indexproj.parallel_fanout", workers=workers, runs=len(scope)
        ) as fanout_timer:
            if len(chunks) == 1:
                outcomes = [run_chunk(chunks[0])]
            else:
                # One context copy per chunk (a single Context cannot be
                # entered concurrently): each worker sees the fan-out span
                # as its parent and continues the same trace.
                tasks = [
                    (contextvars.copy_context(), chunk) for chunk in chunks
                ]
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    outcomes = list(
                        pool.map(lambda t: t[0].run(run_chunk, t[1]), tasks)
                    )
        wall = fanout_timer.seconds

        per_run_results: Dict[str, LineageResult] = {}
        total_lookup = 0.0
        for chunk_results in outcomes:
            for result in chunk_results:
                total_lookup += result.lookup_seconds
                per_run_results[result.run_id] = result
        # Preserve the caller's run order in the result mapping.
        per_run_results = {
            run_id: per_run_results[run_id] for run_id in scope
        }
        return MultiRunResult(
            query=query,
            per_run=per_run_results,
            traversal_seconds=plan_seconds,
            lookup_seconds=total_lookup,
            wall_seconds=plan_seconds + wall,
        )
