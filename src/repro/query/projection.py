"""The index projection rule (Def. 4, corrected — see DESIGN.md).

Prop. 1 guarantees that every *xform* event's output index ``q`` is the
concatenation ``p_1 ... p_n`` of per-input fragments with
``|p_i| = max(delta_s(X_i), 0)``.  Inverting a processor therefore reduces
to slicing ``q``: input port ``X_i`` receives the fragment that starts at
``offset_i = sum_{j<i} max(delta_s(X_j), 0)``.

(The paper's Def. 4 writes the fragment as starting at the *port position*
``i``; that contradicts Prop. 1's concatenation and the paper's own worked
example for three ports with mismatches (1, 0, 1), where the fragments are
``[h]``, ``[]``, ``[l]`` — offsets 0, 1, 1, not the port positions 0, 1, 2.
We implement the offsets dictated by Prop. 1; the static
:class:`~repro.workflow.depths.FragmentLayout` precomputes them.)

Two boundary behaviours extend the rule to *partial* query indices:

* ``len(q)`` greater than the iteration level: the excess positions address
  structure *inside* one instance's output.  Processors are black boxes, so
  that structure has no finer lineage — the excess is dropped.
* ``len(q)`` smaller than a fragment's end: the missing positions are
  unconstrained, so the fragment is clipped; a fully clipped fragment is
  the empty index, i.e. "the whole value on that port" — which is exactly
  how the paper evaluates ``lin(<P:Y[]>, ...)`` in Section 2.4.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.values.index import Index
from repro.workflow.depths import DepthAnalysis


def project_output_index(
    analysis: DepthAnalysis, processor: str, index: Index
) -> List[Tuple[str, Index]]:
    """Apply the projection rule at one processor.

    Returns ``(input port name, fragment)`` pairs in port order.  Works for
    both combinators: the static layout already encodes cross-product
    offsets or the shared dot fragment.
    """
    level = analysis.iteration_level(processor)
    usable = index.head(min(len(index), level))
    fragments: List[Tuple[str, Index]] = []
    for layout in analysis.fragment_layout(processor):
        start = min(layout.offset, len(usable))
        end = min(layout.offset + layout.length, len(usable))
        fragments.append((layout.port, usable.slice(start, end - start)))
    return fragments


def uncorrected_project_output_index(
    analysis: DepthAnalysis, processor: str, index: Index
) -> List[Tuple[str, Index]]:
    """The projection rule exactly as printed in the paper's Def. 4.

    Fragments start at the *port position* ``i`` instead of the cumulative
    mismatch offset.  Kept for the erratum-demonstration test, which shows
    this variant violates Prop. 1 on the paper's own Fig. 3 example.
    """
    level = analysis.iteration_level(processor)
    usable = index.head(min(len(index), level))
    fragments: List[Tuple[str, Index]] = []
    for position, layout in enumerate(analysis.fragment_layout(processor)):
        if layout.length <= 0:
            fragments.append((layout.port, Index()))
            continue
        start = min(position, len(usable))
        end = min(position + layout.length, len(usable))
        fragments.append((layout.port, usable.slice(start, end - start)))
    return fragments
