"""Tests for the processor registry and built-in operations."""

import pytest

from repro.engine.processors import (
    ProcessorRegistry,
    UnknownOperationError,
    default_registry,
    op_synth_value,
)


class TestRegistry:
    def test_register_and_resolve(self):
        registry = ProcessorRegistry()
        op = lambda inputs, config: {"y": 1}
        registry.register("one", op)
        assert registry.operation("one") is op
        assert "one" in registry

    def test_unknown_operation_raises(self):
        with pytest.raises(UnknownOperationError):
            ProcessorRegistry().operation("nope")
        assert "nope" not in ProcessorRegistry()

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            ProcessorRegistry().register("", lambda i, c: {})

    def test_child_falls_back_to_parent(self):
        parent = ProcessorRegistry()
        parent.register("shared", lambda i, c: {"y": "parent"})
        child = parent.extended()
        assert child.operation("shared")({}, {}) == {"y": "parent"}

    def test_child_overrides_locally_without_touching_parent(self):
        parent = ProcessorRegistry()
        parent.register("op", lambda i, c: {"y": "parent"})
        child = parent.extended()
        child.register("op", lambda i, c: {"y": "child"})
        assert child.operation("op")({}, {})["y"] == "child"
        assert parent.operation("op")({}, {})["y"] == "parent"

    def test_names_lists_local_only(self):
        parent = ProcessorRegistry()
        parent.register("p", lambda i, c: {})
        child = parent.extended()
        child.register("c", lambda i, c: {})
        assert list(child.names()) == ["c"]

    def test_default_registry_has_builtins(self):
        registry = default_registry()
        for name in (
            "identity", "tag", "uppercase", "list_generator", "flatten",
            "concat_pair", "merge_lists", "intersect_lists", "count",
            "constant", "split_words", "synth_value",
        ):
            assert name in registry


class TestBuiltins:
    def setup_method(self):
        self.registry = default_registry()

    def run_op(self, name, inputs, config=None):
        return self.registry.operation(name)(inputs, config or {})

    def test_identity(self):
        assert self.run_op("identity", {"x": "v"}) == {"y": "v"}

    def test_identity_custom_out_port(self):
        assert self.run_op("identity", {"x": "v"}, {"out": "z"}) == {"z": "v"}

    def test_identity_requires_single_input(self):
        with pytest.raises(ValueError):
            self.run_op("identity", {"x": 1, "y": 2})

    def test_tag(self):
        assert self.run_op("tag", {"x": "v"}, {"suffix": "-t"}) == {"y": "v-t"}

    def test_uppercase(self):
        assert self.run_op("uppercase", {"x": "ab"}) == {"y": "AB"}

    def test_list_generator_from_input(self):
        out = self.run_op("list_generator", {"size": 3}, {"prefix": "g"})
        assert out == {"list": ["g-0", "g-1", "g-2"]}

    def test_list_generator_from_config(self):
        out = self.run_op("list_generator", {}, {"size": 2})
        assert out["list"] == ["item-0", "item-1"]

    def test_list_generator_requires_size(self):
        with pytest.raises(ValueError):
            self.run_op("list_generator", {})

    def test_flatten(self):
        out = self.run_op("flatten", {"x": [["a"], ["b", "c"]]})
        assert out == {"y": ["a", "b", "c"]}

    def test_concat_pair(self):
        out = self.run_op("concat_pair", {"a": "x", "b": "y"}, {"joiner": "~"})
        assert out == {"y": "x~y"}

    def test_merge_lists(self):
        out = self.run_op("merge_lists", {"a": ["1"], "b": ["2", "3"]})
        assert out == {"y": ["1", "2", "3"]}

    def test_merge_lists_wraps_atoms(self):
        assert self.run_op("merge_lists", {"a": "x"}) == {"y": ["x"]}

    def test_intersect_lists(self):
        out = self.run_op(
            "intersect_lists", {"a": ["1", "2", "3"], "b": ["3", "2"]}
        )
        assert out == {"y": ["2", "3"]}

    def test_intersect_no_inputs(self):
        assert self.run_op("intersect_lists", {}) == {"y": []}

    def test_count(self):
        assert self.run_op("count", {"x": [["a", "b"], ["c"]]}) == {"y": 3}

    def test_constant(self):
        assert self.run_op("constant", {}, {"value": 7}) == {"y": 7}

    def test_constant_requires_value(self):
        with pytest.raises(ValueError):
            self.run_op("constant", {})

    def test_split_words(self):
        assert self.run_op("split_words", {"x": "a b  c"}) == {"y": ["a", "b", "c"]}


class TestSynthValue:
    def test_depth_zero_is_string(self):
        out = op_synth_value({"x": "a"}, {"out_depth": 0})
        assert isinstance(out["y"], str)

    def test_requested_depth_produced(self):
        out = op_synth_value({"x": "a"}, {"out_depth": 2, "width": 2})
        value = out["y"]
        assert len(value) == 2 and len(value[0]) == 2
        assert isinstance(value[0][0], str)

    def test_deterministic(self):
        first = op_synth_value({"x": "a"}, {"out_depth": 1})
        second = op_synth_value({"x": "a"}, {"out_depth": 1})
        assert first == second

    def test_distinct_inputs_distinct_outputs(self):
        first = op_synth_value({"x": "a"}, {"out_depth": 0})
        second = op_synth_value({"x": "b"}, {"out_depth": 0})
        assert first != second

    def test_salt_differentiates_processors(self):
        first = op_synth_value({"x": "a"}, {"out_depth": 0, "salt": "P"})
        second = op_synth_value({"x": "a"}, {"out_depth": 0, "salt": "Q"})
        assert first != second
