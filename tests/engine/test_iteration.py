"""Tests for the implicit iteration semantics (repro.engine.iteration).

Includes the paper's worked examples: the single-input ``eval_2`` example
from Section 3.2 and the three-input Fig. 3 cross product with mismatches
(1, 0, 1).
"""

import pytest

from repro.engine.iteration import (
    IterationError,
    PortValue,
    cross_product,
    evaluate,
    nary_cross_product,
)
from repro.values.index import Index


def record_args(instances):
    return [(inst.q, inst.arguments) for inst in instances]


class TestEvalSingleInput:
    def test_paper_example_eval2(self):
        """(eval_2 P [[a, b]]) = [[ "a isNice", "b isNice" ]] (Section 3.2)."""

        def operation(args):
            return {"y": f"{args['x']} isNice"}

        result = evaluate(
            operation, [PortValue("x", [["a", "b"]], 2)], ["y"]
        )
        assert result.outputs["y"] == [["a isNice", "b isNice"]]
        assert result.level == 2
        assert [inst.q for inst in result.instances] == [Index(0, 0), Index(0, 1)]

    def test_no_iteration_when_delta_zero(self):
        def operation(args):
            return {"y": len(args["x"])}

        result = evaluate(operation, [PortValue("x", ["a", "b"], 0)], ["y"])
        assert result.outputs["y"] == 2
        assert len(result.instances) == 1
        assert result.instances[0].q == Index()
        assert result.instances[0].fragment("x") == Index()

    def test_single_level_iteration(self):
        def operation(args):
            return {"y": args["x"].upper()}

        result = evaluate(operation, [PortValue("x", ["a", "b", "c"], 1)], ["y"])
        assert result.outputs["y"] == ["A", "B", "C"]
        assert [inst.fragment("x") for inst in result.instances] == [
            Index(0), Index(1), Index(2),
        ]

    def test_ragged_nesting_preserved(self):
        def operation(args):
            return {"y": args["x"] + "!"}

        result = evaluate(operation, [PortValue("x", [["a"], ["b", "c"]], 2)], ["y"])
        assert result.outputs["y"] == [["a!"], ["b!", "c!"]]
        assert [inst.q for inst in result.instances] == [
            Index(0, 0), Index(1, 0), Index(1, 1),
        ]

    def test_negative_delta_wraps_singletons(self):
        def operation(args):
            return {"y": args["x"]}

        result = evaluate(operation, [PortValue("x", "atom", -2)], ["y"])
        assert result.outputs["y"] == [["atom"]]
        assert len(result.instances) == 1
        assert result.instances[0].fragment("x") == Index()

    def test_empty_list_yields_no_instances(self):
        def operation(args):  # pragma: no cover - never called
            raise AssertionError("must not run")

        result = evaluate(operation, [PortValue("x", [], 1)], ["y"])
        assert result.outputs["y"] == []
        assert result.instances == []

    def test_atomic_value_with_positive_delta_rejected(self):
        with pytest.raises(IterationError, match="atomic"):
            evaluate(lambda args: {"y": 1}, [PortValue("x", "a", 1)], ["y"])

    def test_missing_output_port_rejected(self):
        with pytest.raises(IterationError, match="no value"):
            evaluate(lambda args: {"z": 1}, [PortValue("x", "a", 0)], ["y"])

    def test_unknown_strategy_rejected(self):
        with pytest.raises(IterationError, match="strategy"):
            evaluate(lambda args: {"y": 1}, [PortValue("x", "a", 0)], ["y"],
                     strategy="zip3")


class TestEvalFig3:
    """The paper's Fig. 3 trace: P with inputs (a, c, b), deltas (1, 0, 1)."""

    def setup_method(self):
        self.a = ["a1", "a2", "a3"]          # n = 3
        self.c = ["c1", "c2"]                # consumed whole
        self.b = ["b1", "b2"]                # m = 2

        def operation(args):
            return {"Y": f"{args['X1']}/{args['X3']}"}

        self.result = evaluate(
            operation,
            [
                PortValue("X1", self.a, 1),
                PortValue("X2", self.c, 0),
                PortValue("X3", self.b, 1),
            ],
            ["Y"],
        )

    def test_instance_count_is_n_times_m(self):
        assert len(self.result.instances) == 6

    def test_output_shape(self):
        assert self.result.outputs["Y"] == [
            ["a1/b1", "a1/b2"],
            ["a2/b1", "a2/b2"],
            ["a3/b1", "a3/b2"],
        ]

    def test_q_is_concatenation_of_fragments(self):
        for inst in self.result.instances:
            assert (
                inst.fragment("X1") + inst.fragment("X2") + inst.fragment("X3")
                == inst.q
            )

    def test_fragment_lengths_match_mismatches(self):
        for inst in self.result.instances:
            assert len(inst.fragment("X1")) == 1
            assert len(inst.fragment("X2")) == 0
            assert len(inst.fragment("X3")) == 1

    def test_whole_value_bound_to_non_iterated_port(self):
        for inst in self.result.instances:
            assert inst.arguments["X2"] is self.c

    def test_iteration_order_outer_first_port(self):
        qs = [inst.q for inst in self.result.instances]
        assert qs == [
            Index(0, 0), Index(0, 1),
            Index(1, 0), Index(1, 1),
            Index(2, 0), Index(2, 1),
        ]


class TestEvalMultiDeepMismatch:
    def test_two_levels_on_one_port(self):
        def operation(args):
            return {"y": f"{args['p']}:{args['q']}"}

        value = [["a", "b"], ["c"]]
        result = evaluate(
            operation,
            [PortValue("p", value, 2), PortValue("q", "k", 0)],
            ["y"],
        )
        assert result.outputs["y"] == [["a:k", "b:k"], ["c:k"]]
        # |p fragment| = 2, concatenated first.
        for inst in result.instances:
            assert len(inst.fragment("p")) == 2
            assert inst.q == inst.fragment("p")

    def test_mixed_depths_two_ports(self):
        def operation(args):
            return {"y": (args["p"], args["q"])}

        result = evaluate(
            operation,
            [PortValue("p", [["a"]], 2), PortValue("q", ["u", "v"], 1)],
            ["y"],
        )
        assert [inst.q for inst in result.instances] == [
            Index(0, 0, 0), Index(0, 0, 1),
        ]
        first = result.instances[0]
        assert first.fragment("p") == Index(0, 0)
        assert first.fragment("q") == Index(0)


class TestDotCombinator:
    def test_lockstep_iteration(self):
        def operation(args):
            return {"y": f"{args['p']}{args['q']}"}

        result = evaluate(
            operation,
            [PortValue("p", ["a", "b"], 1), PortValue("q", ["1", "2"], 1)],
            ["y"],
            strategy="dot",
        )
        assert result.outputs["y"] == ["a1", "b2"]
        assert result.level == 1

    def test_fragments_shared(self):
        def operation(args):
            return {"y": 0}

        result = evaluate(
            operation,
            [PortValue("p", ["a", "b"], 1), PortValue("q", ["1", "2"], 1)],
            ["y"],
            strategy="dot",
        )
        for inst in result.instances:
            assert inst.fragment("p") == inst.q
            assert inst.fragment("q") == inst.q

    def test_non_iterated_port_keeps_empty_fragment(self):
        def operation(args):
            return {"y": 0}

        result = evaluate(
            operation,
            [PortValue("p", ["a", "b"], 1), PortValue("k", "c", 0)],
            ["y"],
            strategy="dot",
        )
        for inst in result.instances:
            assert inst.fragment("k") == Index()

    def test_unequal_lengths_rejected(self):
        with pytest.raises(IterationError, match="equal list lengths"):
            evaluate(
                lambda args: {"y": 0},
                [PortValue("p", ["a"], 1), PortValue("q", ["1", "2"], 1)],
                ["y"],
                strategy="dot",
            )

    def test_unequal_mismatches_rejected(self):
        with pytest.raises(IterationError, match="equal positive mismatches"):
            evaluate(
                lambda args: {"y": 0},
                [PortValue("p", [["a"]], 2), PortValue("q", ["1"], 1)],
                ["y"],
                strategy="dot",
            )

    def test_atomic_under_iteration_rejected(self):
        with pytest.raises(IterationError, match="atomic"):
            evaluate(
                lambda args: {"y": 0},
                [PortValue("p", "a", 1)],
                ["y"],
                strategy="dot",
            )

    def test_deep_dot(self):
        def operation(args):
            return {"y": args["p"] + args["q"]}

        result = evaluate(
            operation,
            [
                PortValue("p", [["a", "b"], ["c"]], 2),
                PortValue("q", [["x", "y"], ["z"]], 2),
            ],
            ["y"],
            strategy="dot",
        )
        assert result.outputs["y"] == [["ax", "by"], ["cz"]]


class TestCrossProductDef2:
    """Direct transcriptions of Def. 2."""

    def test_both_iterated(self):
        assert cross_product((["a", "b"], 1), (["x", "y"], 1)) == [
            [("a", "x"), ("a", "y")],
            [("b", "x"), ("b", "y")],
        ]

    def test_left_only(self):
        assert cross_product((["a", "b"], 1), ("w", 0)) == [("a", "w"), ("b", "w")]

    def test_right_only(self):
        assert cross_product(("v", 0), (["x"], 1)) == [("v", "x")]

    def test_neither(self):
        assert cross_product(("v", 0), ("w", 0)) == ("v", "w")

    def test_nary_matches_paper_worked_example(self):
        a, c, b = ["a1", "a2"], "c", ["b1", "b2", "b3"]
        product = nary_cross_product([(a, 1), (c, 0), (b, 1)])
        assert product == [
            [("a1", "c", "b1"), ("a1", "c", "b2"), ("a1", "c", "b3")],
            [("a2", "c", "b1"), ("a2", "c", "b2"), ("a2", "c", "b3")],
        ]

    def test_nary_no_iteration(self):
        assert nary_cross_product([("v", 0), ("w", 0)]) == ("v", "w")

    def test_nary_empty(self):
        assert nary_cross_product([]) == ()

    def test_nary_agrees_with_evaluate_leaf_order(self):
        """The leaves of the n-ary product enumerate in the same order as
        evaluate()'s instances — both realize Def. 3."""
        a, b = ["a1", "a2"], ["b1", "b2"]
        product = nary_cross_product([(a, 1), (b, 1)])
        flat_product = [leaf for row in product for leaf in row]

        result = evaluate(
            lambda args: {"y": (args["p"], args["q"])},
            [PortValue("p", a, 1), PortValue("q", b, 1)],
            ["y"],
        )
        assert [inst.outputs["y"] for inst in result.instances] == flat_product
