"""Integration tests for processors with multiple output ports.

Every instance of a multi-output processor produces one binding per
output port, all sharing the same instance index q (Prop. 1 speaks of
"a binding for Y" per instance; with several outputs each gets the same
index).  Lineage queries from either output must reach the same inputs.
"""

import pytest

from repro.engine.processors import default_registry
from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.values.index import Index
from repro.workflow.builder import DataflowBuilder
from repro.workflow.depths import propagate_depths
from repro.workflow.model import PortRef


def op_split_name(inputs, config):
    """One input, two outputs: first/last fragment of a name."""
    first, _, last = str(inputs["name"]).partition("-")
    return {"first": first, "last": last}


@pytest.fixture(scope="module")
def setup():
    registry = default_registry().extended()
    registry.register("split_name", op_split_name)
    flow = (
        DataflowBuilder("wf")
        .input("names", "list(string)")
        .output("firsts", "list(string)")
        .output("lasts_upper", "list(string)")
        .processor(
            "split",
            inputs=[("name", "string")],
            outputs=[("first", "string"), ("last", "string")],
            operation="split_name",
        )
        .processor(
            "upper",
            inputs=[("x", "string")],
            outputs=[("y", "string")],
            operation="uppercase",
        )
        .arcs(
            ("wf:names", "split:name"),
            ("split:first", "wf:firsts"),
            ("split:last", "upper:x"),
            ("upper:y", "wf:lasts_upper"),
        )
        .build()
    )
    captured = capture_run(
        flow, {"names": ["ada-lovelace", "alan-turing"]}, registry=registry
    )
    store = TraceStore()
    store.insert_trace(captured.trace)
    yield flow, captured, store
    store.close()


class TestExecution:
    def test_both_outputs_produced(self, setup):
        _, captured, _ = setup
        assert captured.outputs["firsts"] == ["ada", "alan"]
        assert captured.outputs["lasts_upper"] == ["LOVELACE", "TURING"]

    def test_outputs_share_instance_index(self, setup):
        _, captured, _ = setup
        for event in captured.trace.instances_of("split"):
            indices = {binding.index for binding in event.outputs}
            assert len(indices) == 1
            assert {binding.port for binding in event.outputs} == {
                "first", "last",
            }

    def test_depths_propagate_to_both_outputs(self, setup):
        flow, _, _ = setup
        analysis = propagate_depths(flow)
        assert analysis.depth_of(PortRef("split", "first")) == 1
        assert analysis.depth_of(PortRef("split", "last")) == 1


class TestLineage:
    def test_query_from_each_output_port(self, setup):
        flow, captured, store = setup
        for port, index in (("firsts", Index(1)), ("lasts_upper", Index(1))):
            query = LineageQuery.create("wf", port, index, ["split"])
            naive = NaiveEngine(store).lineage(captured.run_id, query)
            indexproj = IndexProjEngine(store, flow).lineage(
                captured.run_id, query
            )
            assert naive.binding_keys() == indexproj.binding_keys()
            assert [b.key() for b in naive.bindings] == [
                ("split", "name", "1")
            ], port
            assert naive.bindings[0].value == "alan-turing"

    def test_downstream_of_one_output_only(self, setup):
        flow, captured, store = setup
        query = LineageQuery.create("upper", "y", [0], ["split"])
        result = IndexProjEngine(store, flow).lineage(captured.run_id, query)
        assert [b.key() for b in result.bindings] == [("split", "name", "0")]
