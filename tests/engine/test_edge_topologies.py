"""Edge-case workflow topologies: pure sources, dangling outputs,
zero-input processors, disconnected stages."""

import pytest

from repro.engine.executor import ExecutionError, run_workflow
from repro.engine.iteration import PortValue, evaluate
from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.indexproj import IndexProjEngine
from repro.query.naive import NaiveEngine
from repro.values.index import Index
from repro.workflow.builder import DataflowBuilder


class TestZeroInputProcessors:
    def test_evaluate_with_no_ports(self):
        result = evaluate(lambda args: {"y": 42}, [], ["y"])
        assert result.outputs == {"y": 42}
        assert result.level == 0
        assert result.instances[0].q == Index()
        assert result.instances[0].fragments == ()

    def test_constant_source_workflow(self):
        flow = (
            DataflowBuilder("wf")
            .output("out", "list(string)")
            .processor("SRC", outputs=[("y", "list(string)")],
                       operation="constant",
                       config={"value": ["fixed-a", "fixed-b"]})
            .arc("SRC:y", "wf:out")
            .build()
        )
        result = run_workflow(flow, {})
        assert result.outputs["out"] == ["fixed-a", "fixed-b"]

    def test_lineage_of_constant_source_is_empty(self):
        flow = (
            DataflowBuilder("wf")
            .output("out", "string")
            .processor("SRC", outputs=[("y", "string")],
                       operation="constant", config={"value": "k"})
            .arc("SRC:y", "wf:out")
            .build()
        )
        captured = capture_run(flow, {})
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            query = LineageQuery.create("wf", "out", (), ["SRC"])
            naive = NaiveEngine(store).lineage(captured.run_id, query)
            indexproj = IndexProjEngine(store, flow).lineage(
                captured.run_id, query
            )
            # SRC has no inputs: lineage is empty under both strategies.
            assert naive.bindings == []
            assert indexproj.bindings == []


class TestDanglingPorts:
    def test_unconnected_workflow_output_is_omitted(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "string")
            .output("used", "string")
            .output("dangling", "string")
            .processor("P", inputs=[("x", "string")],
                       outputs=[("y", "string")], operation="identity")
            .arc("wf:a", "P:x")
            .arc("P:y", "wf:used")
            .build()
        )
        result = run_workflow(flow, {"a": "v"})
        assert result.outputs == {"used": "v"}
        with pytest.raises(ExecutionError):
            result.output("dangling")

    def test_unconsumed_processor_output_still_traced(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "string")
            .output("out", "string")
            .processor("P", inputs=[("x", "string")],
                       outputs=[("y", "string"), ("extra", "string")],
                       operation="synth_two")
            .arc("wf:a", "P:x")
            .arc("P:y", "wf:out")
            .build()
        )
        from repro.engine.processors import default_registry

        registry = default_registry().extended()
        registry.register(
            "synth_two",
            lambda inputs, config: {"y": inputs["x"], "extra": "side"},
        )
        captured = capture_run(flow, {"a": "v"}, registry=registry)
        event = captured.trace.instances_of("P")[0]
        assert {b.port for b in event.outputs} == {"y", "extra"}

    def test_missing_workflow_input_leaves_branch_unfired(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "string")
            .output("out", "string")
            .processor("P", inputs=[("x", "string")],
                       outputs=[("y", "string")], operation="identity")
            .arc("wf:a", "P:x")
            .arc("P:y", "wf:out")
            .build()
        )
        with pytest.raises(ExecutionError, match="not fireable"):
            run_workflow(flow, {})


class TestDisconnectedStages:
    def test_two_independent_pipelines_in_one_workflow(self):
        flow = (
            DataflowBuilder("wf")
            .input("a", "string")
            .input("b", "string")
            .output("out_a", "string")
            .output("out_b", "string")
            .processor("PA", inputs=[("x", "string")],
                       outputs=[("y", "string")], operation="tag",
                       config={"suffix": "-A"})
            .processor("PB", inputs=[("x", "string")],
                       outputs=[("y", "string")], operation="tag",
                       config={"suffix": "-B"})
            .arcs(("wf:a", "PA:x"), ("wf:b", "PB:x"),
                  ("PA:y", "wf:out_a"), ("PB:y", "wf:out_b"))
            .build()
        )
        captured = capture_run(flow, {"a": "1", "b": "2"})
        assert captured.outputs == {"out_a": "1-A", "out_b": "2-B"}
        with TraceStore() as store:
            store.insert_trace(captured.trace)
            # Lineage stays inside its own pipeline.
            result = NaiveEngine(store).lineage(
                captured.run_id,
                LineageQuery.create("wf", "out_a", (), ["PA", "PB"]),
            )
            assert [b.key() for b in result.bindings] == [("PA", "x", "")]

    def test_empty_workflow_runs(self):
        flow = DataflowBuilder("wf").build()
        result = run_workflow(flow, {})
        assert result.outputs == {}
