"""Tests for run-time enforcement of assumption 1 (declared output depths)."""

import pytest

from repro.engine.executor import ExecutionError, WorkflowRunner
from repro.engine.processors import default_registry
from repro.workflow.builder import DataflowBuilder


def flow_with_bad_operation(out_type="string"):
    return (
        DataflowBuilder("wf")
        .input("v", "string")
        .output("w", out_type)
        .processor("P", inputs=[("x", "string")], outputs=[("y", out_type)],
                   operation="liar")
        .arc("wf:v", "P:x")
        .arc("P:y", "wf:w")
        .build()
    )


@pytest.fixture
def lying_registry():
    registry = default_registry().extended()
    registry.register("liar", lambda inputs, config: {"y": ["not", "atomic"]})
    return registry


class TestOutputDepthEnforcement:
    def test_violation_detected(self, lying_registry):
        runner = WorkflowRunner(lying_registry)
        with pytest.raises(ExecutionError, match="assumption 1"):
            runner.run(flow_with_bad_operation(), {"v": "a"})

    def test_error_names_processor_and_port(self, lying_registry):
        runner = WorkflowRunner(lying_registry)
        with pytest.raises(ExecutionError, match="'P'.*'y'"):
            runner.run(flow_with_bad_operation(), {"v": "a"})

    def test_check_can_be_disabled(self, lying_registry):
        runner = WorkflowRunner(lying_registry, check_output_depths=False)
        result = runner.run(flow_with_bad_operation(), {"v": "a"})
        assert result.outputs["w"] == ["not", "atomic"]

    def test_correct_depth_passes(self, lying_registry):
        # The same op against a port that declares depth 1 is legitimate.
        runner = WorkflowRunner(lying_registry)
        result = runner.run(
            flow_with_bad_operation(out_type="list(string)"), {"v": "a"}
        )
        assert result.outputs["w"] == ["not", "atomic"]

    def test_checked_per_instance_under_iteration(self):
        registry = default_registry().extended()
        calls = []

        def flaky(inputs, config):
            calls.append(inputs["x"])
            # Correct on the first element, wrong on the second.
            return {"y": "ok" if inputs["x"] == "a" else ["bad"]}

        registry.register("flaky", flaky)
        flow = (
            DataflowBuilder("wf")
            .input("v", "list(string)")
            .output("w", "list(string)")
            .processor("P", inputs=[("x", "string")],
                       outputs=[("y", "string")], operation="flaky")
            .arc("wf:v", "P:x")
            .arc("P:y", "wf:w")
            .build()
        )
        runner = WorkflowRunner(registry)
        with pytest.raises(ExecutionError, match="depth 1"):
            runner.run(flow, {"v": ["a", "b"]})
        assert calls == ["a", "b"]  # failed on the second instance
