"""Tests for Taverna-style error-token propagation."""

import pytest

from repro.engine.errors import ErrorToken, contains_error, count_errors, is_error
from repro.engine.executor import WorkflowRunner
from repro.engine.processors import default_registry
from repro.provenance.capture import capture_run
from repro.provenance.store import TraceStore
from repro.query.base import LineageQuery
from repro.query.impact import ImpactQuery, IndexProjImpactEngine
from repro.query.naive import NaiveEngine
from repro.workflow.builder import DataflowBuilder


def flaky_registry(bad_element: str):
    registry = default_registry().extended()

    def fragile(inputs, config):
        if inputs["x"] == bad_element:
            raise RuntimeError(f"service exploded on {inputs['x']!r}")
        return {"y": inputs["x"] + "-ok"}

    registry.register("fragile", fragile)
    return registry


def pipeline_flow():
    return (
        DataflowBuilder("wf")
        .input("items", "list(string)")
        .output("out", "list(string)")
        .processor("risky", inputs=[("x", "string")],
                   outputs=[("y", "string")], operation="fragile")
        .processor("post", inputs=[("x", "string")],
                   outputs=[("y", "string")], operation="tag",
                   config={"suffix": "!"})
        .arc("wf:items", "risky:x")
        .arc("risky:y", "post:x")
        .arc("post:y", "wf:out")
        .build()
    )


class TestErrorTokenBasics:
    def test_predicates(self):
        token = ErrorToken("boom", "P")
        assert is_error(token)
        assert not is_error("boom")
        assert contains_error(["a", [token]])
        assert not contains_error(["a", ["b"]])
        assert count_errors([token, ["x", token]]) == 2

    def test_equality(self):
        assert ErrorToken("m", "P") == ErrorToken("m", "P")
        assert ErrorToken("m", "P") != ErrorToken("m", "Q")

    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            WorkflowRunner(error_handling="ignore")


class TestPropagation:
    def test_default_mode_raises(self):
        runner = WorkflowRunner(flaky_registry("b"))
        with pytest.raises(RuntimeError, match="exploded"):
            runner.run(pipeline_flow(), {"items": ["a", "b", "c"]})

    def test_token_mode_isolates_the_failure(self):
        runner = WorkflowRunner(
            flaky_registry("b"), error_handling="token"
        )
        result = runner.run(pipeline_flow(), {"items": ["a", "b", "c"]})
        out = result.outputs["out"]
        assert out[0] == "a-ok!"
        assert out[2] == "c-ok!"
        assert is_error(out[1])

    def test_downstream_short_circuits_without_invoking_op(self):
        calls = []
        registry = flaky_registry("b")
        original_tag = registry.operation("tag")

        def counting_tag(inputs, config):
            calls.append(inputs["x"])
            return original_tag(inputs, config)

        registry.register("tag", counting_tag)
        runner = WorkflowRunner(registry, error_handling="token")
        runner.run(pipeline_flow(), {"items": ["a", "b", "c"]})
        assert calls == ["a-ok", "c-ok"]  # never called on the token

    def test_token_records_origin(self):
        runner = WorkflowRunner(flaky_registry("b"), error_handling="token")
        result = runner.run(pipeline_flow(), {"items": ["a", "b"]})
        token = result.outputs["out"][1]
        assert token.processor == "post"  # re-tokenized at each hop
        # The origin is visible on the intermediate port.
        from repro.workflow.model import PortRef

        origin = result.port_values[PortRef("risky", "y")][1]
        assert origin.processor == "risky"
        assert "exploded" in origin.message

    def test_error_through_cross_product_poisons_row(self):
        registry = flaky_registry("item-1")
        flow = (
            DataflowBuilder("wf")
            .input("size", "integer")
            .output("out", "list(list(string))")
            .processor("GEN", inputs=[("size", "integer")],
                       outputs=[("list", "list(string)")],
                       operation="list_generator", config={"out": "list"})
            .processor("risky", inputs=[("x", "string")],
                       outputs=[("y", "string")], operation="fragile")
            .processor("F", inputs=[("a", "string"), ("b", "string")],
                       outputs=[("y", "string")], operation="concat_pair")
            .arcs(("wf:size", "GEN:size"), ("GEN:list", "risky:x"),
                  ("GEN:list", "F:b"), ("risky:y", "F:a"),
                  ("F:y", "wf:out"))
            .build()
        )
        runner = WorkflowRunner(registry, error_handling="token")
        result = runner.run(flow, {"size": 3})
        out = result.outputs["out"]
        assert all(is_error(cell) for cell in out[1])      # poisoned row
        assert not any(is_error(cell) for cell in out[0])  # clean rows
        assert not any(is_error(cell) for cell in out[2])


class TestErrorProvenance:
    def setup_method(self):
        self.flow = pipeline_flow()
        runner = WorkflowRunner(flaky_registry("b"), error_handling="token")
        self.captured = capture_run(
            self.flow, {"items": ["a", "b", "c"]}, runner=runner
        )
        self.store = TraceStore()
        self.store.insert_trace(self.captured.trace)

    def teardown_method(self):
        self.store.close()

    def test_lineage_of_errored_output_finds_culprit(self):
        result = NaiveEngine(self.store).lineage(
            self.captured.run_id,
            LineageQuery.create("wf", "out", [1], ["risky"]),
        )
        assert [b.key() for b in result.bindings] == [("risky", "x", "1")]
        assert result.bindings[0].value == "b"

    def test_impact_of_bad_input_enumerates_contamination(self):
        result = IndexProjImpactEngine(self.store, self.flow).impact(
            self.captured.run_id,
            ImpactQuery.create("wf", "items", [1], ["post"]),
        )
        assert [b.key() for b in result.bindings] == [("post", "y", "1")]
        assert "ErrorToken" in str(result.bindings[0].value)

    def test_trace_records_token_payloads(self):
        events = self.captured.trace.instances_of("risky")
        assert len(events) == 3
        token_events = [
            e for e in events if is_error(e.outputs[0].value)
        ]
        assert len(token_events) == 1
        assert token_events[0].inputs[0].value == "b"
